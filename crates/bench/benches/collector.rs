//! Collector micro-benchmarks and the batching ablation (DESIGN.md §7).
//!
//! `fid2path_cache` quantifies Algorithm 1's cache (with real fid2path
//! cost disabled so the data-structure cost itself is visible);
//! `collector_batch` sweeps the changelog read batch size.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fsmon_lustre::Collector;
use lustre_sim::{LustreConfig, LustreFs};
use std::time::Duration;

fn bench_collector(c: &mut Criterion) {
    let mut group = c.benchmark_group("collector");
    group.sample_size(15);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));

    // Per-record processing, cache on vs off (fid2path cost Free so
    // the measured cost is the collector's own work).
    for (label, cache) in [("process_with_cache", 5000usize), ("process_no_cache", 0)] {
        group.throughput(Throughput::Elements(1));
        group.bench_function(label, |b| {
            let fs = LustreFs::new(LustreConfig::small());
            let client = fs.client();
            let mut collector = Collector::new(fs.mdt(0), "/mnt/lustre", cache, 1024, None);
            // A live population the records will reference.
            for i in 0..1024 {
                client.create(&format!("/f{i}")).unwrap();
            }
            let records = fs.mdt(0).read_changelog(0, 1024);
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % records.len();
                black_box(collector.process_record(&records[i]))
            });
        });
    }

    // Batch-size ablation: cost of one full step (read + process +
    // purge) at different batch sizes, normalized per record.
    for &batch in &[16usize, 128, 1024] {
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(
            BenchmarkId::new("step_batch", batch),
            &batch,
            |b, &batch| {
                b.iter_batched(
                    || {
                        let fs = LustreFs::new(LustreConfig::small());
                        let client = fs.client();
                        for i in 0..batch {
                            client.create(&format!("/f{i}")).unwrap();
                        }
                        (
                            Collector::new(fs.mdt(0), "/mnt/lustre", 5000, batch, None),
                            fs,
                        )
                    },
                    |(mut collector, _fs)| black_box(collector.step().len()),
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_collector);
criterion_main!(benches);
