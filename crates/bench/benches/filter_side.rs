//! Filtering-side ablation (DESIGN.md §6, paper §IV Consumption).
//!
//! The paper filters at the *consumer*, not the aggregator, "to
//! alleviate potential overheads if a large number of consumers were to
//! ask to monitor different files and directories". This bench
//! measures the aggregator-side alternative's cost growth with consumer
//! count versus the consumer-side design's flat aggregator cost.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fsmon_core::EventFilter;
use fsmon_events::{EventKind, StandardEvent};
use std::time::Duration;

fn events(n: usize) -> Vec<StandardEvent> {
    (0..n)
        .map(|i| {
            StandardEvent::new(
                EventKind::Create,
                "/mnt/lustre",
                format!("/proj{}/data/file-{i}", i % 64),
            )
        })
        .collect()
}

fn filters(n: usize) -> Vec<EventFilter> {
    (0..n)
        .map(|i| EventFilter::subtree(format!("/proj{i}")))
        .collect()
}

fn bench_filter_side(c: &mut Criterion) {
    let mut group = c.benchmark_group("filter_side");
    group.sample_size(15);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    let batch = events(1024);
    group.throughput(Throughput::Elements(1024));

    for &consumers in &[1usize, 16, 64] {
        let fs = filters(consumers);
        // Aggregator-side: the aggregator evaluates every consumer's
        // filter for every event (cost grows with consumer count).
        group.bench_with_input(
            BenchmarkId::new("aggregator_side", consumers),
            &consumers,
            |b, _| {
                b.iter(|| {
                    let mut delivered = 0usize;
                    for ev in &batch {
                        for f in &fs {
                            if f.matches(ev) {
                                delivered += 1;
                            }
                        }
                    }
                    black_box(delivered)
                })
            },
        );
        // Consumer-side: the aggregator only fans out (a clone per
        // consumer is the publish cost proxy); each consumer filters
        // its own copy — aggregate work is the same, but the
        // *aggregator's* share stays flat, which is what the paper
        // optimizes for. Here we measure one consumer's share.
        group.bench_with_input(
            BenchmarkId::new("consumer_side_per_consumer", consumers),
            &consumers,
            |b, _| {
                let own = &fs[0];
                b.iter(|| {
                    let mut delivered = 0usize;
                    for ev in &batch {
                        if own.matches(ev) {
                            delivered += 1;
                        }
                    }
                    black_box(delivered)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_filter_side);
criterion_main!(benches);
