//! LRU cache micro-benchmarks: the data structure whose economics
//! drive Tables VI and VIII.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fsmon_core::LruCache;
use lustre_sim::Fid;

fn bench_lru(c: &mut Criterion) {
    let mut group = c.benchmark_group("lru");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    for &size in &[200usize, 5000] {
        group.bench_with_input(BenchmarkId::new("hit", size), &size, |b, &size| {
            let mut cache: LruCache<Fid, String> = LruCache::new(size);
            for i in 0..size {
                cache.insert(Fid::new(1, i as u32, 0), format!("/path/{i}"));
            }
            let mut i = 0u32;
            b.iter(|| {
                i = (i + 1) % size as u32;
                black_box(cache.get(&Fid::new(1, i, 0)))
            });
        });
        group.bench_with_input(BenchmarkId::new("miss", size), &size, |b, &size| {
            let mut cache: LruCache<Fid, String> = LruCache::new(size);
            for i in 0..size {
                cache.insert(Fid::new(1, i as u32, 0), format!("/path/{i}"));
            }
            let mut i = 0u32;
            b.iter(|| {
                i = i.wrapping_add(1);
                black_box(cache.get(&Fid::new(2, i, 0)))
            });
        });
        group.bench_with_input(BenchmarkId::new("insert_evict", size), &size, |b, &size| {
            let mut cache: LruCache<Fid, String> = LruCache::new(size);
            let mut i = 0u32;
            b.iter(|| {
                i = i.wrapping_add(1);
                cache.insert(Fid::new(3, i, 0), String::from("/some/resolved/path"));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lru);
criterion_main!(benches);
