//! Message queue micro-benchmarks: the collector → aggregator
//! transport's throughput, inproc and TCP.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use fsmon_mq::{Context, Message};
use std::time::Duration;

fn bench_mq(c: &mut Criterion) {
    let mut group = c.benchmark_group("mq");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));

    group.throughput(Throughput::Elements(1));
    group.bench_function("inproc_pubsub_send_recv", |b| {
        let ctx = Context::new();
        let publisher = ctx.publisher();
        publisher.bind("inproc://bench").unwrap();
        let sub = ctx.subscriber();
        sub.connect("inproc://bench").unwrap();
        sub.subscribe(b"");
        let payload = Message::from_parts(vec![b"topic".to_vec(), vec![0u8; 256]]);
        b.iter(|| {
            publisher.send(payload.clone()).unwrap();
            black_box(sub.recv_timeout(Duration::from_secs(1)).unwrap())
        });
    });

    group.bench_function("inproc_pushpull_send_recv", |b| {
        let ctx = Context::new();
        let pull = ctx.puller();
        pull.bind("inproc://bench-pipe").unwrap();
        let push = ctx.pusher();
        push.connect("inproc://bench-pipe").unwrap();
        let payload = Message::single(vec![0u8; 256]);
        b.iter(|| {
            push.send(payload.clone()).unwrap();
            black_box(pull.recv_timeout(Duration::from_secs(1)).unwrap())
        });
    });

    group.bench_function("tcp_pubsub_send_recv", |b| {
        let ctx = Context::new();
        let publisher = ctx.publisher();
        publisher.bind("tcp://127.0.0.1:0").unwrap();
        let addr = publisher.local_addr().unwrap();
        let sub = ctx.subscriber();
        sub.connect(&format!("tcp://{addr}")).unwrap();
        sub.subscribe(b"");
        std::thread::sleep(Duration::from_millis(100)); // subscription handshake
        let payload = Message::from_parts(vec![b"topic".to_vec(), vec![0u8; 256]]);
        b.iter(|| {
            publisher.send(payload.clone()).unwrap();
            black_box(sub.recv_timeout(Duration::from_secs(1)).unwrap())
        });
    });

    // Batched: one message carrying 1024 events' worth of payload.
    group.throughput(Throughput::Elements(1024));
    group.bench_function("inproc_pubsub_batched_1024", |b| {
        let ctx = Context::new();
        let publisher = ctx.publisher();
        publisher.bind("inproc://bench-batch").unwrap();
        let sub = ctx.subscriber();
        sub.connect("inproc://bench-batch").unwrap();
        sub.subscribe(b"");
        let payload = Message::from_parts(vec![b"topic".to_vec(), vec![0u8; 96 * 1024]]);
        b.iter(|| {
            publisher.send(payload.clone()).unwrap();
            black_box(sub.recv_timeout(Duration::from_secs(1)).unwrap())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_mq);
criterion_main!(benches);
