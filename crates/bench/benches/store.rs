//! Event store micro-benchmarks: the aggregator's fault-tolerance lane.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use fsmon_events::{EventKind, StandardEvent};
use fsmon_store::{EventStore, FileStore, MemStore};
use std::time::Duration;

fn ev(i: u64) -> StandardEvent {
    StandardEvent::new(EventKind::Create, "/mnt/lustre", format!("/f{i}"))
}

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("store");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    group.throughput(Throughput::Elements(1));

    group.bench_function("mem_append", |b| {
        let store = MemStore::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(store.append(&ev(i)).unwrap())
        });
    });

    group.bench_function("file_append", |b| {
        let dir = std::env::temp_dir().join(format!("fsmon-bench-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = FileStore::open(&dir).unwrap();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(store.append(&ev(i)).unwrap())
        });
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    });

    group.throughput(Throughput::Elements(100));
    group.bench_function("mem_replay_100", |b| {
        let store = MemStore::new();
        for i in 0..10_000 {
            store.append(&ev(i)).unwrap();
        }
        let mut since = 0u64;
        b.iter(|| {
            since = (since + 100) % 9_900;
            black_box(store.get_since(since, 100).unwrap())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
