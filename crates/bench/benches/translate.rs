//! Event standardization micro-benchmarks: the resolution layer's
//! per-event translation cost for every native dialect.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fsmon_core::dsi::RawEvent;
use fsmon_core::ResolutionLayer;
use fsmon_events::fsevents::{FsEventFlags, FsEventsEvent};
use fsmon_events::fswatcher::{FswChangeType, FswEvent};
use fsmon_events::inotify::{InotifyEvent, InotifyMask};
use fsmon_events::kqueue::{KqueueEvent, NoteFlags};
use fsmon_events::EventFormatter;

fn bench_translate(c: &mut Criterion) {
    let mut group = c.benchmark_group("standardize");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    group.bench_function("inotify", |b| {
        let mut layer = ResolutionLayer::new("/watch");
        b.iter(|| {
            let raw = RawEvent::Inotify {
                event: InotifyEvent {
                    wd: 1,
                    mask: InotifyMask(InotifyMask::IN_CREATE),
                    cookie: 0,
                    name: "hello.txt".to_string(),
                },
                dir_rel: "/sub".to_string(),
            };
            black_box(layer.resolve(raw))
        })
    });
    group.bench_function("kqueue", |b| {
        let mut layer = ResolutionLayer::new("/watch");
        b.iter(|| {
            let raw = RawEvent::Kqueue(KqueueEvent {
                ident: 5,
                fflags: NoteFlags(NoteFlags::NOTE_WRITE),
                path: "/watch/sub/hello.txt".to_string(),
                is_dir: false,
            });
            black_box(layer.resolve(raw))
        })
    });
    group.bench_function("fsevents", |b| {
        let mut layer = ResolutionLayer::new("/watch");
        b.iter(|| {
            let raw = RawEvent::FsEvents(FsEventsEvent {
                event_id: 9,
                flags: FsEventFlags(FsEventFlags::ITEM_CREATED | FsEventFlags::ITEM_IS_FILE),
                path: "/watch/sub/hello.txt".to_string(),
            });
            black_box(layer.resolve(raw))
        })
    });
    group.bench_function("filesystemwatcher", |b| {
        let mut layer = ResolutionLayer::new("/watch");
        b.iter(|| {
            let raw = RawEvent::Fsw(FswEvent {
                change_type: FswChangeType::Created,
                full_path: "/watch/sub/hello.txt".to_string(),
                old_full_path: None,
                is_dir: false,
            });
            black_box(layer.resolve(raw))
        })
    });
    group.bench_function("render_all_dialects", |b| {
        let mut layer = ResolutionLayer::new("/watch");
        let ev = layer.resolve(RawEvent::Inotify {
            event: InotifyEvent {
                wd: 1,
                mask: InotifyMask(InotifyMask::IN_CREATE),
                cookie: 0,
                name: "hello.txt".to_string(),
            },
            dir_rel: String::new(),
        });
        b.iter(|| {
            for fmt in EventFormatter::ALL {
                black_box(fmt.render(&ev));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_translate);
criterion_main!(benches);
