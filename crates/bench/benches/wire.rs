//! Wire codec micro-benchmarks: the per-event serialization cost on
//! the collector → aggregator path.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use fsmon_events::{decode_event_batch, encode_event_batch, EventKind, StandardEvent};

fn sample_batch(n: usize) -> Vec<StandardEvent> {
    (0..n)
        .map(|i| {
            let mut ev = StandardEvent::new(
                EventKind::Create,
                "/mnt/lustre",
                format!("/dir{}/file-{i}.dat", i % 32),
            )
            .with_timestamp(1_552_084_067_000_000_000 + i as u64)
            .with_mdt((i % 4) as u16);
            ev.id = i as u64;
            ev
        })
        .collect()
}

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    for &n in &[1usize, 64, 1024] {
        let batch = sample_batch(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(format!("encode/{n}"), |b| {
            b.iter(|| black_box(encode_event_batch(&batch)))
        });
        let frame = encode_event_batch(&batch);
        group.bench_function(format!("decode/{n}"), |b| {
            b.iter(|| black_box(decode_event_batch(&frame).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
