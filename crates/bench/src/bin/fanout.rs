//! Fan-out bench: per-event cost of the sequencer's filter-pushdown
//! engine as the subscriber population grows at a fixed class count.
//!
//! Builds a publisher with 8 filter classes at mixed selectivity
//! (~0.1%, 1%, 10%, and 100% of a synthetic stream, each with and
//! without a kind restriction), attaches N broadcast-ring subscribers
//! spread round-robin across the classes plus one bounded inproc
//! socket per class, pre-encodes stamped batches, and times
//! [`fsmon_lustre::FanoutEngine::fan_out`] — the production match +
//! slice + publish loop. Because each event is matched once against
//! the shared subscription index and each class's N subscribers share
//! one ring write, per-event cost must stay near-flat while N grows
//! 100x (1k → 100k); the run fails if it more than doubles, or if any
//! subscriber was force-disconnected (stalls only degrade to
//! catch-up-from-store).
//!
//! Usage: `fanout [--events N] [--out PATH] [--baseline PATH]`
//!
//! With `--baseline`, per-event cost at 100k subscribers is compared
//! against the committed baseline and the process exits nonzero on
//! a regression beyond 20% — the CI smoke gate. `--events` must match
//! the committed baseline's stream size for comparable numbers.

use bytes::{Bytes, BytesMut};
use fsmon_events::kind::KindMask;
use fsmon_events::wire::{encode_event_batch_offsets, patch_event_id};
use fsmon_events::{EventKind, StandardEvent};
use fsmon_lustre::FanoutEngine;
use fsmon_mq::{Context, PubSocket, RingPoll, SubSocket};
use fsmon_rules::FilterSpec;
use std::sync::Arc;
use std::time::Instant;

/// Sequencer-sized publish batches.
const BATCH: usize = 512;
/// Subscriber populations; the acceptance gate compares the first and
/// last tier (100x growth).
const TIERS: [usize; 3] = [1_000, 10_000, 100_000];
/// Allowed regression against the committed baseline.
const REGRESSION_TOLERANCE: f64 = 0.20;
/// Per-event cost may grow at most this much across the 100x tier span.
const GROWTH_CEILING: f64 = 2.0;

/// Deterministic xorshift so runs are reproducible without a seed
/// dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The 8 fixed filter classes: four path selectivities crossed with
/// all-kinds and a kind restriction. Selectivity comes from the
/// synthetic stream's top-level directory mix.
fn filter_classes() -> Vec<String> {
    let creates = KindMask::from_kinds([EventKind::Create]);
    vec![
        FilterSpec::all().canonical(),
        FilterSpec::all().with_kinds(creates).canonical(),
        FilterSpec::subtree("/tepid").canonical(),
        FilterSpec::subtree("/tepid")
            .with_kinds(creates)
            .canonical(),
        FilterSpec::subtree("/warm").canonical(),
        FilterSpec::subtree("/warm").with_kinds(creates).canonical(),
        FilterSpec::subtree("/hot").canonical(),
        FilterSpec::subtree("/hot").with_kinds(creates).canonical(),
    ]
}

/// A stamped event stream whose top-level directories set the class
/// selectivities: /hot 0.1%, /warm 1%, /tepid 10%, /cold the rest;
/// half creates, half writes.
fn synthetic_stream(n: u64) -> Vec<StandardEvent> {
    let mut rng = Rng(0x5eed_fa10_0b5e_55ed);
    (1..=n)
        .map(|id| {
            let roll = rng.below(1_000);
            let dir = if roll < 1 {
                "hot"
            } else if roll < 11 {
                "warm"
            } else if roll < 111 {
                "tepid"
            } else {
                "cold"
            };
            let kind = if rng.below(2) == 0 {
                EventKind::Create
            } else {
                EventKind::CloseWrite
            };
            let path = format!("/{dir}/d{}/f{}.dat", rng.below(64), rng.below(256));
            let mut ev = StandardEvent::new(kind, "/", path).with_size(rng.below(1 << 20));
            ev.id = id;
            ev.timestamp_ns = id * 1_000;
            ev
        })
        .collect()
}

/// Pre-encode the stream into stamped publish batches exactly as the
/// sequencer does (encode, then patch ids in place), so the timed loop
/// measures fan-out alone.
fn encode_batches(stream: &[StandardEvent]) -> Vec<(Vec<StandardEvent>, Vec<usize>, Bytes)> {
    stream
        .chunks(BATCH)
        .map(|chunk| {
            let mut buf = BytesMut::new();
            let mut offsets = Vec::new();
            encode_event_batch_offsets(chunk, &mut buf, &mut offsets);
            for (ev, off) in chunk.iter().zip(&offsets) {
                patch_event_id(&mut buf, *off, ev.id);
            }
            (chunk.to_vec(), offsets, buf.split_frozen())
        })
        .collect()
}

struct TierResult {
    subscribers: usize,
    per_event_ns: f64,
    frames: u64,
    stalls: u64,
    disconnects: usize,
    ring_frames_seen: u64,
}

/// Run one subscriber tier: fresh publisher, `n` ring cursors spread
/// across the classes, one bounded inproc socket per class, then the
/// timed fan-out of every pre-encoded batch.
fn run_tier(
    n: usize,
    classes: &[String],
    batches: &[(Vec<StandardEvent>, Vec<usize>, Bytes)],
) -> TierResult {
    let ctx = Context::new();
    let publisher: Arc<PubSocket> = Arc::new(ctx.publisher());
    let endpoint = format!("inproc://bench-fanout-{n}");
    publisher.bind(&endpoint).unwrap();

    // One socket subscriber per class exercises the bounded-queue
    // delivery path; it is never drained, so it stalls and degrades —
    // what must NOT happen is a disconnect.
    let socket_subs: Vec<SubSocket> = classes
        .iter()
        .map(|key| {
            let sub = SubSocket::with_hwm(ctx.clone(), 64);
            sub.subscribe_filter(key);
            sub.connect(&endpoint).unwrap();
            sub
        })
        .collect();

    // The mass population: ring cursors round-robin across the classes.
    // A cursor is a passive reader — publishing is one ring write per
    // class regardless of how many cursors follow it.
    let mut cursors: Vec<_> = (0..n)
        .map(|i| publisher.subscribe_class(&classes[i % classes.len()]))
        .collect();

    let mut engine = FanoutEngine::new(publisher.clone());
    // Warm up: compile the index and fault in the class lanes.
    let (events, offsets, frame) = &batches[0];
    engine.fan_out(events, offsets, frame);

    let t0 = Instant::now();
    for (events, offsets, frame) in batches {
        engine.fan_out(events, offsets, frame);
    }
    let elapsed = t0.elapsed();
    let total_events: usize = batches.iter().map(|(e, _, _)| e.len()).sum();
    let per_event_ns = elapsed.as_nanos() as f64 / total_events as f64;

    let stats = publisher.class_stats();
    let frames: u64 = stats.iter().map(|s| s.frames).sum();
    let stalls: u64 = stats.iter().map(|s| s.stalls).sum();
    let disconnects = socket_subs.iter().filter(|s| s.disconnected()).count();

    // Spot-check that frames actually reached the rings: one cursor per
    // class must observe a frame (or an overrun, which the consumer
    // heals from the store — still delivery, not disconnection).
    let mut ring_frames_seen = 0u64;
    for cursor in cursors.iter_mut().take(classes.len()) {
        match cursor.poll() {
            RingPoll::Frame(_) => ring_frames_seen += 1,
            RingPoll::Overrun { .. } => {
                if let RingPoll::Frame(_) = cursor.poll() {
                    ring_frames_seen += 1;
                }
            }
            RingPoll::Empty => {}
        }
    }

    TierResult {
        subscribers: n,
        per_event_ns,
        frames,
        stalls,
        disconnects,
        ring_frames_seen,
    }
}

/// Pull `"<key>": <n>` out of a previously written flat report without
/// a JSON dependency. `None` when the baseline predates the field.
fn baseline_field(text: &str, key: &str) -> Option<f64> {
    let quoted = format!("\"{key}\"");
    let after_key = &text[text.find(&quoted)? + quoted.len()..];
    let num = after_key.trim_start_matches([':', ' ', '\t', '\n']);
    let end = num
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(num.len());
    num[..end].parse().ok()
}

fn main() {
    let mut events = 200_000u64;
    let mut out_path = "BENCH_fanout.json".to_string();
    let mut baseline_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--events" => {
                events = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--events needs a number");
            }
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--baseline" => baseline_path = Some(args.next().expect("--baseline needs a path")),
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("usage: fanout [--events N] [--out PATH] [--baseline PATH]");
                std::process::exit(2);
            }
        }
    }

    let classes = filter_classes();
    eprintln!(
        "fanout bench: {events} stamped events, {} filter classes, tiers {TIERS:?}",
        classes.len()
    );
    let stream = synthetic_stream(events);
    let batches = encode_batches(&stream);

    let mut tiers: Vec<TierResult> = Vec::new();
    for &n in &TIERS {
        let tier = run_tier(n, &classes, &batches);
        eprintln!(
            "  {:>7} subscribers: {:8.1} ns/event, {} class frames, {} stalls, \
             {} disconnects, {}/{} rings spot-checked",
            tier.subscribers,
            tier.per_event_ns,
            tier.frames,
            tier.stalls,
            tier.disconnects,
            tier.ring_frames_seen,
            classes.len()
        );
        tiers.push(tier);
    }

    let first = &tiers[0];
    let last = &tiers[tiers.len() - 1];
    let growth = last.per_event_ns / first.per_event_ns.max(1e-9);
    let disconnects: usize = tiers.iter().map(|t| t.disconnects).sum();
    let ring_checks_ok = tiers
        .iter()
        .all(|t| t.ring_frames_seen == classes.len() as u64);

    // Headline rate for the shared envelope: events the fan-out loop
    // can push per second at the 100k-subscriber tier.
    let events_per_sec = 1e9 / last.per_event_ns.max(1e-9);
    let body = format!(
        "  \"events\": {events},\n  \
         \"batch\": {BATCH},\n  \"classes\": {},\n  \
         \"per_event_ns_1k\": {:.1},\n  \"per_event_ns_10k\": {:.1},\n  \
         \"per_event_ns_100k\": {:.1},\n  \
         \"growth_1k_to_100k\": {growth:.3},\n  \
         \"frames_100k\": {},\n  \"stalls_100k\": {},\n  \
         \"disconnects\": {disconnects}",
        classes.len(),
        tiers[0].per_event_ns,
        tiers[1].per_event_ns,
        tiers[2].per_event_ns,
        last.frames,
        last.stalls,
    );
    let json = fsmon_bench::report::render("fanout", events_per_sec, &body);
    std::fs::write(&out_path, &json).expect("write bench report");
    println!("{json}");

    let mut failed = false;
    if growth > GROWTH_CEILING {
        eprintln!(
            "FAIL: per-event fan-out cost grew {growth:.2}x across a 100x subscriber span \
             (ceiling {GROWTH_CEILING}x) — delivery cost is not independent of population"
        );
        failed = true;
    } else {
        println!(
            "growth check: {growth:.2}x per-event cost across 100x subscribers \
             (ceiling {GROWTH_CEILING}x) OK"
        );
    }
    if disconnects > 0 {
        eprintln!("FAIL: {disconnects} subscriber(s) force-disconnected; stalls must only degrade");
        failed = true;
    }
    if !ring_checks_ok {
        eprintln!("FAIL: some class rings never saw a frame");
        failed = true;
    }
    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let committed = baseline_field(&text, "per_event_ns_100k")
            .unwrap_or_else(|| panic!("no per_event_ns_100k in {path}"));
        let ceiling = committed * (1.0 + REGRESSION_TOLERANCE);
        if last.per_event_ns > ceiling {
            eprintln!(
                "FAIL: per-event cost {:.1} ns regressed >{:.0}% above committed baseline \
                 {committed:.1} ns",
                last.per_event_ns,
                100.0 * REGRESSION_TOLERANCE
            );
            failed = true;
        } else {
            println!(
                "baseline check: {:.1} ns/event at 100k subscribers vs committed \
                 {committed:.1} ns (ceiling {ceiling:.1}) OK",
                last.per_event_ns
            );
        }
    }
    if failed {
        std::process::exit(1);
    }
}
