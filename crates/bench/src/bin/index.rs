//! Materialized index bench: fold throughput, query latency, and
//! resident footprint of `fsmon-index` over a synthetic stamped
//! stream.
//!
//! Generates a dense-id event stream (creates, writes, renames,
//! attribute changes, deletes over a fixed working set — the same op
//! mix the fold arms see from the live pipeline), folds it through
//! [`IndexService::ingest`] in subscriber-sized batches, then times a
//! mixed `find`/`du` query workload against the materialized state.
//! Writes `BENCH_index.json` with ingest events/sec, query p50/p99,
//! and resident bytes.
//!
//! Usage: `index [--events N] [--queries N] [--out PATH] [--baseline PATH]`
//!
//! With `--baseline`, ingest throughput is compared against the
//! committed baseline and the process exits nonzero on a >20%
//! regression; query p99 gates the same way when the baseline carries
//! the field — the CI smoke gate.

use fsmon_events::{EventKind, StandardEvent};
use fsmon_index::{EntryKind, FindQuery, IndexService, PolicyEngine};
use std::time::Instant;

/// Directories in the synthetic namespace.
const DIRS: u64 = 64;
/// Files per directory in the working set.
const FILES_PER_DIR: u64 = 256;
/// Subscriber-sized ingest batches (the aggregator's publish batches
/// land in this range).
const BATCH: usize = 512;
/// Allowed regression against the committed baseline.
const REGRESSION_TOLERANCE: f64 = 0.20;

/// Deterministic xorshift so runs are reproducible without a seed
/// dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn path_of(rng: &mut Rng) -> String {
    format!("/w/d{}/f{}.dat", rng.below(DIRS), rng.below(FILES_PER_DIR))
}

/// A stamped stream with the live pipeline's op mix: mostly creates
/// and writes, a steady trickle of renames, attribute changes, and
/// deletes, ids dense from 1.
fn synthetic_stream(n: u64) -> Vec<StandardEvent> {
    let mut rng = Rng(0x5eed_f01d_cafe_d00d);
    (1..=n)
        .map(|id| {
            let roll = rng.below(100);
            let mut ev = if roll < 35 {
                StandardEvent::new(EventKind::Create, "/w", path_of(&mut rng))
                    .with_size(rng.below(1 << 20))
                    .with_owner(rng.below(8) as u32)
            } else if roll < 70 {
                StandardEvent::new(EventKind::CloseWrite, "/w", path_of(&mut rng))
                    .with_size(rng.below(1 << 22))
            } else if roll < 80 {
                let old = path_of(&mut rng);
                StandardEvent::new(EventKind::MovedTo, "/w", path_of(&mut rng)).with_old_path(old)
            } else if roll < 90 {
                StandardEvent::new(EventKind::Attrib, "/w", path_of(&mut rng))
                    .with_owner(rng.below(8) as u32)
            } else {
                StandardEvent::new(EventKind::Delete, "/w", path_of(&mut rng))
            };
            ev.id = id;
            ev.timestamp_ns = id * 1_000;
            ev
        })
        .collect()
}

/// Pull `"<key>": <n>` out of a previously written flat report without
/// a JSON dependency. `None` when the baseline predates the field.
fn baseline_field(text: &str, key: &str) -> Option<f64> {
    let quoted = format!("\"{key}\"");
    let after_key = &text[text.find(&quoted)? + quoted.len()..];
    let num = after_key.trim_start_matches([':', ' ', '\t', '\n']);
    let end = num
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(num.len());
    num[..end].parse().ok()
}

fn main() {
    let mut events = 400_000u64;
    let mut queries = 400u64;
    let mut out_path = "BENCH_index.json".to_string();
    let mut baseline_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--events" => {
                events = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--events needs a number");
            }
            "--queries" => {
                queries = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--queries needs a number");
            }
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--baseline" => baseline_path = Some(args.next().expect("--baseline needs a path")),
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("usage: index [--events N] [--queries N] [--out PATH] [--baseline PATH]");
                std::process::exit(2);
            }
        }
    }

    eprintln!("index bench: generating {events} stamped events over {DIRS}x{FILES_PER_DIR} paths");
    let stream = synthetic_stream(events);

    // Fold throughput: the stream arrives in subscriber-sized batches,
    // already ordered (the catch-up path), so this measures the pure
    // fold + rollup + policy-observe cost.
    let telemetry_before = fsmon_telemetry::global().snapshot();
    let mut svc = IndexService::new(PolicyEngine::standard("/**", 3_600_000_000_000, 1.0));
    let t0 = Instant::now();
    for batch in stream.chunks(BATCH) {
        svc.ingest(batch);
    }
    let ingest_secs = t0.elapsed().as_secs_f64();
    let ingest_events_per_sec = events as f64 / ingest_secs.max(1e-9);
    assert_eq!(svc.index().applied_seq(), events, "fold dropped events");
    let entries = svc.index().len();
    let resident_bytes = svc.index().resident_bytes();
    eprintln!(
        "  folded {events} events in {ingest_secs:.3}s ({ingest_events_per_sec:.0} ev/s), \
         {entries} entries, {resident_bytes} resident bytes"
    );

    // Query latency: a mixed read workload against the materialized
    // state — pattern finds with varying predicates, shallow and deep
    // du rollups, full policy evaluation every 64th query. Each call
    // records `fsmon_index_query_ns`, so quantiles come from the
    // telemetry delta.
    let now_ns = events * 1_000 + 1;
    let mut rng = Rng(0xdead_beef_0bad_f00d);
    let mut rows_seen = 0usize;
    for q in 0..queries {
        match q % 4 {
            0 => {
                let query = FindQuery::default()
                    .pattern("/w/d1/*.dat")
                    .min_size(rng.below(1 << 20));
                rows_seen += svc.find(&query, now_ns).len();
            }
            1 => {
                let query = FindQuery::default()
                    .older_than_ns(rng.below(now_ns))
                    .kind(EntryKind::File);
                rows_seen += svc.find(&query, now_ns).len();
            }
            2 => rows_seen += svc.du("/w", 1).len(),
            _ => {
                rows_seen += svc.du("/", usize::MAX).len();
                if q % 64 == 3 {
                    rows_seen += svc.evaluate(now_ns).len();
                }
            }
        }
    }
    let delta = fsmon_telemetry::global()
        .snapshot()
        .delta_from(&telemetry_before);
    let query_hist = delta
        .histogram("fsmon_index_query_ns")
        .expect("query_ns histogram recorded");
    let query_p50_ns = query_hist.quantile(0.5);
    let query_p99_ns = query_hist.quantile(0.99);
    let fold_p99_ns = delta
        .histogram("fsmon_index_fold_ns")
        .map(|h| h.quantile(0.99))
        .unwrap_or(0);
    eprintln!(
        "  {queries} queries ({rows_seen} rows), p50 {query_p50_ns} ns, p99 {query_p99_ns} ns"
    );

    // Fold throughput doubles as the headline rate in the shared
    // report envelope; the baseline gate still reads the exact
    // `ingest_events_per_sec` key below.
    let body = format!(
        "  \"events\": {events},\n  \
         \"queries\": {queries},\n  \"batch\": {BATCH},\n  \
         \"ingest_events_per_sec\": {ingest_events_per_sec:.1},\n  \
         \"ingest_secs\": {ingest_secs:.3},\n  \
         \"fold_batch_p99_ns\": {fold_p99_ns},\n  \
         \"entries\": {entries},\n  \"resident_bytes\": {resident_bytes},\n  \
         \"query_p50_ns\": {query_p50_ns},\n  \"query_p99_ns\": {query_p99_ns}"
    );
    let json = fsmon_bench::report::render("index", ingest_events_per_sec, &body);
    std::fs::write(&out_path, &json).expect("write bench report");
    println!("{json}");

    let mut failed = false;
    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let committed = baseline_field(&text, "ingest_events_per_sec")
            .unwrap_or_else(|| panic!("no ingest_events_per_sec in {path}"));
        let floor = committed * (1.0 - REGRESSION_TOLERANCE);
        if ingest_events_per_sec < floor {
            eprintln!(
                "FAIL: ingest {ingest_events_per_sec:.0} ev/s regressed >{:.0}% below committed \
                 baseline {committed:.0} ev/s",
                100.0 * REGRESSION_TOLERANCE
            );
            failed = true;
        } else {
            println!(
                "baseline check: ingest {ingest_events_per_sec:.0} ev/s vs committed \
                 {committed:.0} ev/s (floor {floor:.0}) OK"
            );
        }
        match baseline_field(&text, "query_p99_ns") {
            Some(committed_p99) if committed_p99 > 0.0 => {
                let ceiling = committed_p99 * (1.0 + REGRESSION_TOLERANCE);
                if query_p99_ns as f64 > ceiling {
                    eprintln!(
                        "FAIL: query p99 {query_p99_ns} ns regressed >{:.0}% above committed \
                         baseline {committed_p99:.0} ns",
                        100.0 * REGRESSION_TOLERANCE
                    );
                    failed = true;
                } else {
                    println!(
                        "baseline check: query p99 {query_p99_ns} ns vs committed \
                         {committed_p99:.0} ns (ceiling {ceiling:.0}) OK"
                    );
                }
            }
            _ => println!("baseline check: no committed query_p99_ns; query gate skipped"),
        }
    }
    if failed {
        std::process::exit(1);
    }
}
