//! Event-delivery latency — quantifying §V-D6's qualitative claim:
//! "We did not notice any delay in the event reporting procedure by
//! FSMonitor when the three applications were executing simultaneously."
//!
//! Probes measure the wall-clock time from issuing a metadata operation
//! on a client to receiving its standardized event at the consumer,
//! both on an idle pipeline and while a background workload saturates
//! the same MDS.

use fsmon_lustre::{ScalableConfig, ScalableMonitor};
use fsmon_testbed::profiles::TestbedKind;
use fsmon_testbed::{LatencyHistogram, Table};
use fsmon_workloads::{EvaluatePerformanceScript, ScriptVariant};
use lustre_sim::LustreFs;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn probe_latencies(
    fs: &Arc<LustreFs>,
    monitor: &ScalableMonitor,
    probes: usize,
    tag: &str,
) -> LatencyHistogram {
    let hist = LatencyHistogram::new();
    let client = fs.client();
    let consumer = monitor
        .new_consumer(fsmon_core::EventFilter::subtree("/probe"))
        .expect("probe consumer");
    client.mkdir("/probe").ok();
    // Swallow any prior /probe traffic (the mkdir, earlier phases).
    while consumer.recv(Duration::from_millis(200)).is_some() {}
    eprintln!("[latency] probing ({tag}, {probes} samples)...");
    for i in 0..probes {
        let path = format!("/probe/{tag}-{i}");
        let t0 = Instant::now();
        client.create(&path).expect("probe create");
        // Wait for exactly this create to arrive.
        loop {
            match consumer.recv(Duration::from_secs(10)) {
                Some(ev) if ev.path == path => break,
                Some(_) => continue,
                None => panic!("probe event for {path} never arrived"),
            }
        }
        hist.record(t0.elapsed().as_nanos() as u64);
        client.unlink(&path).expect("probe cleanup");
        // Swallow this probe's delete before the next sample.
        loop {
            match consumer.recv(Duration::from_secs(10)) {
                Some(ev) if ev.path == path => break,
                Some(_) => continue,
                None => panic!("probe delete for {path} never arrived"),
            }
        }
    }
    hist
}

fn main() {
    let config = TestbedKind::Iota.config();
    let fs = LustreFs::new(lustre_sim::LustreConfig { n_mdt: 1, ..config });
    let monitor = ScalableMonitor::start(&fs, ScalableConfig::default()).expect("monitor");

    // Idle pipeline.
    let idle = probe_latencies(&fs, &monitor, 100, "idle");

    // Under load: a background workload hammers the same MDS.
    let stop = Arc::new(AtomicBool::new(false));
    let loadgen = {
        let client = fs.client();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let script = EvaluatePerformanceScript::new(ScriptVariant::CreateModifyDelete, "/")
                .with_working_set(1024);
            let mut session = fsmon_workloads::scripts::ScriptSession::new(script);
            while !stop.load(Ordering::Relaxed) {
                session.step(&client);
            }
            session.finish()
        })
    };
    let loaded = probe_latencies(&fs, &monitor, 100, "loaded");
    stop.store(true, Ordering::Relaxed);
    let load_run = loadgen.join().expect("loadgen");

    let mut table = Table::new("§V-D6: event delivery latency (client op → consumer)").header([
        "Pipeline state",
        "p50",
        "p95",
        "p99",
        "max",
    ]);
    let human = |ns: u64| {
        if ns >= 1_000_000 {
            format!("{:.2}ms", ns as f64 / 1e6)
        } else {
            format!("{:.1}µs", ns as f64 / 1e3)
        }
    };
    table.row([
        "idle".to_string(),
        human(idle.quantile_ns(0.50)),
        human(idle.quantile_ns(0.95)),
        human(idle.quantile_ns(0.99)),
        human(idle.max_ns()),
    ]);
    table.row([
        format!(
            "under load ({:.0} background ops/sec)",
            load_run.ops_per_sec()
        ),
        human(loaded.quantile_ns(0.50)),
        human(loaded.quantile_ns(0.95)),
        human(loaded.quantile_ns(0.99)),
        human(loaded.max_ns()),
    ]);
    table.note("paper's observation to reproduce: no qualitative delay under concurrent applications (latencies stay in the same regime)");
    table.note(format!("idle summary:   {}", idle.summary()));
    table.note(format!("loaded summary: {}", loaded.summary()));
    table.emit("latency");
    monitor.stop();
}
