//! Pipeline concurrency bench: parallel FID resolution plus sharded
//! aggregator fan-out against the serial baseline.
//!
//! Generates a changelog backlog first (unmonitored — the simulated
//! changelog retains everything until a user clears it), then starts
//! the pipeline and times the drain. The pipeline is saturated for the
//! whole window, so events/sec is its true service rate (§V-D2's
//! saturated regime), measured once with one resolver thread and one
//! publish lane and once with the tuned pool. Writes
//! `BENCH_pipeline.json` with both runs plus the speedup.
//!
//! Usage: `pipeline [--seconds N] [--out PATH] [--baseline PATH]`
//!
//! With `--baseline`, the tuned events/sec is also compared against
//! the committed baseline file and the process exits nonzero on a
//! >20% throughput regression — the CI smoke gate.

use fsmon_lustre::{ScalableConfig, ScalableMonitor};
use fsmon_testbed::profiles::TestbedKind;
use fsmon_workloads::{EvaluatePerformanceScript, ScriptVariant};
use lustre_sim::LustreFs;
use std::time::{Duration, Instant};

/// Cache far smaller than the working set, so most events pay the
/// fid2path cost and the resolver pool is what's under test.
const CACHE: usize = 1024;
const WORKING_SET: usize = 8192;
const TUNED_THREADS: usize = 4;
const TUNED_LANES: usize = 4;
/// Allowed throughput regression against the committed baseline.
const REGRESSION_TOLERANCE: f64 = 0.20;

struct Measured {
    resolver_threads: usize,
    publish_lanes: usize,
    events_per_sec: f64,
    drain_secs: f64,
    p99_resolve_ns: u64,
    cache_hit_ratio: f64,
    generated: u64,
    reported: u64,
}

fn measure(seconds: u64, resolver_threads: usize, publish_lanes: usize) -> Measured {
    let mut config = TestbedKind::Aws.config();
    config.n_mdt = 1;
    let telemetry_before = fsmon_telemetry::global().snapshot();
    let fs = LustreFs::new(config);

    // Build the backlog with no monitor attached: the changelog holds
    // every record until a registered user clears it, so the pipeline
    // starts saturated and stays saturated until the last event.
    let client = fs.client();
    EvaluatePerformanceScript::new(ScriptVariant::CreateModifyDelete, "/")
        .with_working_set(WORKING_SET)
        .run_for(&client, Duration::from_secs(seconds));
    let generated = fs.mdt(0).changelog_stats().appended;

    let t0 = Instant::now();
    let monitor = ScalableMonitor::start(
        &fs,
        ScalableConfig {
            cache_size: CACHE,
            resolver_threads,
            publish_lanes,
            ..ScalableConfig::default()
        },
    )
    .expect("start scalable monitor");
    // The performance script issues no renames, so records map 1:1 to
    // events and the aggregator's received count hits `generated`
    // exactly when the backlog is drained.
    monitor.wait_events(generated, Duration::from_secs(600));
    let drain = t0.elapsed();
    let reported = monitor.aggregator_stats().received;
    monitor.stop();

    let delta = fsmon_telemetry::global()
        .snapshot()
        .delta_from(&telemetry_before);
    let hits = delta.counter("fsmon_fid2path_hits_total") as f64;
    let misses = delta.counter("fsmon_fid2path_misses_total") as f64;
    Measured {
        resolver_threads,
        publish_lanes,
        events_per_sec: generated as f64 / drain.as_secs_f64().max(1e-9),
        drain_secs: drain.as_secs_f64(),
        p99_resolve_ns: delta
            .histogram("fsmon_fid2path_resolve_ns")
            .map(|h| h.quantile(0.99))
            .unwrap_or(0),
        cache_hit_ratio: if hits + misses == 0.0 {
            0.0
        } else {
            hits / (hits + misses)
        },
        generated,
        reported,
    }
}

fn render(m: &Measured) -> String {
    format!(
        "{{\n    \"resolver_threads\": {},\n    \"publish_lanes\": {},\n    \
         \"events_per_sec\": {:.1},\n    \"drain_secs\": {:.3},\n    \
         \"p99_resolve_ns\": {},\n    \"cache_hit_ratio\": {:.4},\n    \
         \"generated\": {},\n    \"reported\": {}\n  }}",
        m.resolver_threads,
        m.publish_lanes,
        m.events_per_sec,
        m.drain_secs,
        m.p99_resolve_ns,
        m.cache_hit_ratio,
        m.generated,
        m.reported,
    )
}

/// Pull `"tuned": { ... "events_per_sec": <n> ... }` out of a
/// previously written report without a JSON dependency.
fn baseline_events_per_sec(text: &str) -> Option<f64> {
    let tuned = &text[text.find("\"tuned\"")?..];
    let after_key = &tuned[tuned.find("\"events_per_sec\"")? + "\"events_per_sec\"".len()..];
    let num = after_key.trim_start_matches([':', ' ', '\t', '\n']);
    let end = num
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(num.len());
    num[..end].parse().ok()
}

fn main() {
    let mut seconds = 3u64;
    let mut out_path = "BENCH_pipeline.json".to_string();
    let mut baseline_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seconds" => {
                seconds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seconds needs a number");
            }
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--baseline" => baseline_path = Some(args.next().expect("--baseline needs a path")),
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("usage: pipeline [--seconds N] [--out PATH] [--baseline PATH]");
                std::process::exit(2);
            }
        }
    }

    eprintln!("pipeline bench: serial baseline (1 resolver thread, 1 publish lane), {seconds}s");
    let serial = measure(seconds, 1, 1);
    eprintln!(
        "  capacity {:.0} ev/s, p99 resolve {} ns, hit ratio {:.1}%",
        serial.events_per_sec,
        serial.p99_resolve_ns,
        100.0 * serial.cache_hit_ratio
    );
    eprintln!("pipeline bench: tuned ({TUNED_THREADS} resolver threads, {TUNED_LANES} publish lanes), {seconds}s");
    let tuned = measure(seconds, TUNED_THREADS, TUNED_LANES);
    eprintln!(
        "  capacity {:.0} ev/s, p99 resolve {} ns, hit ratio {:.1}%",
        tuned.events_per_sec,
        tuned.p99_resolve_ns,
        100.0 * tuned.cache_hit_ratio
    );

    let speedup = tuned.events_per_sec / serial.events_per_sec.max(1e-9);
    let json = format!(
        "{{\n  \"bench\": \"pipeline\",\n  \"testbed\": \"aws\",\n  \
         \"seconds\": {seconds},\n  \"cache\": {CACHE},\n  \
         \"working_set\": {WORKING_SET},\n  \"serial\": {},\n  \
         \"tuned\": {},\n  \"speedup\": {speedup:.2}\n}}\n",
        render(&serial),
        render(&tuned),
    );
    std::fs::write(&out_path, &json).expect("write bench report");
    println!("{json}");
    println!("speedup: {speedup:.2}x (tuned vs serial collector capacity)");

    let mut failed = false;
    if speedup < 2.0 {
        eprintln!("FAIL: speedup {speedup:.2}x < 2.0x with {TUNED_THREADS} resolver threads");
        failed = true;
    }
    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let committed = baseline_events_per_sec(&text)
            .unwrap_or_else(|| panic!("no tuned events_per_sec in {path}"));
        let floor = committed * (1.0 - REGRESSION_TOLERANCE);
        if tuned.events_per_sec < floor {
            eprintln!(
                "FAIL: tuned {:.0} ev/s regressed >{:.0}% below committed baseline {committed:.0} ev/s",
                tuned.events_per_sec,
                100.0 * REGRESSION_TOLERANCE
            );
            failed = true;
        } else {
            println!(
                "baseline check: tuned {:.0} ev/s vs committed {committed:.0} ev/s (floor {floor:.0}) OK",
                tuned.events_per_sec
            );
        }
    }
    if failed {
        std::process::exit(1);
    }
}
