//! Pipeline concurrency bench: parallel FID resolution plus sharded
//! aggregator fan-out against the serial baseline.
//!
//! Generates a changelog backlog first (unmonitored — the simulated
//! changelog retains everything until a user clears it), then starts
//! the pipeline and times the drain. The pipeline is saturated for the
//! whole window, so events/sec is its true service rate (§V-D2's
//! saturated regime), measured once with one resolver thread and one
//! publish lane and once with the tuned pool. Each run samples 1% of
//! events with wall-clock trace records, so the report also carries
//! end-to-end and per-stage latency quantiles. Writes
//! `BENCH_pipeline.json` with both runs plus the speedup.
//!
//! A second axis shards the aggregator tier: the same 4-MDT backlog
//! is drained once through the classic single sequencer (K=1) and once
//! through K=4 partitioned sequencers, on a commit-bound configuration
//! (durable `EveryBatch` group commit with a small group cap, hot
//! resolver cache) so the serialized fsync chain is what's under test.
//! Each shard owns its own store, so K commit chains overlap their
//! fsync waits even on one core; the report carries both runs plus the
//! `scaling` ratio under a `"shards"` section.
//!
//! Usage: `pipeline [--seconds N] [--out PATH] [--baseline PATH]`
//!
//! With `--baseline`, the tuned events/sec, traced e2e p99, traced
//! store_commit p99, and sharded (K=4) commit throughput are also
//! compared against the committed baseline file and the process exits
//! nonzero on a >20% regression of any — the CI smoke gate. A gate is
//! skipped when the baseline predates its field.

use fsmon_lustre::{ScalableConfig, ScalableMonitor};
use fsmon_testbed::profiles::TestbedKind;
use fsmon_workloads::{EvaluatePerformanceScript, ScriptVariant};
use lustre_sim::LustreFs;
use std::time::{Duration, Instant};

/// Cache far smaller than the working set, so most events pay the
/// fid2path cost and the resolver pool is what's under test.
const CACHE: usize = 1024;
const WORKING_SET: usize = 8192;
const TUNED_THREADS: usize = 4;
const TUNED_LANES: usize = 4;
/// Allowed throughput regression against the committed baseline.
const REGRESSION_TOLERANCE: f64 = 0.20;
/// Trace sampling rate for the latency columns: 1% keeps the wire
/// overhead negligible while still folding thousands of samples.
const TRACE_PER_10K: u32 = 100;
/// Shard count for the sharded-aggregator axis.
const SHARD_K: usize = 4;
/// Group-commit cap for the shard axis: one durable fsync per event
/// makes the drain commit-bound, so sharding the commit chain (K
/// overlapping fsync waits instead of one serial chain) is what's
/// measured, not resolution or publish CPU.
const SHARD_GROUP_MAX: usize = 1;
/// Required K=4 / K=1 commit-throughput ratio on the commit-bound
/// workload.
const SHARD_SCALING_FLOOR: f64 = 1.5;

struct StageQuantiles {
    stage: &'static str,
    p50_ns: u64,
    p99_ns: u64,
}

struct Measured {
    resolver_threads: usize,
    publish_lanes: usize,
    events_per_sec: f64,
    drain_secs: f64,
    p99_resolve_ns: u64,
    cache_hit_ratio: f64,
    generated: u64,
    reported: u64,
    /// End-to-end wall-clock latency of sampled traces (first to last
    /// stamped stage), dominated by queue delay in the saturated drain.
    e2e_p50_ns: u64,
    e2e_p99_ns: u64,
    /// Per-stage latency attribution from the same traces.
    stages: Vec<StageQuantiles>,
    /// Wall time until the durable store held every generated event
    /// (the store lane runs behind the publish path, so this can lag
    /// `drain_secs`).
    store_drain_secs: f64,
    /// Generated events over the store drain window.
    store_events_per_sec: f64,
    /// Events the store still retained at the end of the drain.
    store_retained: u64,
    /// Bytes of process memory the store held to serve replay
    /// (segment metadata + sparse index + frame buffer for the file
    /// store — not the retained events themselves).
    store_resident_bytes: u64,
    /// Traced store-commit (group append) stage p99.
    store_commit_p99_ns: u64,
}

fn measure(seconds: u64, resolver_threads: usize, publish_lanes: usize) -> Measured {
    let mut config = TestbedKind::Aws.config();
    config.n_mdt = 1;
    let telemetry_before = fsmon_telemetry::global().snapshot();
    let fs = LustreFs::new(config);
    // The drained events land in a real FileStore (fresh directory per
    // run) so the store lane measures durable group commit, not the
    // in-memory stub.
    let store_dir = std::env::temp_dir().join(format!(
        "fsmon-bench-pipeline-{}-t{resolver_threads}-l{publish_lanes}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&store_dir);

    // Build the backlog with no monitor attached: the changelog holds
    // every record until a registered user clears it, so the pipeline
    // starts saturated and stays saturated until the last event.
    let client = fs.client();
    EvaluatePerformanceScript::new(ScriptVariant::CreateModifyDelete, "/")
        .with_working_set(WORKING_SET)
        .run_for(&client, Duration::from_secs(seconds));
    let generated = fs.mdt(0).changelog_stats().appended;

    let t0 = Instant::now();
    let monitor = ScalableMonitor::start(
        &fs,
        ScalableConfig {
            cache_size: CACHE,
            resolver_threads,
            publish_lanes,
            trace_sample_per_10k: TRACE_PER_10K,
            // The sim clock is frozen during the drain (the backlog was
            // generated up front), so stamp traces with wall time: the
            // per-stage deltas then measure real queue delay.
            trace_clock: Some(fsmon_telemetry::trace::wall_clock()),
            store_dir: Some(store_dir.clone()),
            ..ScalableConfig::default()
        },
    )
    .expect("start scalable monitor");
    // Drain the live feed concurrently so Deliver stamps happen as
    // batches arrive: the traced e2e latency then measures the real
    // read→deliver pipeline delay under saturation, not how long
    // frames sat in the subscriber buffer waiting for a reader.
    let consumer = monitor.consumer().clone();
    let drain_stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let drainer = {
        let stop = drain_stop.clone();
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                consumer.recv_batch(8192, Duration::from_millis(50));
            }
        })
    };
    // The performance script issues no renames, so records map 1:1 to
    // events and the aggregator's received count hits `generated`
    // exactly when the backlog is drained.
    monitor.wait_events(generated, Duration::from_secs(600));
    let drain = t0.elapsed();
    let reported = monitor.aggregator_stats().received;
    // The store lane commits behind the publish path: keep timing
    // until every generated event is durably appended.
    let store = monitor.store();
    let store_deadline = Instant::now() + Duration::from_secs(600);
    while store.stats().appended < generated && Instant::now() < store_deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    let store_drain = t0.elapsed();
    let store_stats = store.stats();
    drain_stop.store(true, std::sync::atomic::Ordering::Relaxed);
    drainer.join().expect("consumer drainer");
    monitor.stop();
    let _ = std::fs::remove_dir_all(&store_dir);

    let delta = fsmon_telemetry::global()
        .snapshot()
        .delta_from(&telemetry_before);
    let hits = delta.counter("fsmon_fid2path_hits_total") as f64;
    let misses = delta.counter("fsmon_fid2path_misses_total") as f64;
    let e2e = delta.histogram("fsmon_trace_e2e_ns");
    let stages = stage_quantiles(&delta);
    let store_commit_p99_ns = stages
        .iter()
        .find(|s| s.stage == "store_commit")
        .map(|s| s.p99_ns)
        .unwrap_or(0);
    Measured {
        resolver_threads,
        publish_lanes,
        events_per_sec: generated as f64 / drain.as_secs_f64().max(1e-9),
        drain_secs: drain.as_secs_f64(),
        p99_resolve_ns: delta
            .histogram("fsmon_fid2path_resolve_ns")
            .map(|h| h.quantile(0.99))
            .unwrap_or(0),
        cache_hit_ratio: if hits + misses == 0.0 {
            0.0
        } else {
            hits / (hits + misses)
        },
        generated,
        reported,
        e2e_p50_ns: e2e.as_ref().map(|h| h.quantile(0.5)).unwrap_or(0),
        e2e_p99_ns: e2e.as_ref().map(|h| h.quantile(0.99)).unwrap_or(0),
        stages,
        store_drain_secs: store_drain.as_secs_f64(),
        store_events_per_sec: generated as f64 / store_drain.as_secs_f64().max(1e-9),
        store_retained: store_stats.retained,
        store_resident_bytes: store_stats.resident_bytes,
        store_commit_p99_ns,
    }
}

struct ShardMeasured {
    shards: usize,
    generated: u64,
    /// Wall time until every generated event was sequenced AND durably
    /// group-committed by its owning shard's store.
    commit_drain_secs: f64,
    /// Generated events over that window — the sequence+commit service
    /// rate of the aggregator tier.
    commit_events_per_sec: f64,
    /// Durable fsyncs issued across all shard stores.
    fsyncs: u64,
}

/// Drain a 4-MDT backlog through K aggregator shards on the
/// commit-bound configuration (durable `EveryBatch`, small group cap,
/// resolver cache covering the working set) and time until every
/// event is durably committed. With K=1 every group commit's fsync
/// serializes behind the single sequencer's store lane; with K>1 the
/// per-shard commit chains overlap their fsync waits.
fn measure_shards(seconds: u64, shards: usize) -> ShardMeasured {
    let mut config = TestbedKind::Aws.config();
    config.n_mdt = 4;
    let telemetry_before = fsmon_telemetry::global().snapshot();
    let fs = LustreFs::new(config);
    let store_dir = std::env::temp_dir().join(format!(
        "fsmon-bench-pipeline-shards-{}-k{shards}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&store_dir);

    // One workload directory per MDT so every shard has a stream.
    let client = fs.client();
    let n_mdt = fs.mdt_count() as usize;
    let mut bases: Vec<String> = Vec::new();
    let mut covered = vec![false; n_mdt];
    let mut i = 0;
    while covered.iter().any(|c| !c) && i < 512 {
        let name = format!("/w{i}");
        client.mkdir(&name).unwrap();
        let mdt = fs.mdt_of(&name).unwrap() as usize;
        if !covered[mdt] {
            covered[mdt] = true;
            bases.push(name);
        }
        i += 1;
    }
    for base in &bases {
        EvaluatePerformanceScript::new(ScriptVariant::CreateModifyDelete, base)
            .with_working_set(WORKING_SET / n_mdt)
            .run_for(
                &client,
                Duration::from_millis(seconds * 1000 / n_mdt as u64),
            );
    }
    let generated: u64 = (0..fs.mdt_count())
        .map(|m| fs.mdt(m).changelog_stats().appended)
        .sum();

    let t0 = Instant::now();
    let monitor = ScalableMonitor::start(
        &fs,
        ScalableConfig {
            // Cache covers the working set: resolution stays cheap and
            // the durable commit chain is the bottleneck under test.
            cache_size: WORKING_SET,
            resolver_threads: 2,
            publish_lanes: 2,
            aggregator_shards: shards,
            store_group_max: SHARD_GROUP_MAX,
            store_dir: Some(store_dir.clone()),
            durability: fsmon_store::Durability::EveryBatch,
            ..ScalableConfig::default()
        },
    )
    .expect("start sharded monitor");
    let consumer = monitor.consumer().clone();
    let drain_stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let drainer = {
        let stop = drain_stop.clone();
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                consumer.recv_batch(8192, Duration::from_millis(50));
            }
        })
    };
    monitor.wait_events(generated, Duration::from_secs(600));
    let stores = monitor.shard_stores();
    let deadline = Instant::now() + Duration::from_secs(600);
    while stores.iter().map(|s| s.stats().appended).sum::<u64>() < generated
        && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(1));
    }
    let commit_drain = t0.elapsed();
    let appended: u64 = stores.iter().map(|s| s.stats().appended).sum();
    assert_eq!(
        appended, generated,
        "K={shards}: stores hold {appended} of {generated} generated events"
    );
    drain_stop.store(true, std::sync::atomic::Ordering::Relaxed);
    drainer.join().expect("consumer drainer");
    monitor.stop();
    let _ = std::fs::remove_dir_all(&store_dir);

    let delta = fsmon_telemetry::global()
        .snapshot()
        .delta_from(&telemetry_before);
    ShardMeasured {
        shards,
        generated,
        commit_drain_secs: commit_drain.as_secs_f64(),
        commit_events_per_sec: generated as f64 / commit_drain.as_secs_f64().max(1e-9),
        fsyncs: delta.counter("fsmon_store_fsyncs_total"),
    }
}

fn render_shards(m: &ShardMeasured) -> String {
    format!(
        "{{ \"shards\": {}, \"generated\": {}, \"commit_drain_secs\": {:.3}, \
         \"commit_events_per_sec\": {:.1}, \"fsyncs\": {} }}",
        m.shards, m.generated, m.commit_drain_secs, m.commit_events_per_sec, m.fsyncs
    )
}

/// Per-stage p50/p99 from the delta's `fsmon_trace_stage_ns`
/// histograms, merged across MDT label sets, in pipeline order.
fn stage_quantiles(delta: &fsmon_telemetry::Snapshot) -> Vec<StageQuantiles> {
    use fsmon_telemetry::{MetricValue, TraceStage};
    TraceStage::ALL
        .iter()
        .filter_map(|stage| {
            let mut merged: Option<fsmon_telemetry::HistogramSnapshot> = None;
            for (id, value) in &delta.metrics {
                let MetricValue::Histogram(h) = value else {
                    continue;
                };
                let is_stage = id.name == "fsmon_trace_stage_ns"
                    && id
                        .labels
                        .iter()
                        .any(|(k, v)| k == "stage" && v == stage.name());
                if !is_stage || h.count() == 0 {
                    continue;
                }
                match &mut merged {
                    None => merged = Some(h.clone()),
                    Some(m) => m.merge(h),
                }
            }
            merged.map(|h| StageQuantiles {
                stage: stage.name(),
                p50_ns: h.quantile(0.5),
                p99_ns: h.quantile(0.99),
            })
        })
        .collect()
}

fn render(m: &Measured) -> String {
    let stages = m
        .stages
        .iter()
        .map(|s| {
            format!(
                "\"{}\": {{ \"p50_ns\": {}, \"p99_ns\": {} }}",
                s.stage, s.p50_ns, s.p99_ns
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\n    \"resolver_threads\": {},\n    \"publish_lanes\": {},\n    \
         \"events_per_sec\": {:.1},\n    \"drain_secs\": {:.3},\n    \
         \"p99_resolve_ns\": {},\n    \"cache_hit_ratio\": {:.4},\n    \
         \"generated\": {},\n    \"reported\": {},\n    \
         \"e2e_p50_ns\": {},\n    \"e2e_p99_ns\": {},\n    \
         \"store_drain_secs\": {:.3},\n    \"store_events_per_sec\": {:.1},\n    \
         \"store_retained\": {},\n    \"store_resident_bytes\": {},\n    \
         \"store_commit_p99_ns\": {},\n    \
         \"stage_latency\": {{ {stages} }}\n  }}",
        m.resolver_threads,
        m.publish_lanes,
        m.events_per_sec,
        m.drain_secs,
        m.p99_resolve_ns,
        m.cache_hit_ratio,
        m.generated,
        m.reported,
        m.e2e_p50_ns,
        m.e2e_p99_ns,
        m.store_drain_secs,
        m.store_events_per_sec,
        m.store_retained,
        m.store_resident_bytes,
        m.store_commit_p99_ns,
    )
}

/// Pull `"<section>": { ... "<key>": <n> ... }` out of a previously
/// written report without a JSON dependency. `None` when the baseline
/// predates the field.
fn baseline_field(text: &str, section: &str, key: &str) -> Option<f64> {
    let quoted_section = format!("\"{section}\"");
    let section = &text[text.find(&quoted_section)?..];
    let quoted = format!("\"{key}\"");
    let after_key = &section[section.find(&quoted)? + quoted.len()..];
    let num = after_key.trim_start_matches([':', ' ', '\t', '\n']);
    let end = num
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(num.len());
    num[..end].parse().ok()
}

fn baseline_tuned_field(text: &str, key: &str) -> Option<f64> {
    baseline_field(text, "tuned", key)
}

fn main() {
    let mut seconds = 3u64;
    let mut out_path = "BENCH_pipeline.json".to_string();
    let mut baseline_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seconds" => {
                seconds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seconds needs a number");
            }
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--baseline" => baseline_path = Some(args.next().expect("--baseline needs a path")),
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("usage: pipeline [--seconds N] [--out PATH] [--baseline PATH]");
                std::process::exit(2);
            }
        }
    }

    eprintln!("pipeline bench: serial baseline (1 resolver thread, 1 publish lane), {seconds}s");
    let serial = measure(seconds, 1, 1);
    eprintln!(
        "  capacity {:.0} ev/s, p99 resolve {} ns, e2e p99 {} ns, hit ratio {:.1}%",
        serial.events_per_sec,
        serial.p99_resolve_ns,
        serial.e2e_p99_ns,
        100.0 * serial.cache_hit_ratio
    );
    eprintln!("pipeline bench: tuned ({TUNED_THREADS} resolver threads, {TUNED_LANES} publish lanes), {seconds}s");
    let tuned = measure(seconds, TUNED_THREADS, TUNED_LANES);
    eprintln!(
        "  capacity {:.0} ev/s, p99 resolve {} ns, e2e p99 {} ns, hit ratio {:.1}%",
        tuned.events_per_sec,
        tuned.p99_resolve_ns,
        tuned.e2e_p99_ns,
        100.0 * tuned.cache_hit_ratio
    );

    eprintln!("pipeline bench: sharded aggregator axis, commit-bound (group max {SHARD_GROUP_MAX}, durability batch), {seconds}s");
    let shard1 = measure_shards(seconds, 1);
    eprintln!(
        "  K=1: {:.0} ev/s sequenced+committed ({} events, {} fsyncs)",
        shard1.commit_events_per_sec, shard1.generated, shard1.fsyncs
    );
    let shard_k = measure_shards(seconds, SHARD_K);
    eprintln!(
        "  K={SHARD_K}: {:.0} ev/s sequenced+committed ({} events, {} fsyncs)",
        shard_k.commit_events_per_sec, shard_k.generated, shard_k.fsyncs
    );
    let scaling = shard_k.commit_events_per_sec / shard1.commit_events_per_sec.max(1e-9);

    let speedup = tuned.events_per_sec / serial.events_per_sec.max(1e-9);
    // The tuned configuration's throughput is the headline rate in the
    // shared report envelope; the serial/tuned breakdown follows.
    let body = format!(
        "  \"testbed\": \"aws\",\n  \
         \"seconds\": {seconds},\n  \"cache\": {CACHE},\n  \
         \"working_set\": {WORKING_SET},\n  \"serial\": {},\n  \
         \"tuned\": {},\n  \"speedup\": {speedup:.2},\n  \
         \"shards\": {{\n    \"group_max\": {SHARD_GROUP_MAX},\n    \
         \"k1\": {},\n    \"k4\": {},\n    \"scaling\": {scaling:.2}\n  }}",
        render(&serial),
        render(&tuned),
        render_shards(&shard1),
        render_shards(&shard_k),
    );
    let json = fsmon_bench::report::render("pipeline", tuned.events_per_sec, &body);
    std::fs::write(&out_path, &json).expect("write bench report");
    println!("{json}");
    println!("speedup: {speedup:.2}x (tuned vs serial collector capacity)");
    println!("shard scaling: {scaling:.2}x (K={SHARD_K} vs K=1 sequence+commit throughput)");

    let mut failed = false;
    if speedup < 2.0 {
        eprintln!("FAIL: speedup {speedup:.2}x < 2.0x with {TUNED_THREADS} resolver threads");
        failed = true;
    }
    if scaling < SHARD_SCALING_FLOOR {
        eprintln!(
            "FAIL: shard scaling {scaling:.2}x < {SHARD_SCALING_FLOOR}x with K={SHARD_K} on the commit-bound workload"
        );
        failed = true;
    }
    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let committed = baseline_tuned_field(&text, "events_per_sec")
            .unwrap_or_else(|| panic!("no tuned events_per_sec in {path}"));
        let floor = committed * (1.0 - REGRESSION_TOLERANCE);
        if tuned.events_per_sec < floor {
            eprintln!(
                "FAIL: tuned {:.0} ev/s regressed >{:.0}% below committed baseline {committed:.0} ev/s",
                tuned.events_per_sec,
                100.0 * REGRESSION_TOLERANCE
            );
            failed = true;
        } else {
            println!(
                "baseline check: tuned {:.0} ev/s vs committed {committed:.0} ev/s (floor {floor:.0}) OK",
                tuned.events_per_sec
            );
        }
        // Latency gate: traced end-to-end p99 must not regress more
        // than the tolerance above the committed baseline. Skipped when
        // the baseline predates the field (or recorded no traces).
        match baseline_tuned_field(&text, "e2e_p99_ns") {
            Some(committed_p99) if committed_p99 > 0.0 => {
                let ceiling = committed_p99 * (1.0 + REGRESSION_TOLERANCE);
                if tuned.e2e_p99_ns as f64 > ceiling {
                    eprintln!(
                        "FAIL: e2e p99 {} ns regressed >{:.0}% above committed baseline {committed_p99:.0} ns",
                        tuned.e2e_p99_ns,
                        100.0 * REGRESSION_TOLERANCE
                    );
                    failed = true;
                } else {
                    println!(
                        "baseline check: e2e p99 {} ns vs committed {committed_p99:.0} ns (ceiling {ceiling:.0}) OK",
                        tuned.e2e_p99_ns
                    );
                }
            }
            _ => println!("baseline check: no committed e2e_p99_ns; latency gate skipped"),
        }
        // Store gate: the traced group-commit p99 must not regress
        // more than the tolerance above the committed baseline (the
        // store lane was the slowest post-resolve stage before native
        // batching; keep it pinned down).
        match baseline_tuned_field(&text, "store_commit_p99_ns") {
            Some(committed_p99) if committed_p99 > 0.0 => {
                let ceiling = committed_p99 * (1.0 + REGRESSION_TOLERANCE);
                if tuned.store_commit_p99_ns as f64 > ceiling {
                    eprintln!(
                        "FAIL: store_commit p99 {} ns regressed >{:.0}% above committed baseline {committed_p99:.0} ns",
                        tuned.store_commit_p99_ns,
                        100.0 * REGRESSION_TOLERANCE
                    );
                    failed = true;
                } else {
                    println!(
                        "baseline check: store_commit p99 {} ns vs committed {committed_p99:.0} ns (ceiling {ceiling:.0}) OK",
                        tuned.store_commit_p99_ns
                    );
                }
            }
            _ => println!("baseline check: no committed store_commit_p99_ns; store gate skipped"),
        }
        // Shard gate: the K=4 sequence+commit throughput must not
        // regress more than the tolerance below the committed
        // baseline. Skipped when the baseline predates the shard axis.
        match baseline_field(&text, "k4", "commit_events_per_sec") {
            Some(committed_k4) if committed_k4 > 0.0 => {
                let floor = committed_k4 * (1.0 - REGRESSION_TOLERANCE);
                if shard_k.commit_events_per_sec < floor {
                    eprintln!(
                        "FAIL: K={SHARD_K} commit throughput {:.0} ev/s regressed >{:.0}% below committed baseline {committed_k4:.0} ev/s",
                        shard_k.commit_events_per_sec,
                        100.0 * REGRESSION_TOLERANCE
                    );
                    failed = true;
                } else {
                    println!(
                        "baseline check: K={SHARD_K} commit {:.0} ev/s vs committed {committed_k4:.0} ev/s (floor {floor:.0}) OK",
                        shard_k.commit_events_per_sec
                    );
                }
            }
            _ => println!(
                "baseline check: no committed sharded commit_events_per_sec; shard gate skipped"
            ),
        }
    }
    if failed {
        std::process::exit(1);
    }
}
