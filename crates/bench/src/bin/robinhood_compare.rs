//! §V-D5 — FSMonitor vs Robinhood on Iota with four MDSs.
//!
//! Paper: "Robinhood on Iota processes an average 7486 events per
//! second from each MDS vs 9847 events per second by FSMonitor.
//! Combining all four MDSs, Robinhood processes 32 459 events per
//! second in comparison to 37 948 events per second with FSMonitor."

use fsmon_bench::harness::robinhood_throughput;
use fsmon_bench::lustre_throughput;
use fsmon_testbed::profiles::TestbedKind;
use fsmon_testbed::table::{f1, rate};
use fsmon_testbed::Table;
use fsmon_workloads::ScriptVariant;
use std::time::Duration;

fn main() {
    let window = Duration::from_secs(3);
    let fsm = lustre_throughput(
        TestbedKind::Iota,
        Some(5000),
        ScriptVariant::CreateModifyDelete,
        4096,
        window,
        true,
    );
    let (rh_events, rh_elapsed, rh_cpu) = robinhood_throughput(
        TestbedKind::Iota,
        ScriptVariant::CreateModifyDelete,
        4096,
        window,
    );
    let rh_rate = rh_events as f64 / rh_elapsed.as_secs_f64();
    let fsm_rate = fsm.reporting_rate();

    let mut table = Table::new("§V-D5: FSMonitor vs Robinhood (Iota, 4 MDSs)").header([
        "Monitor",
        "Events/sec (paper)",
        "Events/sec (measured)",
        "Per-MDS (paper)",
        "Per-MDS (measured)",
    ]);
    table.row([
        "FSMonitor (parallel collectors, MDS-side processing)".to_string(),
        "37948".to_string(),
        rate(fsm_rate),
        "9847".to_string(),
        rate(fsm_rate / 4.0),
    ]);
    table.row([
        "Robinhood (round-robin poller, client-side processing)".to_string(),
        "32459".to_string(),
        rate(rh_rate),
        "7486".to_string(),
        rate(rh_rate / 4.0),
    ]);
    table.row([
        "FSMonitor advantage %".to_string(),
        f1(100.0 * (37948.0 - 32459.0) / 32459.0),
        f1(100.0 * (fsm_rate - rh_rate) / rh_rate.max(1.0)),
        String::new(),
        String::new(),
    ]);
    table.note(format!(
        "Robinhood modelled CPU busy (remote fid2path share): {rh_cpu:.2}%"
    ));
    table.note("shape to reproduce: FSMonitor > Robinhood; the gap comes from serialized polling RPCs and the client-side fid2path penalty");
    table.emit("robinhood_compare");
}
