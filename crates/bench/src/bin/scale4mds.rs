//! §V-D2, four-MDS scaling — "On Iota, when we use all four available
//! MDSs, the overall event generation rate is 38 372 events per second.
//! FSMonitor reports 37 948 events per second to the consumer."
//!
//! The paper's four collectors ran on four MDS nodes; on a shared-core
//! host their busy windows inflate each other, so the scaling row is
//! computed from a cleanly measured single-MDS pipeline multiplied by
//! the MDS count (collectors share nothing but the aggregator), and
//! the four-MDS deployment is then run end-to-end to verify the
//! aggregation path loses nothing and every MDS contributes.

use fsmon_bench::lustre_throughput;
use fsmon_testbed::profiles::TestbedKind;
use fsmon_testbed::table::{f1, rate};
use fsmon_testbed::Table;
use fsmon_workloads::ScriptVariant;
use std::time::Duration;

fn main() {
    let window = Duration::from_secs(3);
    // Clean single-MDS pipeline measurement.
    let single = lustre_throughput(
        TestbedKind::Iota,
        Some(5000),
        ScriptVariant::CreateModifyDelete,
        4096,
        window,
        false,
    );
    let per_mds_gen = single.generation_rate();
    let per_mds_reported = single.reporting_rate();

    // True 4-MDS deployment: end-to-end integrity check.
    let four = lustre_throughput(
        TestbedKind::Iota,
        Some(5000),
        ScriptVariant::CreateModifyDelete,
        4096,
        window,
        true,
    );

    let mut table = Table::new("Fig/§V-D2: Iota with four MDSs (events/sec)")
        .header(["Metric", "Paper", "Measured"]);
    table.row([
        "Per-MDS generated".to_string(),
        "9593".to_string(),
        rate(per_mds_gen),
    ]);
    table.row([
        "Per-MDS reported".to_string(),
        "9487".to_string(),
        rate(per_mds_reported),
    ]);
    table.row([
        "Generated, 4 MDSs (modelled 4x)".to_string(),
        "38372".to_string(),
        rate(4.0 * per_mds_gen),
    ]);
    table.row([
        "Reported by FSMonitor (modelled 4x)".to_string(),
        "37948".to_string(),
        rate(4.0 * per_mds_reported),
    ]);
    table.row([
        "Reported / generated %".to_string(),
        f1(100.0 * 37948.0 / 38372.0),
        f1(100.0 * per_mds_reported / per_mds_gen.max(1.0)),
    ]);
    table.row([
        "4-MDS end-to-end: events generated".to_string(),
        String::new(),
        four.generated.to_string(),
    ]);
    table.row([
        "4-MDS end-to-end: events reported".to_string(),
        String::new(),
        four.reported.to_string(),
    ]);
    table.row([
        "4-MDS end-to-end: events lost".to_string(),
        "0".to_string(),
        four.generated.saturating_sub(four.reported).to_string(),
    ]);
    table.note("shape to reproduce: reported within a few percent of generated per MDS, linear 4x aggregate, zero loss");
    table.emit("scale4mds");
}
