//! Table II — standardized event definitions of FSMonitor.
//!
//! Runs `Evaluate_Output_Script` on the simulated macOS (FSEvents) and
//! Linux (inotify) platforms through the full FSMonitor pipeline and
//! prints the standardized output, which must be identical on both
//! (the paper: "FSMonitor gives the same event definitions on both
//! macOS as well as Linux environments").

use fsmon_core::dsi::local::{SimFsEventsDsi, SimInotifyDsi};
use fsmon_core::{EventFilter, FsMonitor, MonitorConfig};
use fsmon_events::{EventFormatter, StandardEvent};
use fsmon_localfs::{FsEventsSim, InotifySim, SimFs};
use fsmon_testbed::Table;
use fsmon_workloads::evaluate_output_script_stepped;

fn run_linux() -> Vec<StandardEvent> {
    let fs = SimFs::new();
    fs.mkdir("/home");
    fs.mkdir("/home/arnab");
    fs.mkdir("/home/arnab/test");
    let sim = InotifySim::attach(&fs, 4096, 1 << 16);
    let dsi = SimInotifyDsi::recursive(sim, fs.clone(), "/home/arnab/test");
    let mut monitor = FsMonitor::new(Box::new(dsi), MonitorConfig::without_store());
    let sub = monitor.subscribe(EventFilter::all());
    // Pump after every operation so the recursive DSI can install the
    // watch on okdir before events happen inside it — exactly what the
    // deployed monitor does while the script sleeps between syscalls.
    evaluate_output_script_stepped(&fs.clone(), "/home/arnab/test", &mut || {
        monitor.pump_until_idle(100);
    });
    monitor.pump_until_idle(100);
    sub.drain()
}

fn run_macos() -> Vec<StandardEvent> {
    let fs = SimFs::new();
    fs.mkdir("/home");
    fs.mkdir("/home/arnab");
    fs.mkdir("/home/arnab/test");
    let sim = FsEventsSim::attach(&fs, 0, 1 << 16);
    let dsi = SimFsEventsDsi::new(sim, "/home/arnab/test");
    let mut monitor = FsMonitor::new(Box::new(dsi), MonitorConfig::without_store());
    let sub = monitor.subscribe(EventFilter::all());
    evaluate_output_script_stepped(&fs.clone(), "/home/arnab/test", &mut || {
        monitor.pump_until_idle(100);
    });
    monitor.pump_until_idle(100);
    sub.drain()
}

fn main() {
    let linux = run_linux();
    let macos = run_macos();

    let mut table = Table::new("Table II: File system events of FSMonitor").header([
        "FSMonitor on Linux (inotify DSI)",
        "FSMonitor on macOS (FSEvents DSI)",
    ]);
    let fmt = EventFormatter::Inotify;
    let rows = linux.len().max(macos.len());
    for i in 0..rows {
        table.row([
            linux.get(i).map(|e| fmt.render(e)).unwrap_or_default(),
            macos.get(i).map(|e| fmt.render(e)).unwrap_or_default(),
        ]);
    }
    table.note("paper: same standardized definitions on macOS and Linux (inotify format)");
    table.note(
        "kind sequences match where both kernels report the op; FSEvents omits \
         open/close and coalesces, exactly as the real facility does",
    );
    table.emit("table2");

    // Cross-platform agreement on the structural events.
    let key = |evs: &[StandardEvent]| -> Vec<String> {
        evs.iter()
            .filter(|e| {
                !matches!(
                    e.kind,
                    fsmon_events::EventKind::Close
                        | fsmon_events::EventKind::CloseWrite
                        | fsmon_events::EventKind::CloseNoWrite
                        | fsmon_events::EventKind::Open
                )
            })
            .map(|e| format!("{} {}", e.kind_label(), e.path))
            .collect()
    };
    let l = key(&linux);
    let m = key(&macos);
    let agree = l == m;
    println!(
        "structural-event agreement Linux vs macOS: {}",
        if agree { "IDENTICAL" } else { "DIFFERS" }
    );
    if !agree {
        println!("linux: {l:#?}\nmacos: {m:#?}");
    }
}
