//! Table III — event reporting rates of FSMonitor, FSWatch, and
//! inotifywait on the three local platforms.

use fsmon_bench::{local_reporting_rate, MonitorKind};
use fsmon_testbed::table::rate;
use fsmon_testbed::{LocalPlatform, Table};
use std::time::Duration;

fn main() {
    let window = Duration::from_secs(2);
    let mut table = Table::new("Table III: Events reporting rate (events/sec)").header([
        "Platform",
        "Generated (paper)",
        "Generated (measured)",
        "FSMonitor (paper)",
        "FSMonitor (measured)",
        "Other (paper)",
        "Other (measured)",
    ]);
    for platform in LocalPlatform::ALL {
        let baseline = local_reporting_rate(platform, None, window);
        let fsm = local_reporting_rate(platform, Some(MonitorKind::FsMonitor), window);
        let other = local_reporting_rate(platform, Some(MonitorKind::Other), window);
        let (paper_fsm, paper_other) = platform.paper_reported_rates();
        table.row([
            platform.name().to_string(),
            platform.paper_generation_rate().to_string(),
            rate(baseline.generation_rate()),
            paper_fsm.to_string(),
            rate(fsm.reported_rate()),
            format!("{paper_other} ({})", platform.other_monitor()),
            rate(other.reported_rate()),
        ]);
    }
    table.note("measured rates are at the 20x time scale of the simulated platforms");
    table.note("shape to reproduce: FSWatch well below FSMonitor on macOS; inotifywait marginally above FSMonitor on Linux");
    table.emit("table3");
}
