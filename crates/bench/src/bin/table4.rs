//! Table IV — CPU and memory usage of the local monitors.
//!
//! CPU% is the modelled monitor busy share (monitor processing time
//! over the wall window); memory is the real process RSS delta
//! attributable to the run, reported as a percent of system memory
//! like the paper does.

use fsmon_bench::{local_reporting_rate, MonitorKind};
use fsmon_testbed::table::f2;
use fsmon_testbed::{LocalPlatform, ProcSampler, Table};
use std::time::Duration;

fn mem_percent_of_system(bytes: u64) -> f64 {
    let total = std::fs::read_to_string("/proc/meminfo")
        .ok()
        .and_then(|s| {
            s.lines().find_map(|l| {
                l.strip_prefix("MemTotal:")
                    .and_then(|r| r.trim().trim_end_matches("kB").trim().parse::<u64>().ok())
            })
        })
        .unwrap_or(16 * 1024 * 1024)
        * 1024;
    100.0 * bytes as f64 / total as f64
}

fn main() {
    let window = Duration::from_secs(2);
    let mut table = Table::new("Table IV: CPU and Memory usage").header([
        "Platform",
        "FSMonitor CPU% (paper)",
        "FSMonitor CPU% (measured)",
        "Other CPU% (paper)",
        "Other CPU% (measured)",
        "FSMonitor Mem% (paper)",
        "Mem% (measured, whole process)",
    ]);
    for platform in LocalPlatform::ALL {
        let mut sampler = ProcSampler::start();
        let fsm = local_reporting_rate(platform, Some(MonitorKind::FsMonitor), window);
        let sample = sampler.sample();
        let other = local_reporting_rate(platform, Some(MonitorKind::Other), window);
        let (paper_fsm_cpu, paper_other_cpu) = platform.paper_cpu();
        let (paper_mem, _) = platform.paper_mem();
        table.row([
            platform.name().to_string(),
            format!("{paper_fsm_cpu}"),
            f2(fsm.monitor_cpu_percent),
            format!("{paper_other_cpu} ({})", platform.other_monitor()),
            f2(other.monitor_cpu_percent),
            format!("{paper_mem}"),
            f2(mem_percent_of_system(sample.rss_bytes)),
        ]);
    }
    table.note("paper's conclusion to reproduce: no monitor makes heavy use of machine resources; differences are not decisive");
    table.emit("table4");
}
