//! Table V — Lustre testbed baseline event generation rates.
//!
//! Per-kind rates are each op class's standalone ceiling (what the
//! paper's per-row baselines measure); the total row is the mixed
//! `Evaluate_Performance_Script` rate.

use fsmon_bench::lustre_throughput;
use fsmon_testbed::profiles::TestbedKind;
use fsmon_testbed::table::rate;
use fsmon_testbed::Table;
use fsmon_workloads::ScriptVariant;
use lustre_sim::LustreFs;
use std::time::{Duration, Instant};

/// Measure one op class's standalone rate (events/sec).
fn class_rate(tb: TestbedKind, class: &str, window: Duration) -> f64 {
    let mut config = tb.config();
    config.n_mdt = 1;
    let fs = LustreFs::new(config);
    let client = fs.client();
    match class {
        "create" => {
            let start = Instant::now();
            let mut n = 0u64;
            while start.elapsed() < window {
                client.create(&format!("/c{n}")).unwrap();
                n += 1;
            }
            n as f64 / start.elapsed().as_secs_f64()
        }
        "modify" => {
            client.create("/m").unwrap();
            let start = Instant::now();
            let mut n = 0u64;
            while start.elapsed() < window {
                client.write("/m", 0, 64).unwrap();
                n += 1;
            }
            n as f64 / start.elapsed().as_secs_f64()
        }
        "delete" => {
            // Pre-create outside the timed window.
            let batch = 200_000usize;
            for i in 0..batch {
                client.create(&format!("/d{i}")).unwrap();
            }
            let start = Instant::now();
            let mut n = 0u64;
            while start.elapsed() < window && (n as usize) < batch {
                client.unlink(&format!("/d{n}")).unwrap();
                n += 1;
            }
            n as f64 / start.elapsed().as_secs_f64()
        }
        _ => unreachable!("unknown class"),
    }
}

fn main() {
    let window = Duration::from_millis(700);
    let mut table = Table::new("Table V: Lustre Testbed Baseline Event Generation Rates").header([
        "",
        "AWS (paper/measured)",
        "Thor (paper/measured)",
        "Iota (paper/measured)",
    ]);
    let mut rows: Vec<Vec<String>> = vec![
        vec!["Storage Size".into()],
        vec!["Create events/sec".into()],
        vec!["Modify events/sec".into()],
        vec!["Delete events/sec".into()],
        vec!["Total events/sec".into()],
    ];
    for tb in TestbedKind::ALL {
        let (p_create, p_modify, p_delete) = tb.paper_generation_rates();
        rows[0].push(tb.storage_label().to_string());
        rows[1].push(format!(
            "{p_create} / {}",
            rate(class_rate(tb, "create", window))
        ));
        rows[2].push(format!(
            "{p_modify} / {}",
            rate(class_rate(tb, "modify", window))
        ));
        rows[3].push(format!(
            "{p_delete} / {}",
            rate(class_rate(tb, "delete", window))
        ));
        let mixed = lustre_throughput(
            tb,
            None,
            ScriptVariant::CreateModifyDelete,
            1,
            window,
            false,
        );
        rows[4].push(format!(
            "{} / {}",
            tb.paper_total_generation_rate(),
            rate(mixed.generation_rate())
        ));
    }
    for row in rows {
        table.row(row);
    }
    table.note("measured at 20x time scale; shape to reproduce: AWS < Thor < Iota, delete > modify > create per testbed");
    table.emit("table5");
}
