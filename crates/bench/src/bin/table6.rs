//! Table VI — Lustre testbed baseline event *reporting* rates, with
//! and without the fid2path cache (one MDS per testbed).

use fsmon_bench::lustre_throughput;
use fsmon_testbed::profiles::TestbedKind;
use fsmon_testbed::table::rate;
use fsmon_testbed::Table;
use fsmon_workloads::ScriptVariant;
use std::time::Duration;

fn main() {
    let window = Duration::from_secs(2);
    let mut table = Table::new(
        "Table VI: Lustre Testbed Baseline Event Reporting Rates (events/sec)",
    )
    .header([
        "",
        "AWS (paper/measured)",
        "Thor (paper/measured)",
        "Iota (paper/measured)",
    ]);
    let mut rows: Vec<Vec<String>> = vec![
        vec!["Generated events/sec".into()],
        vec!["Reported without cache".into()],
        vec!["Reported with cache (5000)".into()],
    ];
    for tb in TestbedKind::ALL {
        let gen = lustre_throughput(
            tb,
            None,
            ScriptVariant::CreateModifyDelete,
            1,
            window,
            false,
        );
        let without = lustre_throughput(
            tb,
            Some(0),
            ScriptVariant::CreateModifyDelete,
            4096,
            window,
            false,
        );
        let with = lustre_throughput(
            tb,
            Some(5000),
            ScriptVariant::CreateModifyDelete,
            4096,
            window,
            false,
        );
        let (p_no, p_yes) = tb.paper_reported_rates();
        rows[0].push(format!(
            "{} / {}",
            tb.paper_total_generation_rate(),
            rate(gen.generation_rate())
        ));
        rows[1].push(format!("{p_no} / {}", rate(without.reporting_rate())));
        rows[2].push(format!("{p_yes} / {}", rate(with.reporting_rate())));
    }
    for row in rows {
        table.row(row);
    }
    table.note("shape to reproduce: without-cache < with-cache <= generated, on every testbed; no events lost");
    table.emit("table6");
}
