//! Table VII — FSMonitor resource utilization per component, plus the
//! §V-D3 script-variant study (create/delete-only raises collector CPU,
//! create/modify-only lowers it).

use fsmon_bench::lustre_throughput;
use fsmon_testbed::profiles::TestbedKind;
use fsmon_testbed::table::{f2, mb};
use fsmon_testbed::Table;
use fsmon_workloads::ScriptVariant;
use std::time::Duration;

fn main() {
    let window = Duration::from_secs(2);

    let mut table = Table::new("Table VII: FSMonitor Resource Utilization").header([
        "Component",
        "AWS CPU% (paper/meas)",
        "Thor CPU% (paper/meas)",
        "Iota CPU% (paper/meas)",
        "Iota Mem MB (paper/meas)",
    ]);
    let paper_cpu_nocache = [9.3, 7.8, 6.67];
    let paper_cpu_cache = [6.6, 1.5, 2.89];
    let mut no_cache_row = vec!["Collector - No cache".to_string()];
    let mut cache_row = vec!["Collector with cache".to_string()];
    let mut iota_mem = (String::new(), String::new());
    for (i, tb) in TestbedKind::ALL.into_iter().enumerate() {
        let without = lustre_throughput(
            tb,
            Some(0),
            ScriptVariant::CreateModifyDelete,
            4096,
            window,
            false,
        );
        let with = lustre_throughput(
            tb,
            Some(5000),
            ScriptVariant::CreateModifyDelete,
            4096,
            window,
            false,
        );
        no_cache_row.push(format!(
            "{} / {}",
            paper_cpu_nocache[i],
            f2(without.collector_cpu_percent)
        ));
        cache_row.push(format!(
            "{} / {}",
            paper_cpu_cache[i],
            f2(with.collector_cpu_percent)
        ));
        if tb == TestbedKind::Iota {
            // Collector memory = cache + peak queued backlog.
            let backlog_bytes = |r: &fsmon_bench::LustreRun| r.peak_backlog * 160;
            iota_mem = (
                format!("81.6 / {}", mb(backlog_bytes(&without))),
                format!(
                    "55.4 / {}",
                    mb(with.collector.cache_memory_bytes as u64 + backlog_bytes(&with))
                ),
            );
        }
    }
    no_cache_row.push(iota_mem.0);
    cache_row.push(iota_mem.1);
    table.row(no_cache_row);
    table.row(cache_row);
    table.row([
        "Aggregator".to_string(),
        "2.7 / <0.1".to_string(),
        "0.57 / <0.1".to_string(),
        "0.06 / <0.1".to_string(),
        "17.6 / (store buffers)".to_string(),
    ]);
    table.row([
        "Consumer".to_string(),
        "1.5 / <0.1".to_string(),
        "0.23 / <0.1".to_string(),
        "0.02 / <0.1".to_string(),
        "2.8 / (recv queue)".to_string(),
    ]);
    table.note("collector CPU is the modelled fid2path busy share; cache cuts it on every testbed (paper's key claim)");
    table.emit("table7");

    // §V-D3: script variants on Iota.
    let base = lustre_throughput(
        TestbedKind::Iota,
        Some(5000),
        ScriptVariant::CreateModifyDelete,
        4096,
        window,
        false,
    );
    let create_delete = lustre_throughput(
        TestbedKind::Iota,
        Some(5000),
        ScriptVariant::CreateDelete,
        4096,
        window,
        false,
    );
    let create_modify = lustre_throughput(
        TestbedKind::Iota,
        Some(5000),
        ScriptVariant::CreateModify,
        64,
        window,
        false,
    );
    let mut variants = Table::new("§V-D3: Collector CPU vs script variant (Iota, cache 5000)")
        .header([
            "Variant",
            "Collector CPU% (measured)",
            "fid2path calls / event",
            "Paper direction",
        ]);
    let per_event = |r: &fsmon_bench::LustreRun| {
        r.collector.fid2path_calls as f64 / r.collector.events.max(1) as f64
    };
    variants.row([
        "create+modify+delete (base)".to_string(),
        f2(base.collector_cpu_percent),
        f2(per_event(&base)),
        "baseline (2.89%)".to_string(),
    ]);
    variants.row([
        "create+delete only".to_string(),
        f2(create_delete.collector_cpu_percent),
        f2(per_event(&create_delete)),
        "higher (3.3%, +12.4%)".to_string(),
    ]);
    variants.row([
        "create+modify only".to_string(),
        f2(create_modify.collector_cpu_percent),
        f2(per_event(&create_modify)),
        "lower (2.3%, -21.5%)".to_string(),
    ]);
    variants.note(
        "shape to reproduce: create+delete > base > create+modify in collector CPU and calls/event",
    );
    variants.emit("table7_variants");
}
