//! Table VIII — FSMonitor performance vs cache size (Iota, one MDS).
//!
//! The paper sweeps the LRU capacity from 200 to 7500 against a
//! workload whose live FID working set is in the thousands, finding
//! 5000 optimal. The working-set regime is reproduced with the
//! many-files performance script: files are created once and then
//! modified in rotation, so a cache smaller than the working set
//! misses on re-reference.

use fsmon_bench::lustre_throughput;
use fsmon_testbed::profiles::TestbedKind;
use fsmon_testbed::table::{f2, mb, rate};
use fsmon_testbed::Table;
use fsmon_workloads::ScriptVariant;
use std::time::Duration;

fn main() {
    let window = Duration::from_secs(2);
    // Working set just under the paper's optimum, as on Iota where
    // 5000 entries covered the live set and 2000 nearly did.
    let working_set = 4000;
    // Common generation ceiling, measured once so per-row generator
    // noise doesn't mask the capacity curve.
    let baseline = lustre_throughput(
        TestbedKind::Iota,
        None,
        ScriptVariant::CreateModify,
        working_set,
        window,
        false,
    );
    let gen_rate = baseline.generation_rate();
    let paper: [(usize, f64, f64, u64); 6] = [
        (200, 4.8, 88.7, 8644),
        (500, 3.5, 84.3, 8997),
        (1000, 2.98, 75.6, 9401),
        (2000, 2.95, 61.3, 9453),
        (5000, 2.89, 55.4, 9487),
        (7500, 2.92, 60.7, 9481),
    ];
    let mut table = Table::new("Table VIII: FSMonitor performance vs cache size (Iota)").header([
        "Cache size",
        "CPU% (paper/meas)",
        "Mem MB (paper/meas)",
        "Events/sec (paper/meas)",
        "Hit ratio (meas)",
    ]);
    for (size, p_cpu, p_mem, p_rate) in paper {
        let run = lustre_throughput(
            TestbedKind::Iota,
            Some(size),
            ScriptVariant::CreateModify,
            working_set,
            window,
            false,
        );
        let mem_bytes = run.collector.cache_memory_bytes as u64 + run.peak_backlog * 160;
        let reported = gen_rate.min(run.collector_capacity);
        table.row([
            size.to_string(),
            format!("{p_cpu} / {}", f2(run.collector_cpu_percent)),
            format!("{p_mem} / {}", mb(mem_bytes)),
            format!("{p_rate} / {}", rate(reported)),
            // Straight from the telemetry registry's window delta.
            f2(run.cache_hit_ratio()),
        ]);
    }
    table.note(format!(
        "workload: create-once + modify rotation over {working_set} files; shape to reproduce: \
         rising events/sec and falling CPU up to ~5000, plateau beyond"
    ));
    table.note("paper's 7500-worse-than-5000 inversion stems from their cache's per-entry overhead; our LRU plateaus instead (noted in EXPERIMENTS.md)");
    table.emit("table8");
}
