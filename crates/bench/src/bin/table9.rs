//! Table IX — FSMonitor events for IOR, HACC-I/O, and Filebench
//! running concurrently on the Thor testbed (§V-D6).
//!
//! IOR runs in single-shared-file mode (one create/delete), HACC-I/O in
//! file-per-process mode with 256 ranks (256 creates/deletes), and
//! Filebench populates its `bigfileset`. FSMonitor watches /mnt/lustre
//! and must report all of it with no loss.

use fsmon_events::{EventFormatter, EventKind};
use fsmon_lustre::{ScalableConfig, ScalableMonitor};
use fsmon_testbed::profiles::TestbedKind;
use fsmon_testbed::Table;
use fsmon_workloads::{FilebenchConfig, FilebenchWorkload, HaccIoWorkload, IorWorkload};
use lustre_sim::LustreFs;
use std::time::Duration;

fn main() {
    // Thor config, one MDS (as deployed), CLOSE records on so Table IX's
    // CLOSE lines appear.
    let mut config = TestbedKind::Thor.config();
    config.record_close = true;
    // Run the data generators unthrottled; this experiment is about
    // event content, not rates.
    config.create_cost = lustre_sim::CostModel::Free;
    config.modify_cost = lustre_sim::CostModel::Free;
    config.delete_cost = lustre_sim::CostModel::Free;
    let fs = LustreFs::new(config);
    let monitor = ScalableMonitor::start(&fs, ScalableConfig::default()).expect("start monitor");

    // All three benchmarks concurrently, as in the paper.
    let ior = {
        let client = fs.client();
        std::thread::spawn(move || IorWorkload::default().run(&client))
    };
    let hacc = {
        let client = fs.client();
        std::thread::spawn(move || {
            HaccIoWorkload {
                particles: 409_600,
                ..HaccIoWorkload::default()
            }
            .run(&client)
        })
    };
    let filebench = {
        let client = fs.client();
        std::thread::spawn(move || {
            FilebenchWorkload::new(FilebenchConfig {
                files: 5_000, // 1/10 scale; see note
                ..FilebenchConfig::default()
            })
            .populate(&client)
        })
    };
    let ior_run = ior.join().expect("ior");
    let hacc_run = hacc.join().expect("hacc");
    let fb_run = filebench.join().expect("filebench");

    let expected = fs.op_counters().total();
    let drained = monitor.wait_events(expected, Duration::from_secs(120));
    let events = {
        let mut out = Vec::new();
        loop {
            let batch = monitor
                .consumer()
                .recv_batch(usize::MAX, Duration::from_millis(300));
            if batch.is_empty() {
                break;
            }
            out.extend(batch);
        }
        out
    };

    // Table IX excerpt: first and last few monitored lines.
    let fmt = EventFormatter::Inotify;
    let mut table =
        Table::new("Table IX: FSMonitor events for IOR, HACC-IO and Filebench (excerpt)")
            .header(["FSMonitor events"]);
    let interesting: Vec<&fsmon_events::StandardEvent> = events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                EventKind::Create | EventKind::Delete | EventKind::Close
            )
        })
        .collect();
    for ev in interesting.iter().take(6) {
        table.row([fmt.render(ev)]);
    }
    table.row(["...".to_string()]);
    for ev in interesting.iter().rev().take(6).rev() {
        table.row([fmt.render(ev)]);
    }
    table.emit("table9");

    // Verification counts per application.
    let count = |pred: &dyn Fn(&fsmon_events::StandardEvent) -> bool| {
        events.iter().filter(|e| pred(e)).count()
    };
    let mut checks = Table::new("Per-application verification").header([
        "Application",
        "Creates expected",
        "Creates reported",
        "Deletes expected",
        "Deletes reported",
    ]);
    checks.row([
        "IOR (SSF, 128 procs)".to_string(),
        ior_run.files_created.to_string(),
        count(&|e| e.kind == EventKind::Create && e.path.contains("testFileSSF")).to_string(),
        ior_run.files_deleted.to_string(),
        count(&|e| e.kind == EventKind::Delete && e.path.contains("testFileSSF")).to_string(),
    ]);
    checks.row([
        "HACC-I/O (FPP, 256 procs)".to_string(),
        hacc_run.files_created.to_string(),
        count(&|e| e.kind == EventKind::Create && !e.is_dir && e.path.starts_with("/hacc-io/"))
            .to_string(),
        hacc_run.files_deleted.to_string(),
        count(&|e| e.kind == EventKind::Delete && e.path.starts_with("/hacc-io/")).to_string(),
    ]);
    checks.row([
        "Filebench (bigfileset)".to_string(),
        fb_run.files_created.to_string(),
        count(&|e| e.kind == EventKind::Create && !e.is_dir && e.path.starts_with("/bigfileset"))
            .to_string(),
        "0".to_string(),
        count(&|e| e.kind == EventKind::Delete && e.path.starts_with("/bigfileset")).to_string(),
    ]);
    checks.note(format!(
        "pipeline drained: {drained}; total events reported: {} of {expected} generated",
        events.len()
    ));
    checks.note("Filebench at 1/10 scale (5000 files) to keep the run short; paper used 50000 — scale with --release and patience");
    checks.note("paper observation to reproduce: all creates reported before the IOR/HACC deletes; no delay, no loss");
    checks.emit("table9_checks");

    monitor.stop();
}
