#![warn(missing_docs)]

//! # fsmon-bench
//!
//! Shared harness code for the per-table experiment binaries (see
//! `src/bin/table*.rs`) and the criterion micro-benchmarks (`benches/`).
//! DESIGN.md §4 maps every paper table and figure to its binary.

pub mod harness;
pub mod report;

pub use harness::{
    local_reporting_rate, lustre_throughput, lustre_throughput_tuned, LocalRun, LustreRun,
    MonitorKind,
};
