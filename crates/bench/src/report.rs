//! Shared envelope for `BENCH_*.json` reports.
//!
//! Every bench binary leads its report with the same four fields so a
//! perf-trajectory scraper can treat the committed files uniformly:
//! `name` (which bench), `events_per_sec` (that bench's headline
//! rate), `generated_unix` (when it ran), and `git_rev` (what it
//! measured). The bench-specific fields follow the header unchanged,
//! so the no-dependency `--baseline` readers keyed on those fields
//! keep working against both old and new baselines.

use std::time::{SystemTime, UNIX_EPOCH};

/// Seconds since the Unix epoch; 0 if the clock reads before it.
pub fn generated_unix() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Short commit hash of `HEAD`, or `"unknown"` when the bench runs
/// outside a git checkout (or git itself is absent).
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Wrap bench-specific fields in the shared envelope.
///
/// `body` is the bench's own interior: `  "key": value` lines joined
/// with `,\n`, no outer braces, no trailing comma or newline. The
/// result is the complete report document, newline-terminated.
pub fn render(name: &str, events_per_sec: f64, body: &str) -> String {
    format!(
        "{{\n  \"name\": \"{name}\",\n  \"events_per_sec\": {events_per_sec:.1},\n  \
         \"generated_unix\": {},\n  \"git_rev\": \"{}\",\n{body}\n}}\n",
        generated_unix(),
        git_rev()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_leads_with_normalized_fields() {
        let doc = render("demo", 1234.5, "  \"extra\": 7");
        let name_at = doc.find("\"name\": \"demo\"").unwrap();
        let rate_at = doc.find("\"events_per_sec\": 1234.5").unwrap();
        let when_at = doc.find("\"generated_unix\": ").unwrap();
        let rev_at = doc.find("\"git_rev\": \"").unwrap();
        let extra_at = doc.find("\"extra\": 7").unwrap();
        assert!(name_at < rate_at && rate_at < when_at && when_at < rev_at);
        assert!(rev_at < extra_at, "bench fields follow the envelope");
        assert!(doc.ends_with("}\n"));
    }

    #[test]
    fn git_rev_is_nonempty() {
        assert!(!git_rev().is_empty());
    }
}
