//! Hand-rolled argument parsing (no CLI dependency).

use fsmon_events::{EventFormatter, EventKind};

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The subcommand.
    pub command: Command,
}

/// The `fsmon` subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Watch a real directory.
    Watch {
        /// Directory to watch.
        path: String,
        /// Output dialect.
        format: EventFormatter,
        /// Kind filter (empty = all kinds).
        kinds: Vec<EventKind>,
        /// Relative path prefix filter.
        prefix: String,
        /// Whether subtree matching is on (default) or direct children
        /// only.
        recursive: bool,
        /// Durable store directory for replay, if any.
        store: Option<String>,
        /// Stop after this many seconds (None = run until killed).
        duration_secs: Option<u64>,
        /// Poll interval in milliseconds.
        interval_ms: u64,
        /// Collapse each poll's burst to its net effect before
        /// printing.
        coalesce: bool,
    },
    /// Replay events from a durable store.
    Replay {
        /// Store directory.
        store: String,
        /// Replay events with id greater than this.
        since: u64,
        /// Maximum events to print.
        max: usize,
    },
    /// Run the simulated Lustre pipeline demo.
    DemoLustre {
        /// Number of MDSs.
        mds: u16,
        /// Workload seconds.
        seconds: u64,
        /// Collector cache size.
        cache: usize,
        /// Parallel `fid2path` resolver threads per collector.
        resolver_threads: usize,
        /// Aggregator publish worker lanes.
        publish_lanes: usize,
        /// Aggregator shards (K partitioned sequencers).
        aggregator_shards: usize,
        /// Pushdown filter spec (`path=…;kinds=…;mdts=…`) for an extra
        /// server-side filtered subscriber.
        filter: Option<String>,
        /// HTTP observer bind address for the health endpoint.
        http: Option<String>,
        /// SLO spec (`ingest_lag<…;e2e_p99<…;loss=0`) evaluated by the
        /// health engine while the demo runs.
        slo: Option<String>,
    },
    /// Dump pipeline telemetry (live run or a previously exported file).
    Stats {
        /// Output dialect.
        format: StatsFormat,
        /// Parse this exported snapshot instead of running a pipeline.
        from: Option<String>,
        /// Diff two exported snapshots (`before`, `after`) instead of
        /// running a pipeline.
        diff: Option<(String, String)>,
        /// Number of MDSs for the live run.
        mds: u16,
        /// Workload seconds for the live run.
        seconds: u64,
        /// Collector cache size for the live run.
        cache: usize,
    },
    /// Live terminal view of the running pipeline: per-tick stage
    /// deltas, trace latency, and the merged fleet snapshot.
    Top {
        /// Number of MDSs.
        mds: u16,
        /// Workload seconds.
        seconds: u64,
        /// Collector cache size.
        cache: usize,
        /// Parallel `fid2path` resolver threads per collector.
        resolver_threads: usize,
        /// Aggregator publish worker lanes.
        publish_lanes: usize,
        /// Aggregator shards (K partitioned sequencers).
        aggregator_shards: usize,
        /// Refresh interval in milliseconds.
        interval_ms: u64,
        /// Sliding window for per-MDT event rates, in seconds.
        window_secs: u64,
    },
    /// Query the materialized index by predicate.
    Find {
        /// Store directory to index (None = index a fresh demo run).
        store: Option<String>,
        /// Snapshot file override (default `<store>/index.snap`).
        snapshot: Option<String>,
        /// Path glob (`*` within a component, `**` across).
        pattern: Option<String>,
        /// Only entries whose mtime is at least this old.
        older_than_secs: Option<u64>,
        /// Only entries at least this large.
        min_size: Option<u64>,
        /// Only entries owned by this uid.
        owner: Option<u32>,
        /// Only this entry kind (`file`, `dir`, `symlink`, `device`).
        kind: Option<String>,
        /// Print at most this many rows.
        max: usize,
        /// Demo workload seconds when no store is given.
        seconds: u64,
    },
    /// Per-directory rollups (entry counts, bytes, last activity) from
    /// the materialized index.
    Du {
        /// Store directory to index (None = index a fresh demo run).
        store: Option<String>,
        /// Snapshot file override (default `<store>/index.snap`).
        snapshot: Option<String>,
        /// Only directories under this prefix.
        prefix: String,
        /// Group rollups this many components below the prefix.
        depth: usize,
        /// Demo workload seconds when no store is given.
        seconds: u64,
    },
    /// Evaluate the standard policy set against the materialized index.
    Policy {
        /// Store directory to index (None = index a fresh demo run).
        store: Option<String>,
        /// Snapshot file override (default `<store>/index.snap`).
        snapshot: Option<String>,
        /// Path glob the purge-age policy applies to.
        pattern: String,
        /// Purge-age threshold in seconds.
        purge_age_secs: u64,
        /// Minimum events/second for a directory to count as hot.
        min_rate: f64,
        /// Demo workload seconds when no store is given.
        seconds: u64,
    },
    /// Run the pipeline under a fault-injection plan and report a
    /// loss/duplication verdict.
    Chaos {
        /// Named fault plan (`none`, `basic`, `storm`).
        plan: String,
        /// Deterministic seed for every injection site.
        seed: u64,
        /// Number of MDSs.
        mds: u16,
        /// Workload seconds.
        seconds: u64,
        /// Parallel `fid2path` resolver threads per collector.
        resolver_threads: usize,
        /// Aggregator publish worker lanes.
        publish_lanes: usize,
        /// Aggregator shards (K partitioned sequencers), each crashing
        /// and recovering independently under the fault plan.
        aggregator_shards: usize,
        /// Flush policy for the run's durable store.
        durability: fsmon_store::Durability,
        /// Concurrently driven named consumers, each independently
        /// verified for zero loss/duplication.
        consumers: usize,
        /// SLO spec evaluated by the health engine during the run.
        slo: Option<String>,
        /// Collector-lane stall injected at every loop iteration, in
        /// milliseconds (arms the `collector_stall` fault point).
        stall_ms: Option<u64>,
        /// Directory where SLO-breach incident bundles land.
        incident_dir: Option<String>,
    },
    /// Query a running HTTP observer's `/health` endpoint and
    /// pretty-print the SLO verdicts.
    Health {
        /// Observer address (`host:port`, or `:port` for localhost).
        addr: String,
    },
    /// Inspect incident bundles dumped by the flight recorder.
    Incidents {
        /// What to do with which bundle(s).
        action: IncidentsAction,
    },
    /// Print usage.
    Help,
}

/// What `fsmon incidents` should do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IncidentsAction {
    /// Decode one bundle (verifying its CRC trailer) and pretty-print.
    Show(String),
    /// List the bundles in a directory, one line each.
    List(String),
}

/// How `fsmon stats` renders a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsFormat {
    /// Human-oriented per-stage summary.
    Summary,
    /// Prometheus text exposition format.
    Prometheus,
    /// JSON.
    Json,
}

impl StatsFormat {
    /// Parse a `--format` value.
    pub fn parse(s: &str) -> Option<StatsFormat> {
        match s {
            "summary" => Some(StatsFormat::Summary),
            "prometheus" | "prom" => Some(StatsFormat::Prometheus),
            "json" => Some(StatsFormat::Json),
            _ => None,
        }
    }
}

/// Parse failures, with the message to show the user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// The usage text.
pub const USAGE: &str = "\
fsmon — file system monitoring for arbitrary storage systems

USAGE:
  fsmon watch <path> [--format F] [--kinds K1,K2] [--prefix /p]
                     [--non-recursive] [--coalesce] [--store DIR]
                     [--duration SECS] [--interval-ms MS]
  fsmon replay --store DIR [--since ID] [--max N]
  fsmon demo-lustre [--mds N] [--seconds S] [--cache N]
                    [--resolver-threads N] [--publish-lanes N]
                    [--aggregator-shards K]
                    [--filter SPEC] [--http ADDR] [--slo SPEC]
  fsmon stats [--format summary|prometheus|json] [--from FILE]
              [--diff BEFORE AFTER] [--mds N] [--seconds S] [--cache N]
  fsmon top   [--mds N] [--seconds S] [--cache N] [--resolver-threads N]
              [--publish-lanes N] [--aggregator-shards K]
              [--interval-ms MS] [--window SECS]
  fsmon chaos [--plan none|basic|storm] [--seed N] [--mds N] [--seconds S]
              [--resolver-threads N] [--publish-lanes N]
              [--aggregator-shards K] [--consumers N]
              [--durability none|batch|bytes:N|interval:MS]
              [--slo SPEC] [--stall MS] [--incident-dir DIR]
  fsmon health [ADDR]
  fsmon incidents show FILE
  fsmon incidents list DIR
  fsmon find  [--store DIR] [--snapshot FILE] [--pattern GLOB]
              [--older-than SECS] [--min-size BYTES] [--owner UID]
              [--kind file|dir|symlink|device] [--max N] [--seconds S]
  fsmon du    [--store DIR] [--snapshot FILE] [--prefix /p] [--depth N]
              [--seconds S]
  fsmon policy [--store DIR] [--snapshot FILE] [--pattern GLOB]
               [--purge-age SECS] [--min-rate R] [--seconds S]
  fsmon help

FORMATS: inotify (default), kqueue, fsevents, filesystemwatcher
KINDS:   CREATE, MODIFY, DELETE, MOVED_FROM, MOVED_TO, ATTRIB, ...
SLO:     ingest_lag<N;e2e_p99<10ms;loss=0[;budget=0.05;fast=30s;slow=300s]";

fn take_value<'a, I: Iterator<Item = &'a str>>(
    flag: &str,
    iter: &mut I,
) -> Result<&'a str, ParseError> {
    iter.next()
        .ok_or_else(|| ParseError(format!("{flag} requires a value")))
}

impl Cli {
    /// Parse an argument list (without the program name).
    pub fn parse<'a, I: IntoIterator<Item = &'a str>>(args: I) -> Result<Cli, ParseError> {
        let mut iter = args.into_iter();
        let command = match iter.next() {
            None | Some("help") | Some("--help") | Some("-h") => Command::Help,
            Some("watch") => Self::parse_watch(&mut iter)?,
            Some("replay") => Self::parse_replay(&mut iter)?,
            Some("demo-lustre") => Self::parse_demo(&mut iter)?,
            Some("stats") => Self::parse_stats(&mut iter)?,
            Some("top") => Self::parse_top(&mut iter)?,
            Some("chaos") => Self::parse_chaos(&mut iter)?,
            Some("health") => Self::parse_health(&mut iter)?,
            Some("incidents") => Self::parse_incidents(&mut iter)?,
            Some("find") => Self::parse_find(&mut iter)?,
            Some("du") => Self::parse_du(&mut iter)?,
            Some("policy") => Self::parse_policy(&mut iter)?,
            Some(other) => return Err(ParseError(format!("unknown command: {other}"))),
        };
        Ok(Cli { command })
    }

    fn parse_watch<'a, I: Iterator<Item = &'a str>>(iter: &mut I) -> Result<Command, ParseError> {
        let mut path: Option<String> = None;
        let mut format = EventFormatter::Inotify;
        let mut kinds: Vec<EventKind> = Vec::new();
        let mut prefix = "/".to_string();
        let mut recursive = true;
        let mut store = None;
        let mut duration_secs = None;
        let mut interval_ms = 200;
        let mut coalesce = false;
        while let Some(arg) = iter.next() {
            match arg {
                "--format" => {
                    let v = take_value(arg, iter)?;
                    format = EventFormatter::parse(v)
                        .ok_or_else(|| ParseError(format!("unknown format: {v}")))?;
                }
                "--kinds" => {
                    let v = take_value(arg, iter)?;
                    for name in v.split(',') {
                        let kind = EventKind::from_str_name(&name.to_ascii_uppercase())
                            .ok_or_else(|| ParseError(format!("unknown kind: {name}")))?;
                        kinds.push(kind);
                    }
                }
                "--prefix" => prefix = take_value(arg, iter)?.to_string(),
                "--non-recursive" => recursive = false,
                "--coalesce" => coalesce = true,
                "--store" => store = Some(take_value(arg, iter)?.to_string()),
                "--duration" => {
                    duration_secs = Some(
                        take_value(arg, iter)?
                            .parse()
                            .map_err(|_| ParseError("--duration must be a number".into()))?,
                    )
                }
                "--interval-ms" => {
                    interval_ms = take_value(arg, iter)?
                        .parse()
                        .map_err(|_| ParseError("--interval-ms must be a number".into()))?;
                }
                flag if flag.starts_with("--") => {
                    return Err(ParseError(format!("unknown flag for watch: {flag}")))
                }
                positional => {
                    if path.is_some() {
                        return Err(ParseError(format!("unexpected argument: {positional}")));
                    }
                    path = Some(positional.to_string());
                }
            }
        }
        Ok(Command::Watch {
            path: path.ok_or_else(|| ParseError("watch requires a path".into()))?,
            format,
            kinds,
            prefix,
            recursive,
            store,
            duration_secs,
            interval_ms,
            coalesce,
        })
    }

    fn parse_replay<'a, I: Iterator<Item = &'a str>>(iter: &mut I) -> Result<Command, ParseError> {
        let mut store = None;
        let mut since = 0;
        let mut max = 1000;
        while let Some(arg) = iter.next() {
            match arg {
                "--store" => store = Some(take_value(arg, iter)?.to_string()),
                "--since" => {
                    since = take_value(arg, iter)?
                        .parse()
                        .map_err(|_| ParseError("--since must be a number".into()))?
                }
                "--max" => {
                    max = take_value(arg, iter)?
                        .parse()
                        .map_err(|_| ParseError("--max must be a number".into()))?
                }
                other => return Err(ParseError(format!("unknown flag for replay: {other}"))),
            }
        }
        Ok(Command::Replay {
            store: store.ok_or_else(|| ParseError("replay requires --store".into()))?,
            since,
            max,
        })
    }

    fn parse_demo<'a, I: Iterator<Item = &'a str>>(iter: &mut I) -> Result<Command, ParseError> {
        let mut mds = 4;
        let mut seconds = 2;
        let mut cache = 5000;
        let mut resolver_threads = 4;
        let mut publish_lanes = 2;
        let mut aggregator_shards = 1;
        let mut filter = None;
        let mut http = None;
        let mut slo = None;
        while let Some(arg) = iter.next() {
            match arg {
                "--mds" => {
                    mds = take_value(arg, iter)?
                        .parse()
                        .map_err(|_| ParseError("--mds must be a number".into()))?
                }
                "--seconds" => {
                    seconds = take_value(arg, iter)?
                        .parse()
                        .map_err(|_| ParseError("--seconds must be a number".into()))?
                }
                "--cache" => {
                    cache = take_value(arg, iter)?
                        .parse()
                        .map_err(|_| ParseError("--cache must be a number".into()))?
                }
                "--resolver-threads" => {
                    resolver_threads = take_value(arg, iter)?
                        .parse()
                        .map_err(|_| ParseError("--resolver-threads must be a number".into()))?
                }
                "--publish-lanes" => {
                    publish_lanes = take_value(arg, iter)?
                        .parse()
                        .map_err(|_| ParseError("--publish-lanes must be a number".into()))?
                }
                "--aggregator-shards" => {
                    aggregator_shards = take_value(arg, iter)?
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| {
                            ParseError("--aggregator-shards must be a number >= 1".into())
                        })?
                }
                "--filter" => {
                    let spec = take_value(arg, iter)?;
                    fsmon_rules::FilterSpec::parse(spec)
                        .map_err(|e| ParseError(format!("--filter: {e}")))?;
                    filter = Some(spec.to_string());
                }
                "--http" => http = Some(take_value(arg, iter)?.to_string()),
                "--slo" => slo = Some(parse_slo_value(take_value(arg, iter)?)?),
                other => return Err(ParseError(format!("unknown flag for demo-lustre: {other}"))),
            }
        }
        Ok(Command::DemoLustre {
            mds,
            seconds,
            cache,
            resolver_threads,
            publish_lanes,
            aggregator_shards,
            filter,
            http,
            slo,
        })
    }

    fn parse_stats<'a, I: Iterator<Item = &'a str>>(iter: &mut I) -> Result<Command, ParseError> {
        let mut format = StatsFormat::Summary;
        let mut from = None;
        let mut diff = None;
        let mut mds = 1;
        let mut seconds = 1;
        let mut cache = 5000;
        while let Some(arg) = iter.next() {
            match arg {
                "--format" => {
                    let v = take_value(arg, iter)?;
                    format = StatsFormat::parse(v)
                        .ok_or_else(|| ParseError(format!("unknown stats format: {v}")))?;
                }
                "--from" => from = Some(take_value(arg, iter)?.to_string()),
                "--diff" => {
                    let before = take_value(arg, iter)?.to_string();
                    let after = iter
                        .next()
                        .ok_or_else(|| ParseError("--diff requires two files".into()))?
                        .to_string();
                    diff = Some((before, after));
                }
                "--mds" => {
                    mds = take_value(arg, iter)?
                        .parse()
                        .map_err(|_| ParseError("--mds must be a number".into()))?
                }
                "--seconds" => {
                    seconds = take_value(arg, iter)?
                        .parse()
                        .map_err(|_| ParseError("--seconds must be a number".into()))?
                }
                "--cache" => {
                    cache = take_value(arg, iter)?
                        .parse()
                        .map_err(|_| ParseError("--cache must be a number".into()))?
                }
                other => return Err(ParseError(format!("unknown flag for stats: {other}"))),
            }
        }
        Ok(Command::Stats {
            format,
            from,
            diff,
            mds,
            seconds,
            cache,
        })
    }

    fn parse_top<'a, I: Iterator<Item = &'a str>>(iter: &mut I) -> Result<Command, ParseError> {
        let mut mds = 2;
        let mut seconds = 5;
        let mut cache = 5000;
        let mut resolver_threads = 4;
        let mut publish_lanes = 2;
        let mut aggregator_shards = 1;
        let mut interval_ms = 500;
        let mut window_secs = 5;
        while let Some(arg) = iter.next() {
            match arg {
                "--mds" => {
                    mds = take_value(arg, iter)?
                        .parse()
                        .map_err(|_| ParseError("--mds must be a number".into()))?
                }
                "--seconds" => {
                    seconds = take_value(arg, iter)?
                        .parse()
                        .map_err(|_| ParseError("--seconds must be a number".into()))?
                }
                "--cache" => {
                    cache = take_value(arg, iter)?
                        .parse()
                        .map_err(|_| ParseError("--cache must be a number".into()))?
                }
                "--resolver-threads" => {
                    resolver_threads = take_value(arg, iter)?
                        .parse()
                        .map_err(|_| ParseError("--resolver-threads must be a number".into()))?
                }
                "--publish-lanes" => {
                    publish_lanes = take_value(arg, iter)?
                        .parse()
                        .map_err(|_| ParseError("--publish-lanes must be a number".into()))?
                }
                "--aggregator-shards" => {
                    aggregator_shards = take_value(arg, iter)?
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| {
                            ParseError("--aggregator-shards must be a number >= 1".into())
                        })?
                }
                "--interval-ms" => {
                    interval_ms = take_value(arg, iter)?
                        .parse()
                        .map_err(|_| ParseError("--interval-ms must be a number".into()))?
                }
                "--window" => {
                    window_secs = take_value(arg, iter)?
                        .parse::<u64>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| ParseError("--window must be a number >= 1".into()))?
                }
                other => return Err(ParseError(format!("unknown flag for top: {other}"))),
            }
        }
        Ok(Command::Top {
            mds,
            seconds,
            cache,
            resolver_threads,
            publish_lanes,
            aggregator_shards,
            interval_ms,
            window_secs,
        })
    }

    fn parse_find<'a, I: Iterator<Item = &'a str>>(iter: &mut I) -> Result<Command, ParseError> {
        let mut store = None;
        let mut snapshot = None;
        let mut pattern = None;
        let mut older_than_secs = None;
        let mut min_size = None;
        let mut owner = None;
        let mut kind = None;
        let mut max = 100;
        let mut seconds = 1;
        while let Some(arg) = iter.next() {
            match arg {
                "--store" => store = Some(take_value(arg, iter)?.to_string()),
                "--snapshot" => snapshot = Some(take_value(arg, iter)?.to_string()),
                "--pattern" => pattern = Some(take_value(arg, iter)?.to_string()),
                "--older-than" => {
                    older_than_secs = Some(
                        take_value(arg, iter)?
                            .parse()
                            .map_err(|_| ParseError("--older-than must be a number".into()))?,
                    )
                }
                "--min-size" => {
                    min_size = Some(
                        take_value(arg, iter)?
                            .parse()
                            .map_err(|_| ParseError("--min-size must be a number".into()))?,
                    )
                }
                "--owner" => {
                    owner = Some(
                        take_value(arg, iter)?
                            .parse()
                            .map_err(|_| ParseError("--owner must be a uid".into()))?,
                    )
                }
                "--kind" => {
                    let v = take_value(arg, iter)?;
                    if !matches!(v, "file" | "dir" | "symlink" | "device") {
                        return Err(ParseError(format!(
                            "--kind must be file, dir, symlink, or device (got {v})"
                        )));
                    }
                    kind = Some(v.to_string());
                }
                "--max" => {
                    max = take_value(arg, iter)?
                        .parse()
                        .map_err(|_| ParseError("--max must be a number".into()))?
                }
                "--seconds" => {
                    seconds = take_value(arg, iter)?
                        .parse()
                        .map_err(|_| ParseError("--seconds must be a number".into()))?
                }
                other => return Err(ParseError(format!("unknown flag for find: {other}"))),
            }
        }
        Ok(Command::Find {
            store,
            snapshot,
            pattern,
            older_than_secs,
            min_size,
            owner,
            kind,
            max,
            seconds,
        })
    }

    fn parse_du<'a, I: Iterator<Item = &'a str>>(iter: &mut I) -> Result<Command, ParseError> {
        let mut store = None;
        let mut snapshot = None;
        let mut prefix = "/".to_string();
        let mut depth = 1;
        let mut seconds = 1;
        while let Some(arg) = iter.next() {
            match arg {
                "--store" => store = Some(take_value(arg, iter)?.to_string()),
                "--snapshot" => snapshot = Some(take_value(arg, iter)?.to_string()),
                "--prefix" => prefix = take_value(arg, iter)?.to_string(),
                "--depth" => {
                    depth = take_value(arg, iter)?
                        .parse()
                        .map_err(|_| ParseError("--depth must be a number".into()))?
                }
                "--seconds" => {
                    seconds = take_value(arg, iter)?
                        .parse()
                        .map_err(|_| ParseError("--seconds must be a number".into()))?
                }
                other => return Err(ParseError(format!("unknown flag for du: {other}"))),
            }
        }
        Ok(Command::Du {
            store,
            snapshot,
            prefix,
            depth,
            seconds,
        })
    }

    fn parse_policy<'a, I: Iterator<Item = &'a str>>(iter: &mut I) -> Result<Command, ParseError> {
        let mut store = None;
        let mut snapshot = None;
        let mut pattern = "/**".to_string();
        let mut purge_age_secs = 3600;
        let mut min_rate = 1.0;
        let mut seconds = 1;
        while let Some(arg) = iter.next() {
            match arg {
                "--store" => store = Some(take_value(arg, iter)?.to_string()),
                "--snapshot" => snapshot = Some(take_value(arg, iter)?.to_string()),
                "--pattern" => pattern = take_value(arg, iter)?.to_string(),
                "--purge-age" => {
                    purge_age_secs = take_value(arg, iter)?
                        .parse()
                        .map_err(|_| ParseError("--purge-age must be a number".into()))?
                }
                "--min-rate" => {
                    min_rate = take_value(arg, iter)?
                        .parse()
                        .map_err(|_| ParseError("--min-rate must be a number".into()))?
                }
                "--seconds" => {
                    seconds = take_value(arg, iter)?
                        .parse()
                        .map_err(|_| ParseError("--seconds must be a number".into()))?
                }
                other => return Err(ParseError(format!("unknown flag for policy: {other}"))),
            }
        }
        Ok(Command::Policy {
            store,
            snapshot,
            pattern,
            purge_age_secs,
            min_rate,
            seconds,
        })
    }

    fn parse_chaos<'a, I: Iterator<Item = &'a str>>(iter: &mut I) -> Result<Command, ParseError> {
        let mut plan = "basic".to_string();
        let mut seed = 7;
        let mut mds = 1;
        let mut seconds = 2;
        let mut resolver_threads = 4;
        let mut publish_lanes = 2;
        let mut aggregator_shards = 1;
        let mut durability = fsmon_store::Durability::None;
        let mut consumers = 1;
        let mut slo = None;
        let mut stall_ms = None;
        let mut incident_dir = None;
        while let Some(arg) = iter.next() {
            match arg {
                "--plan" => plan = take_value(arg, iter)?.to_string(),
                "--seed" => {
                    seed = take_value(arg, iter)?
                        .parse()
                        .map_err(|_| ParseError("--seed must be a number".into()))?
                }
                "--mds" => {
                    mds = take_value(arg, iter)?
                        .parse()
                        .map_err(|_| ParseError("--mds must be a number".into()))?
                }
                "--seconds" => {
                    seconds = take_value(arg, iter)?
                        .parse()
                        .map_err(|_| ParseError("--seconds must be a number".into()))?
                }
                "--resolver-threads" => {
                    resolver_threads = take_value(arg, iter)?
                        .parse()
                        .map_err(|_| ParseError("--resolver-threads must be a number".into()))?
                }
                "--publish-lanes" => {
                    publish_lanes = take_value(arg, iter)?
                        .parse()
                        .map_err(|_| ParseError("--publish-lanes must be a number".into()))?
                }
                "--aggregator-shards" => {
                    aggregator_shards = take_value(arg, iter)?
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| {
                            ParseError("--aggregator-shards must be a number >= 1".into())
                        })?
                }
                "--durability" => {
                    durability =
                        fsmon_store::Durability::parse(take_value(arg, iter)?).ok_or_else(|| {
                            ParseError(
                                "--durability must be none, batch, bytes:N, or interval:MS".into(),
                            )
                        })?
                }
                "--consumers" => {
                    consumers = take_value(arg, iter)?
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| ParseError("--consumers must be a number >= 1".into()))?
                }
                "--slo" => slo = Some(parse_slo_value(take_value(arg, iter)?)?),
                "--stall" => {
                    stall_ms = Some(
                        take_value(arg, iter)?
                            .parse()
                            .map_err(|_| ParseError("--stall must be milliseconds".into()))?,
                    )
                }
                "--incident-dir" => incident_dir = Some(take_value(arg, iter)?.to_string()),
                other => return Err(ParseError(format!("unknown flag for chaos: {other}"))),
            }
        }
        Ok(Command::Chaos {
            plan,
            seed,
            mds,
            seconds,
            resolver_threads,
            publish_lanes,
            aggregator_shards,
            durability,
            consumers,
            slo,
            stall_ms,
            incident_dir,
        })
    }

    fn parse_health<'a, I: Iterator<Item = &'a str>>(iter: &mut I) -> Result<Command, ParseError> {
        let mut addr: Option<String> = None;
        for arg in iter {
            if arg.starts_with("--") {
                return Err(ParseError(format!("unknown flag for health: {arg}")));
            }
            if addr.is_some() {
                return Err(ParseError(format!("unexpected argument: {arg}")));
            }
            addr = Some(arg.to_string());
        }
        Ok(Command::Health {
            addr: addr.unwrap_or_else(|| "127.0.0.1:9090".to_string()),
        })
    }

    fn parse_incidents<'a, I: Iterator<Item = &'a str>>(
        iter: &mut I,
    ) -> Result<Command, ParseError> {
        let verb = iter
            .next()
            .ok_or_else(|| ParseError("incidents requires `show FILE` or `list DIR`".into()))?;
        let path = take_value(verb, iter)?.to_string();
        let action = match verb {
            "show" => IncidentsAction::Show(path),
            "list" => IncidentsAction::List(path),
            other => {
                return Err(ParseError(format!(
                    "unknown incidents action: {other} (expected show or list)"
                )))
            }
        };
        if let Some(extra) = iter.next() {
            return Err(ParseError(format!("unexpected argument: {extra}")));
        }
        Ok(Command::Incidents { action })
    }
}

/// Validate an `--slo` value at parse time and keep its canonical
/// rendering, so downstream code can `expect` a clean re-parse.
fn parse_slo_value(spec: &str) -> Result<String, ParseError> {
    fsmon_telemetry::SloSpec::parse(spec)
        .map(|s| s.canonical())
        .map_err(|e| ParseError(format!("--slo: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_args_is_help() {
        assert_eq!(Cli::parse([]).unwrap().command, Command::Help);
        assert_eq!(Cli::parse(["--help"]).unwrap().command, Command::Help);
    }

    #[test]
    fn watch_defaults() {
        let cli = Cli::parse(["watch", "/data"]).unwrap();
        match cli.command {
            Command::Watch {
                path,
                format,
                kinds,
                prefix,
                recursive,
                store,
                duration_secs,
                interval_ms,
                coalesce,
            } => {
                assert_eq!(path, "/data");
                assert!(!coalesce);
                assert_eq!(format, EventFormatter::Inotify);
                assert!(kinds.is_empty());
                assert_eq!(prefix, "/");
                assert!(recursive);
                assert_eq!(store, None);
                assert_eq!(duration_secs, None);
                assert_eq!(interval_ms, 200);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn watch_full_flags() {
        let cli = Cli::parse([
            "watch",
            "/data",
            "--format",
            "kqueue",
            "--kinds",
            "create,delete",
            "--prefix",
            "/sub",
            "--non-recursive",
            "--store",
            "/tmp/events",
            "--duration",
            "5",
            "--interval-ms",
            "50",
            "--coalesce",
        ])
        .unwrap();
        match cli.command {
            Command::Watch {
                format,
                kinds,
                prefix,
                recursive,
                store,
                duration_secs,
                interval_ms,
                coalesce,
                ..
            } => {
                assert!(coalesce);
                assert_eq!(format, EventFormatter::Kqueue);
                assert_eq!(kinds, vec![EventKind::Create, EventKind::Delete]);
                assert_eq!(prefix, "/sub");
                assert!(!recursive);
                assert_eq!(store.as_deref(), Some("/tmp/events"));
                assert_eq!(duration_secs, Some(5));
                assert_eq!(interval_ms, 50);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn watch_errors() {
        assert!(Cli::parse(["watch"]).is_err());
        assert!(Cli::parse(["watch", "/a", "/b"]).is_err());
        assert!(Cli::parse(["watch", "/a", "--format", "bogus"]).is_err());
        assert!(Cli::parse(["watch", "/a", "--kinds", "NOPE"]).is_err());
        assert!(Cli::parse(["watch", "/a", "--duration"]).is_err());
        assert!(Cli::parse(["watch", "/a", "--wat"]).is_err());
    }

    #[test]
    fn replay_parsing() {
        let cli = Cli::parse([
            "replay", "--store", "/tmp/ev", "--since", "42", "--max", "10",
        ])
        .unwrap();
        assert_eq!(
            cli.command,
            Command::Replay {
                store: "/tmp/ev".into(),
                since: 42,
                max: 10
            }
        );
        assert!(Cli::parse(["replay"]).is_err());
        assert!(Cli::parse(["replay", "--store", "/x", "--since", "abc"]).is_err());
    }

    #[test]
    fn demo_parsing() {
        let cli = Cli::parse([
            "demo-lustre",
            "--mds",
            "2",
            "--seconds",
            "1",
            "--cache",
            "0",
        ])
        .unwrap();
        assert_eq!(
            cli.command,
            Command::DemoLustre {
                mds: 2,
                seconds: 1,
                cache: 0,
                resolver_threads: 4,
                publish_lanes: 2,
                aggregator_shards: 1,
                filter: None,
                http: None,
                slo: None
            }
        );
        let cli = Cli::parse([
            "demo-lustre",
            "--resolver-threads",
            "8",
            "--publish-lanes",
            "4",
            "--filter",
            "path=/proj/**;kinds=CREATE,CLOSE_WRITE",
        ])
        .unwrap();
        assert_eq!(
            cli.command,
            Command::DemoLustre {
                mds: 4,
                seconds: 2,
                cache: 5000,
                resolver_threads: 8,
                publish_lanes: 4,
                aggregator_shards: 1,
                filter: Some("path=/proj/**;kinds=CREATE,CLOSE_WRITE".to_string()),
                http: None,
                slo: None
            }
        );
    }

    #[test]
    fn demo_health_flags_parse_and_validate() {
        let cli = Cli::parse([
            "demo-lustre",
            "--http",
            ":9090",
            "--slo",
            "ingest_lag<1000;loss=0",
        ])
        .unwrap();
        match cli.command {
            Command::DemoLustre { http, slo, .. } => {
                assert_eq!(http.as_deref(), Some(":9090"));
                // The spec is kept in canonical form.
                let slo = slo.unwrap();
                assert!(slo.starts_with("ingest_lag<1000;loss=0;budget="), "{slo}");
            }
            other => panic!("{other:?}"),
        }
        let Err(err) = Cli::parse(["demo-lustre", "--slo", "nonsense"].iter().copied()) else {
            panic!("malformed slo accepted");
        };
        assert!(err.0.contains("--slo"), "{}", err.0);
    }

    #[test]
    fn stats_parsing() {
        let cli = Cli::parse(["stats"]).unwrap();
        assert_eq!(
            cli.command,
            Command::Stats {
                format: StatsFormat::Summary,
                from: None,
                diff: None,
                mds: 1,
                seconds: 1,
                cache: 5000
            }
        );
        let cli = Cli::parse([
            "stats",
            "--format",
            "json",
            "--from",
            "/tmp/snap.json",
            "--mds",
            "2",
        ])
        .unwrap();
        assert_eq!(
            cli.command,
            Command::Stats {
                format: StatsFormat::Json,
                from: Some("/tmp/snap.json".into()),
                diff: None,
                mds: 2,
                seconds: 1,
                cache: 5000
            }
        );
        assert!(Cli::parse(["stats", "--format", "xml"]).is_err());
        assert!(Cli::parse(["stats", "--wat"]).is_err());
    }

    #[test]
    fn stats_diff_takes_two_files() {
        let cli = Cli::parse(["stats", "--diff", "/a.prom", "/b.prom"]).unwrap();
        match cli.command {
            Command::Stats { diff, .. } => {
                assert_eq!(diff, Some(("/a.prom".into(), "/b.prom".into())));
            }
            other => panic!("{other:?}"),
        }
        assert!(Cli::parse(["stats", "--diff", "/only-one"]).is_err());
    }

    #[test]
    fn top_parsing() {
        let cli = Cli::parse(["top"]).unwrap();
        assert_eq!(
            cli.command,
            Command::Top {
                mds: 2,
                seconds: 5,
                cache: 5000,
                resolver_threads: 4,
                publish_lanes: 2,
                aggregator_shards: 1,
                interval_ms: 500,
                window_secs: 5
            }
        );
        let cli = Cli::parse([
            "top",
            "--mds",
            "4",
            "--seconds",
            "2",
            "--cache",
            "100",
            "--interval-ms",
            "250",
            "--window",
            "3",
        ])
        .unwrap();
        assert_eq!(
            cli.command,
            Command::Top {
                mds: 4,
                seconds: 2,
                cache: 100,
                resolver_threads: 4,
                publish_lanes: 2,
                aggregator_shards: 1,
                interval_ms: 250,
                window_secs: 3
            }
        );
        assert!(Cli::parse(["top", "--interval-ms", "soon"]).is_err());
        assert!(Cli::parse(["top", "--window", "0"]).is_err());
        assert!(Cli::parse(["top", "--wat"]).is_err());
    }

    #[test]
    fn find_parsing() {
        let cli = Cli::parse(["find"]).unwrap();
        assert_eq!(
            cli.command,
            Command::Find {
                store: None,
                snapshot: None,
                pattern: None,
                older_than_secs: None,
                min_size: None,
                owner: None,
                kind: None,
                max: 100,
                seconds: 1
            }
        );
        let cli = Cli::parse([
            "find",
            "--store",
            "/tmp/ev",
            "--snapshot",
            "/tmp/idx.snap",
            "--pattern",
            "/proj/**/*.h5",
            "--older-than",
            "86400",
            "--min-size",
            "4096",
            "--owner",
            "1001",
            "--kind",
            "file",
            "--max",
            "10",
        ])
        .unwrap();
        assert_eq!(
            cli.command,
            Command::Find {
                store: Some("/tmp/ev".into()),
                snapshot: Some("/tmp/idx.snap".into()),
                pattern: Some("/proj/**/*.h5".into()),
                older_than_secs: Some(86400),
                min_size: Some(4096),
                owner: Some(1001),
                kind: Some("file".into()),
                max: 10,
                seconds: 1
            }
        );
        assert!(Cli::parse(["find", "--kind", "fifo"]).is_err());
        assert!(Cli::parse(["find", "--older-than", "soon"]).is_err());
        assert!(Cli::parse(["find", "--wat"]).is_err());
    }

    #[test]
    fn du_parsing() {
        let cli = Cli::parse(["du"]).unwrap();
        assert_eq!(
            cli.command,
            Command::Du {
                store: None,
                snapshot: None,
                prefix: "/".into(),
                depth: 1,
                seconds: 1
            }
        );
        let cli = Cli::parse([
            "du", "--store", "/tmp/ev", "--prefix", "/proj", "--depth", "2",
        ])
        .unwrap();
        assert_eq!(
            cli.command,
            Command::Du {
                store: Some("/tmp/ev".into()),
                snapshot: None,
                prefix: "/proj".into(),
                depth: 2,
                seconds: 1
            }
        );
        assert!(Cli::parse(["du", "--depth", "deep"]).is_err());
        assert!(Cli::parse(["du", "--wat"]).is_err());
    }

    #[test]
    fn policy_parsing() {
        let cli = Cli::parse(["policy"]).unwrap();
        assert_eq!(
            cli.command,
            Command::Policy {
                store: None,
                snapshot: None,
                pattern: "/**".into(),
                purge_age_secs: 3600,
                min_rate: 1.0,
                seconds: 1
            }
        );
        let cli = Cli::parse([
            "policy",
            "--pattern",
            "/scratch/**",
            "--purge-age",
            "60",
            "--min-rate",
            "0.5",
        ])
        .unwrap();
        assert_eq!(
            cli.command,
            Command::Policy {
                store: None,
                snapshot: None,
                pattern: "/scratch/**".into(),
                purge_age_secs: 60,
                min_rate: 0.5,
                seconds: 1
            }
        );
        assert!(Cli::parse(["policy", "--min-rate", "warm"]).is_err());
        assert!(Cli::parse(["policy", "--wat"]).is_err());
    }

    #[test]
    fn chaos_parsing() {
        let cli = Cli::parse(["chaos"]).unwrap();
        assert_eq!(
            cli.command,
            Command::Chaos {
                plan: "basic".into(),
                seed: 7,
                mds: 1,
                seconds: 2,
                resolver_threads: 4,
                publish_lanes: 2,
                aggregator_shards: 1,
                durability: fsmon_store::Durability::None,
                consumers: 1,
                slo: None,
                stall_ms: None,
                incident_dir: None
            }
        );
        let cli = Cli::parse([
            "chaos",
            "--plan",
            "storm",
            "--seed",
            "42",
            "--mds",
            "2",
            "--seconds",
            "1",
            "--resolver-threads",
            "8",
            "--publish-lanes",
            "4",
            "--durability",
            "bytes:65536",
            "--consumers",
            "3",
        ])
        .unwrap();
        assert_eq!(
            cli.command,
            Command::Chaos {
                plan: "storm".into(),
                seed: 42,
                mds: 2,
                seconds: 1,
                resolver_threads: 8,
                publish_lanes: 4,
                aggregator_shards: 1,
                durability: fsmon_store::Durability::Bytes(65536),
                consumers: 3,
                slo: None,
                stall_ms: None,
                incident_dir: None
            }
        );
        assert!(Cli::parse(["chaos", "--seed", "abc"]).is_err());
        assert!(Cli::parse(["chaos", "--wat"]).is_err());
        assert!(Cli::parse(["chaos", "--durability", "sync"]).is_err());
        assert!(Cli::parse(["chaos", "--consumers", "0"]).is_err());
    }

    #[test]
    fn chaos_health_flags_parse() {
        let cli = Cli::parse([
            "chaos",
            "--slo",
            "e2e_p99<50ms;budget=0.1;fast=1s;slow=2s",
            "--stall",
            "20",
            "--incident-dir",
            "/tmp/inc",
        ])
        .unwrap();
        match cli.command {
            Command::Chaos {
                slo,
                stall_ms,
                incident_dir,
                ..
            } => {
                assert!(slo.unwrap().starts_with("e2e_p99<50000000;"));
                assert_eq!(stall_ms, Some(20));
                assert_eq!(incident_dir.as_deref(), Some("/tmp/inc"));
            }
            other => panic!("{other:?}"),
        }
        assert!(Cli::parse(["chaos", "--stall", "soon"]).is_err());
        assert!(Cli::parse(["chaos", "--slo", "e2e_p99<"]).is_err());
    }

    #[test]
    fn health_parsing() {
        assert_eq!(
            Cli::parse(["health"]).unwrap().command,
            Command::Health {
                addr: "127.0.0.1:9090".into()
            }
        );
        assert_eq!(
            Cli::parse(["health", ":9191"]).unwrap().command,
            Command::Health {
                addr: ":9191".into()
            }
        );
        assert!(Cli::parse(["health", "a", "b"]).is_err());
        assert!(Cli::parse(["health", "--wat"]).is_err());
    }

    #[test]
    fn incidents_parsing() {
        assert_eq!(
            Cli::parse(["incidents", "show", "/tmp/i.json"])
                .unwrap()
                .command,
            Command::Incidents {
                action: IncidentsAction::Show("/tmp/i.json".into())
            }
        );
        assert_eq!(
            Cli::parse(["incidents", "list", "/tmp"]).unwrap().command,
            Command::Incidents {
                action: IncidentsAction::List("/tmp".into())
            }
        );
        assert!(Cli::parse(["incidents"]).is_err());
        assert!(Cli::parse(["incidents", "show"]).is_err());
        assert!(Cli::parse(["incidents", "purge", "/tmp"]).is_err());
        assert!(Cli::parse(["incidents", "list", "/tmp", "extra"]).is_err());
    }

    #[test]
    fn unknown_command() {
        assert!(Cli::parse(["frobnicate"]).is_err());
    }
}
