//! Command implementations. Each returns its process exit code and
//! writes to the supplied writer, so tests can drive them directly.

use crate::args::{Command, IncidentsAction, StatsFormat, USAGE};
use fsmon_core::dsi::local::PollingDsi;
use fsmon_core::{EventFilter, FsMonitor, MonitorConfig};
use fsmon_events::kind::KindMask;
use fsmon_events::EventFormatter;
use fsmon_store::{EventStore, FileStore};
use std::io::Write;
use std::time::{Duration, Instant};

/// Run a parsed command, writing output to `out`.
pub fn run(command: Command, out: &mut dyn Write) -> i32 {
    match command {
        Command::Help => {
            let _ = writeln!(out, "{USAGE}");
            0
        }
        Command::Watch {
            path,
            format,
            kinds,
            prefix,
            recursive,
            store,
            duration_secs,
            interval_ms,
            coalesce,
        } => watch(
            &path,
            format,
            &kinds,
            &prefix,
            recursive,
            store.as_deref(),
            duration_secs,
            interval_ms,
            coalesce,
            out,
        ),
        Command::Replay { store, since, max } => replay(&store, since, max, out),
        Command::DemoLustre {
            mds,
            seconds,
            cache,
            resolver_threads,
            publish_lanes,
            aggregator_shards,
            filter,
            http,
            slo,
        } => demo_lustre(
            mds,
            seconds,
            cache,
            resolver_threads,
            publish_lanes,
            aggregator_shards,
            filter.as_deref(),
            http.as_deref(),
            slo.as_deref(),
            out,
        ),
        Command::Stats {
            format,
            from,
            diff,
            mds,
            seconds,
            cache,
        } => stats(
            format,
            from.as_deref(),
            diff.as_ref(),
            mds,
            seconds,
            cache,
            out,
        ),
        Command::Top {
            mds,
            seconds,
            cache,
            resolver_threads,
            publish_lanes,
            aggregator_shards,
            interval_ms,
            window_secs,
        } => top(
            mds,
            seconds,
            cache,
            resolver_threads,
            publish_lanes,
            aggregator_shards,
            interval_ms,
            window_secs,
            out,
        ),
        Command::Find {
            store,
            snapshot,
            pattern,
            older_than_secs,
            min_size,
            owner,
            kind,
            max,
            seconds,
        } => find(
            store.as_deref(),
            snapshot.as_deref(),
            pattern.as_deref(),
            older_than_secs,
            min_size,
            owner,
            kind.as_deref(),
            max,
            seconds,
            out,
        ),
        Command::Du {
            store,
            snapshot,
            prefix,
            depth,
            seconds,
        } => du(
            store.as_deref(),
            snapshot.as_deref(),
            &prefix,
            depth,
            seconds,
            out,
        ),
        Command::Policy {
            store,
            snapshot,
            pattern,
            purge_age_secs,
            min_rate,
            seconds,
        } => policy(
            store.as_deref(),
            snapshot.as_deref(),
            &pattern,
            purge_age_secs,
            min_rate,
            seconds,
            out,
        ),
        Command::Chaos {
            plan,
            seed,
            mds,
            seconds,
            resolver_threads,
            publish_lanes,
            aggregator_shards,
            durability,
            consumers,
            slo,
            stall_ms,
            incident_dir,
        } => chaos(
            &plan,
            seed,
            mds,
            seconds,
            resolver_threads,
            publish_lanes,
            aggregator_shards,
            durability,
            consumers,
            slo.as_deref(),
            stall_ms,
            incident_dir.as_deref(),
            out,
        ),
        Command::Health { addr } => health(&addr, out),
        Command::Incidents { action } => incidents(&action, out),
    }
}

#[allow(clippy::too_many_arguments)]
fn watch(
    path: &str,
    format: EventFormatter,
    kinds: &[fsmon_events::EventKind],
    prefix: &str,
    recursive: bool,
    store: Option<&str>,
    duration_secs: Option<u64>,
    interval_ms: u64,
    coalesce: bool,
    out: &mut dyn Write,
) -> i32 {
    if !std::path::Path::new(path).is_dir() {
        let _ = writeln!(out, "error: {path} is not a directory");
        return 2;
    }
    let config = match store {
        Some(dir) => MonitorConfig::with_file_store(dir),
        None => MonitorConfig::without_store(),
    };
    let dsi = PollingDsi::new(path.to_string());
    let mut monitor = FsMonitor::new(Box::new(dsi), config);
    let mut filter = if recursive {
        EventFilter::subtree(prefix)
    } else {
        EventFilter::directory(prefix)
    };
    if !kinds.is_empty() {
        filter.kinds = KindMask::from_kinds(kinds.iter().copied());
    }
    let sub = monitor.subscribe(filter);
    let _ = writeln!(
        out,
        "watching {path} (prefix {prefix}, format {})",
        format.as_str()
    );

    let deadline = duration_secs.map(|s| Instant::now() + Duration::from_secs(s));
    let mut printed = 0u64;
    loop {
        monitor.pump(4096);
        let mut events = sub.drain();
        if coalesce {
            events = fsmon_events::coalesce(&events);
        }
        for ev in events {
            let _ = writeln!(out, "{}", format.render(&ev));
            printed += 1;
        }
        if let Some(d) = deadline {
            if Instant::now() >= d {
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(interval_ms));
    }
    let _ = writeln!(out, "observed {printed} events");
    0
}

fn replay(store_dir: &str, since: u64, max: usize, out: &mut dyn Write) -> i32 {
    let store = match FileStore::open(store_dir) {
        Ok(s) => s,
        Err(e) => {
            let _ = writeln!(out, "error: cannot open store at {store_dir}: {e}");
            return 2;
        }
    };
    match store.get_since(since, max) {
        Ok(events) => {
            for ev in &events {
                let _ = writeln!(out, "{:>8}  {}", ev.id, ev.render_table2());
            }
            let _ = writeln!(out, "replayed {} events (since id {since})", events.len());
            0
        }
        Err(e) => {
            let _ = writeln!(out, "error: replay failed: {e}");
            2
        }
    }
}

/// Open (or build) the materialized index a query command answers
/// from. With `--store`, the snapshot beside the store resumes the
/// index at its applied-seq cursor, `catch_up` folds only the events
/// stamped since, and the refreshed snapshot is saved back — the query
/// itself never scans the store. Without a store, a fresh demo run is
/// indexed so the command has something to show.
fn open_index(
    store_dir: Option<&str>,
    snapshot: Option<&str>,
    seconds: u64,
    policies: fsmon_index::PolicyEngine,
    out: &mut dyn Write,
) -> Result<fsmon_index::IndexService, i32> {
    match store_dir {
        Some(dir) => {
            let store = match FileStore::open(dir) {
                Ok(s) => s,
                Err(e) => {
                    let _ = writeln!(out, "error: cannot open store at {dir}: {e}");
                    return Err(2);
                }
            };
            let snap = snapshot
                .map(std::path::PathBuf::from)
                .unwrap_or_else(|| std::path::Path::new(dir).join("index.snap"));
            let mut svc = fsmon_index::IndexService::open(snap, policies);
            let resumed = svc.index().applied_seq();
            if let Err(e) = svc.catch_up(&store) {
                let _ = writeln!(out, "error: index catch-up failed: {e}");
                return Err(2);
            }
            if let Err(e) = svc.save() {
                let _ = writeln!(out, "warning: cannot save index snapshot: {e}");
            }
            let _ = writeln!(
                out,
                "index     : resumed at seq {resumed}, caught up to seq {} \
                 ({} entries, {} resident bytes)",
                svc.index().applied_seq(),
                svc.index().len(),
                svc.index().resident_bytes(),
            );
            Ok(svc)
        }
        None => {
            let _ = writeln!(
                out,
                "no --store given; indexing a fresh {seconds}s demo run"
            );
            let dir = std::env::temp_dir().join(format!(
                "fsmon-queryidx-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let store = match FileStore::open(dir.join("store")) {
                Ok(s) => std::sync::Arc::new(s),
                Err(e) => {
                    let _ = writeln!(out, "error: cannot open demo store: {e}");
                    return Err(2);
                }
            };
            if let Err(e) = run_sim_into_store(1, seconds.max(1), 5000, store.clone()) {
                let _ = writeln!(out, "error: {e}");
                let _ = std::fs::remove_dir_all(&dir);
                return Err(2);
            }
            let mut svc = fsmon_index::IndexService::new(policies);
            let caught = svc.catch_up(store.as_ref());
            let _ = std::fs::remove_dir_all(&dir);
            if let Err(e) = caught {
                let _ = writeln!(out, "error: index catch-up failed: {e}");
                return Err(2);
            }
            let _ = writeln!(
                out,
                "index     : folded seq 1..={} into {} entries",
                svc.index().applied_seq(),
                svc.index().len(),
            );
            Ok(svc)
        }
    }
}

/// The index's notion of "now": the newest activity it has folded.
/// Event timestamps come from the producing system's clock (the sim
/// clock in demos), so anchoring ages to the stream keeps `--older-than`
/// and rate windows meaningful regardless of wall-clock skew.
fn index_now(idx: &fsmon_index::NamespaceIndex) -> u64 {
    idx.rollups()
        .map(|(_, r)| r.last_activity_ns)
        .max()
        .unwrap_or(0)
}

#[allow(clippy::too_many_arguments)]
fn find(
    store: Option<&str>,
    snapshot: Option<&str>,
    pattern: Option<&str>,
    older_than_secs: Option<u64>,
    min_size: Option<u64>,
    owner: Option<u32>,
    kind: Option<&str>,
    max: usize,
    seconds: u64,
    out: &mut dyn Write,
) -> i32 {
    use fsmon_index::EntryKind;
    let svc = match open_index(
        store,
        snapshot,
        seconds,
        fsmon_index::PolicyEngine::empty(),
        out,
    ) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let mut query = fsmon_index::FindQuery::default();
    if let Some(p) = pattern {
        query = query.pattern(p);
    }
    if let Some(age) = older_than_secs {
        query = query.older_than_ns(age.saturating_mul(1_000_000_000));
    }
    if let Some(bytes) = min_size {
        query = query.min_size(bytes);
    }
    if let Some(uid) = owner {
        query = query.owner(uid);
    }
    if let Some(k) = kind {
        query = query.kind(match k {
            "file" => EntryKind::File,
            "dir" => EntryKind::Directory,
            "symlink" => EntryKind::Symlink,
            _ => EntryKind::Device,
        });
    }
    let rows = svc.find(&query, index_now(svc.index()));
    for (path, entry) in rows.iter().take(max) {
        let _ = writeln!(
            out,
            "{:>12}  uid {:<6}  {:<7}  {}",
            entry.size,
            entry.owner,
            entry.kind.label(),
            path
        );
    }
    if rows.len() > max {
        let _ = writeln!(out, "... {} more rows (raise --max)", rows.len() - max);
    }
    let _ = writeln!(
        out,
        "matched {} of {} entries",
        rows.len(),
        svc.index().len()
    );
    0
}

fn du(
    store: Option<&str>,
    snapshot: Option<&str>,
    prefix: &str,
    depth: usize,
    seconds: u64,
    out: &mut dyn Write,
) -> i32 {
    let svc = match open_index(
        store,
        snapshot,
        seconds,
        fsmon_index::PolicyEngine::empty(),
        out,
    ) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let rows = svc.du(prefix, depth);
    let mut total_bytes = 0u64;
    let mut total_entries = 0u64;
    for row in &rows {
        total_bytes += row.bytes;
        total_entries += row.entries;
        let _ = writeln!(
            out,
            "{:>14}  {:>8} entries  {}",
            row.bytes, row.entries, row.path
        );
    }
    let _ = writeln!(
        out,
        "{total_bytes:>14}  {total_entries:>8} entries  total under {prefix} \
         ({} rollups)",
        rows.len()
    );
    0
}

fn policy(
    store: Option<&str>,
    snapshot: Option<&str>,
    pattern: &str,
    purge_age_secs: u64,
    min_rate: f64,
    seconds: u64,
    out: &mut dyn Write,
) -> i32 {
    let engine = fsmon_index::PolicyEngine::standard(
        pattern,
        purge_age_secs.saturating_mul(1_000_000_000),
        min_rate,
    );
    let svc = match open_index(store, snapshot, seconds, engine, out) {
        Ok(s) => s,
        Err(code) => return code,
    };
    for report in svc.evaluate(index_now(svc.index())) {
        let _ = writeln!(
            out,
            "{:<10}: {} candidates ({} stream events matched)",
            report.name, report.candidates, report.matched_events
        );
        for path in &report.sample {
            let _ = writeln!(out, "            {path}");
        }
    }
    0
}

/// One working directory per MDT: directory placement hashes the name
/// (DNE2 style) and files inherit their directory's MDT, so a
/// "/"-rooted workload would land every record on MDT0 and leave the
/// other collector lanes (and any extra aggregator shards) idle.
fn mdt_working_dirs(fs: &std::sync::Arc<lustre_sim::LustreFs>) -> Vec<String> {
    let client = fs.client();
    let n_mdt = fs.mdt_count() as usize;
    let mut bases: Vec<String> = Vec::new();
    let mut covered = vec![false; n_mdt];
    let mut i = 0;
    while covered.iter().any(|c| !c) && i < 512 {
        let name = format!("/w{i}");
        let _ = client.mkdir(&name);
        if let Ok(mdt) = fs.mdt_of(&name) {
            if !covered[mdt as usize] {
                covered[mdt as usize] = true;
                bases.push(name);
            }
        }
        i += 1;
    }
    bases
}

/// Drive the CreateModifyDelete script for `seconds` total, split
/// evenly across `bases` (one per MDT). Returns the wall time spent
/// generating. The expected event count comes from the per-MDT
/// changelogs afterwards ([`total_appended`]), not the script's op
/// counter — the mkdirs behind `bases` are changelog records too.
fn drive_spread_workload(
    client: &lustre_sim::LustreClient,
    bases: &[String],
    seconds: u64,
) -> Duration {
    use fsmon_workloads::{EvaluatePerformanceScript, ScriptVariant};
    let mut elapsed = Duration::ZERO;
    for base in bases {
        let run = EvaluatePerformanceScript::new(ScriptVariant::CreateModifyDelete, base)
            .with_working_set((1024 / bases.len()).max(64))
            .run_for(
                client,
                Duration::from_millis(seconds.max(1) * 1000 / bases.len() as u64),
            );
        elapsed += run.elapsed;
    }
    elapsed
}

/// Total changelog records across every MDT — the expected event count
/// for a run driven through [`drive_spread_workload`].
fn total_appended(fs: &std::sync::Arc<lustre_sim::LustreFs>) -> u64 {
    (0..fs.mdt_count())
        .map(|m| fs.mdt(m).changelog_stats().appended)
        .sum()
}

/// Run the simulated Lustre pipeline for `seconds` with its event log
/// landing in `store`, letting the whole stack (collectors, mq,
/// aggregator, store) pump the global telemetry registry. Returns the
/// number of generated operations.
fn run_sim_into_store(
    mds: u16,
    seconds: u64,
    cache: usize,
    store: std::sync::Arc<FileStore>,
) -> Result<(u64, Duration), String> {
    use fsmon_lustre::{ScalableConfig, ScalableMonitor};
    use fsmon_workloads::{EvaluatePerformanceScript, ScriptVariant};
    use lustre_sim::{LustreConfig, LustreFs};

    let fs = LustreFs::new(LustreConfig::small_dne(mds.max(1)));
    let monitor = ScalableMonitor::start(
        &fs,
        ScalableConfig {
            cache_size: cache,
            // 1% sampled traces so the summary can attribute per-stage
            // latency without distorting throughput.
            trace_sample_per_10k: 100,
            store: Some(store),
            ..ScalableConfig::default()
        },
    )
    .map_err(|e| e.to_string())?;
    let client = fs.client();
    let run = EvaluatePerformanceScript::new(ScriptVariant::CreateModifyDelete, "/")
        .with_working_set(1024)
        .run_for(&client, Duration::from_secs(seconds));
    monitor.wait_events(run.operations, Duration::from_secs(60));
    drain_consumer(&monitor, run.operations);
    monitor.stop();
    Ok((run.operations, run.elapsed))
}

/// Run the simulated pipeline into a temporary store and fold the run
/// into a materialized index, so the final summary's index section has
/// real numbers. Returns the number of generated operations.
fn run_sim_pipeline(mds: u16, seconds: u64, cache: usize) -> Result<(u64, Duration), String> {
    let dir = std::env::temp_dir().join(format!(
        "fsmon-stats-idx-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let store = std::sync::Arc::new(FileStore::open(dir.join("store")).map_err(|e| e.to_string())?);
    let result = run_sim_into_store(mds, seconds, cache, store.clone());
    if result.is_ok() {
        let mut svc =
            fsmon_index::IndexService::new(fsmon_index::PolicyEngine::standard("/**", 0, 1.0));
        svc.catch_up(store.as_ref()).map_err(|e| e.to_string())?;
        svc.record_lag(store.as_ref());
    }
    let _ = std::fs::remove_dir_all(&dir);
    result
}

/// Pull everything the aggregator published through the consumer so
/// delivered counts reflect the whole run.
fn drain_consumer(monitor: &fsmon_lustre::ScalableMonitor, expected: u64) {
    let mut drained = 0u64;
    let deadline = Instant::now() + Duration::from_secs(10);
    while drained < expected && Instant::now() < deadline {
        let got = monitor
            .consumer()
            .recv_batch(8192, Duration::from_millis(100))
            .len() as u64;
        if got == 0 {
            break;
        }
        drained += got;
    }
}

#[allow(clippy::too_many_arguments)]
fn demo_lustre(
    mds: u16,
    seconds: u64,
    cache: usize,
    resolver_threads: usize,
    publish_lanes: usize,
    aggregator_shards: usize,
    filter: Option<&str>,
    http: Option<&str>,
    slo: Option<&str>,
    out: &mut dyn Write,
) -> i32 {
    use fsmon_lustre::{ScalableConfig, ScalableMonitor};
    use lustre_sim::{LustreConfig, LustreFs};

    let _ = writeln!(
        out,
        "simulated Lustre: {mds} MDS(s), cache {cache}, \
         {resolver_threads} resolver thread(s), {publish_lanes} publish lane(s)"
    );
    if aggregator_shards > 1 {
        let _ = writeln!(
            out,
            "sharding  : {aggregator_shards} aggregator shards (MDT % K partitioning, \
             vector-watermark federation)"
        );
    }
    // The health engine rides along whenever an observer endpoint or
    // an SLO is asked for; sub-second ticks so short demo runs still
    // produce a few windowed samples.
    let health_opts = (http.is_some() || slo.is_some()).then(|| fsmon_telemetry::HealthOptions {
        spec: slo.map(|s| fsmon_telemetry::SloSpec::parse(s).expect("validated at arg parse")),
        tick: Duration::from_millis(250),
        http_addr: http.map(str::to_string),
        ..fsmon_telemetry::HealthOptions::default()
    });
    let fs = LustreFs::new(LustreConfig::small_dne(mds.max(1)));
    let monitor = match ScalableMonitor::start(
        &fs,
        ScalableConfig {
            cache_size: cache,
            resolver_threads,
            publish_lanes,
            aggregator_shards,
            trace_sample_per_10k: 100,
            health: health_opts,
            ..ScalableConfig::default()
        },
    ) {
        Ok(m) => m,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            return 2;
        }
    };
    if let Some(addr) = monitor.health_addr() {
        let _ = writeln!(
            out,
            "health    : observing at http://{addr}/health (also /metrics, /dashboard.json)"
        );
    }
    // An optional server-side filtered subscriber: the aggregator
    // matches the predicate once per event and this lane only ever
    // sees its subset (healed from the store on any frame loss).
    let mut filtered = filter.map(|spec_text| {
        let spec = fsmon_rules::FilterSpec::parse(spec_text).expect("validated at arg parse");
        monitor.subscribe_filtered(&spec, "demo-filter")
    });
    // Live stats on stderr while the demo runs: per-tick deltas from
    // the process-wide telemetry registry.
    let reporter = fsmon_telemetry::Reporter::spawn(
        fsmon_telemetry::global().clone(),
        Duration::from_millis(500),
        |_snap, delta| {
            eprintln!(
                "[telemetry] +{} collected, +{} published, +{} stored",
                delta.counter("fsmon_collector_events_total"),
                delta.counter("fsmon_aggregator_published_total"),
                delta.counter("fsmon_store_appends_total"),
            );
        },
    );
    let client = fs.client();
    let bases = mdt_working_dirs(&fs);
    let gen_elapsed = drive_spread_workload(&client, &bases, seconds);
    let expected = total_appended(&fs);
    monitor.wait_events(expected, Duration::from_secs(60));
    drain_consumer(&monitor, expected);
    let agg = monitor.aggregator_stats();
    let stats = monitor.total_collector_stats();
    reporter.stop();
    let _ = writeln!(out, "generated : {expected} events in {gen_elapsed:.1?}");
    let _ = writeln!(
        out,
        "reported  : {} events (lost {})",
        agg.received,
        expected.saturating_sub(agg.received)
    );
    if aggregator_shards > 1 {
        for (k, s) in monitor.shard_aggregator_stats().iter().enumerate() {
            let _ = writeln!(
                out,
                "  shard {k} : {} received, {} published, {} stored",
                s.received, s.published, s.stored
            );
        }
    }
    let _ = writeln!(
        out,
        "fid2path  : {} calls, cache hit ratio {:.1}%",
        stats.fid2path_calls,
        100.0 * stats.cache_hits as f64 / (stats.cache_hits + stats.cache_misses).max(1) as f64
    );
    if let Some(sub) = filtered.as_mut() {
        let _ = sub.poll();
        let _ = sub.catch_up();
        let st = sub.stats();
        let _ = writeln!(
            out,
            "filtered  : class {}: {} events ({} healed, {} frames lost)",
            sub.class_key(),
            st.delivered,
            st.healed,
            st.frames_lost
        );
    }
    if let Some(h) = monitor.health() {
        let _ = writeln!(out, "{}", h.report());
    }
    monitor.stop();
    let snap = fsmon_telemetry::global().snapshot();
    write_stats_summary(&snap, out);
    0
}

/// The human-oriented per-stage summary of a telemetry snapshot.
fn write_stats_summary(snap: &fsmon_telemetry::Snapshot, out: &mut dyn Write) {
    let _ = writeln!(out, "--- telemetry ({} metrics) ---", snap.len());
    let hits = snap.counter("fsmon_fid2path_hits_total");
    let misses = snap.counter("fsmon_fid2path_misses_total");
    let _ = writeln!(
        out,
        "collector : {} records, {} events",
        snap.counter("fsmon_collector_records_total"),
        snap.counter("fsmon_collector_events_total"),
    );
    let _ = writeln!(
        out,
        "fid2path  : {} calls, {} hits / {} misses (hit ratio {:.1}%)",
        snap.counter("fsmon_fid2path_calls_total"),
        hits,
        misses,
        100.0 * hits as f64 / (hits + misses).max(1) as f64,
    );
    let _ = writeln!(
        out,
        "mq        : {} published, {} hwm-dropped, {} tcp frames",
        snap.counter("fsmon_mq_published_total"),
        snap.counter("fsmon_mq_hwm_dropped_total"),
        snap.counter("fsmon_mq_tcp_frames_total"),
    );
    let _ = writeln!(
        out,
        "aggregator: {} received, {} published, {} stored, {} decode errors",
        snap.counter("fsmon_aggregator_received_total"),
        snap.counter("fsmon_aggregator_published_total"),
        snap.counter("fsmon_aggregator_stored_total"),
        snap.counter("fsmon_aggregator_decode_errors_total"),
    );
    write_shard_summary(snap, out);
    let appends = snap.counter("fsmon_store_appends_total");
    match snap.histogram("fsmon_store_append_ns") {
        Some(h) if h.count() > 0 => {
            let _ = writeln!(
                out,
                "store     : {} appends ({} segment rolls), append p50 {} ns / p99 {} ns",
                appends,
                snap.counter("fsmon_store_segment_rolls_total"),
                h.quantile(0.5),
                h.quantile(0.99),
            );
        }
        _ => {
            let _ = writeln!(
                out,
                "store     : {} appends ({} segment rolls)",
                appends,
                snap.counter("fsmon_store_segment_rolls_total"),
            );
        }
    }
    let _ = writeln!(
        out,
        "consumer  : {} delivered, {} filtered, {} dropped",
        snap.counter("fsmon_consumer_delivered_total"),
        snap.counter("fsmon_consumer_filtered_total"),
        snap.counter("fsmon_consumer_dropped_total"),
    );
    write_index_summary(snap, out);
    let _ = writeln!(
        out,
        "faults    : {} injected",
        snap.counter("fsmon_faults_injected_total"),
    );
    let _ = writeln!(
        out,
        "recovery  : {} collector restarts, {} lane restarts, {} store retries, {} dedup-dropped",
        snap.counter("fsmon_supervisor_restarts_total"),
        snap.counter("fsmon_aggregator_lane_restarts_total"),
        snap.counter("fsmon_aggregator_store_retries_total"),
        snap.counter("fsmon_aggregator_dedup_dropped_total"),
    );
    let _ = writeln!(
        out,
        "            {} gaps detected, {} events healed, {} dups dropped, {} reconnects",
        snap.counter("fsmon_consumer_gaps_detected_total"),
        snap.counter("fsmon_consumer_gap_events_healed_total"),
        snap.counter("fsmon_consumer_duplicates_dropped_total"),
        snap.counter("fsmon_consumer_reconnects_total"),
    );
    write_latency_summary(snap, out);
}

/// Per-shard aggregator breakdown. A sharded tier (K > 1) labels its
/// counters with `shard=<k>`; the unsharded tier emits no shard label,
/// so this section is silent for classic single-sequencer runs.
fn write_shard_summary(snap: &fsmon_telemetry::Snapshot, out: &mut dyn Write) {
    use fsmon_telemetry::MetricValue;
    let mut shards: std::collections::BTreeMap<usize, (u64, u64, u64)> =
        std::collections::BTreeMap::new();
    for (id, value) in &snap.metrics {
        let MetricValue::Counter(n) = value else {
            continue;
        };
        let Some(shard) = id
            .labels
            .iter()
            .find(|(k, _)| k == "shard")
            .and_then(|(_, v)| v.parse::<usize>().ok())
        else {
            continue;
        };
        let entry = shards.entry(shard).or_default();
        match id.name.as_str() {
            "fsmon_aggregator_received_total" => entry.0 += n,
            "fsmon_aggregator_published_total" => entry.1 += n,
            "fsmon_aggregator_stored_total" => entry.2 += n,
            _ => {}
        }
    }
    for (shard, (received, published, stored)) in shards {
        let _ = writeln!(
            out,
            "  shard {shard} : {received} received, {published} published, {stored} stored",
        );
    }
}

/// The materialized-index section of the summary: applied-seq cursor,
/// ingest lag vs the store head, resident footprint, and per-rule
/// predicate matches summed across rule labels. Silent when no index
/// ran in this snapshot's process.
fn write_index_summary(snap: &fsmon_telemetry::Snapshot, out: &mut dyn Write) {
    use fsmon_telemetry::MetricValue;
    let Some(applied_seq) = snap.gauge("fsmon_index_applied_seq") else {
        return;
    };
    let rule_matches: u64 = snap
        .metrics
        .iter()
        .filter(|(id, _)| id.name == "fsmon_index_rule_matches_total")
        .map(|(_, v)| match v {
            MetricValue::Counter(n) => *n,
            _ => 0,
        })
        .sum();
    let _ = writeln!(
        out,
        "index     : applied seq {applied_seq}, lag {}, {} entries, \
         {} resident bytes, {} rule matches",
        snap.gauge("fsmon_index_ingest_lag").unwrap_or(0),
        snap.gauge("fsmon_index_entries").unwrap_or(0),
        snap.gauge("fsmon_index_resident_bytes").unwrap_or(0),
        rule_matches,
    );
    if let Some(h) = snap
        .histogram("fsmon_index_fold_ns")
        .filter(|h| h.count() > 0)
    {
        let _ = writeln!(
            out,
            "            fold p50 {} ns / p99 {} ns over {} batches, \
             {} events applied, {} snapshots",
            h.quantile(0.5),
            h.quantile(0.99),
            h.count(),
            snap.counter("fsmon_index_events_applied_total"),
            snap.counter("fsmon_index_snapshots_total"),
        );
    }
}

/// Per-stage latency attribution from sampled trace records: one line
/// per pipeline stage with the merged p50/p99 and the MDT owning the
/// worst p99, plus the end-to-end distribution and the exemplar trace.
/// Silent when the snapshot holds no completed traces.
fn write_latency_summary(snap: &fsmon_telemetry::Snapshot, out: &mut dyn Write) {
    use fsmon_telemetry::{MetricValue, TraceStage};
    let traced = snap.counter("fsmon_trace_records_total");
    if traced == 0 {
        return;
    }
    match snap.histogram("fsmon_trace_e2e_ns") {
        Some(h) if h.count() > 0 => {
            let _ = writeln!(
                out,
                "latency   : {traced} traced, e2e p50 {} ns / p99 {} ns",
                h.quantile(0.5),
                h.quantile(0.99),
            );
        }
        _ => {
            let _ = writeln!(out, "latency   : {traced} traced");
        }
    }
    for stage in TraceStage::ALL {
        // Merge this stage's histograms across MDTs, remembering which
        // MDT owns the worst p99 — the attribution the fleet operator
        // acts on.
        let mut merged: Option<fsmon_telemetry::HistogramSnapshot> = None;
        let mut worst: Option<(u64, String)> = None;
        for (id, value) in &snap.metrics {
            let MetricValue::Histogram(h) = value else {
                continue;
            };
            if id.name != "fsmon_trace_stage_ns" || h.count() == 0 {
                continue;
            }
            let labeled = |key: &str| {
                id.labels
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v.clone())
            };
            if labeled("stage").as_deref() != Some(stage.name()) {
                continue;
            }
            let p99 = h.quantile(0.99);
            if worst.as_ref().is_none_or(|(w, _)| p99 > *w) {
                worst = Some((p99, labeled("mdt").unwrap_or_default()));
            }
            match &mut merged {
                None => merged = Some(h.clone()),
                Some(m) => m.merge(h),
            }
        }
        if let (Some(h), Some((worst_p99, worst_mdt))) = (merged, worst) {
            let _ = writeln!(
                out,
                "            {:<12} p50 {} ns / p99 {} ns (worst mdt {} at {} ns)",
                stage.name(),
                h.quantile(0.5),
                h.quantile(0.99),
                worst_mdt,
                worst_p99,
            );
        }
    }
    if let Some(id) = snap.gauge("fsmon_trace_exemplar_event_id") {
        let _ = writeln!(
            out,
            "exemplar  : event {id} (mdt {}) end-to-end {} ns",
            snap.gauge("fsmon_trace_exemplar_mdt").unwrap_or(0),
            snap.gauge("fsmon_trace_exemplar_total_ns").unwrap_or(0),
        );
    }
}

/// Load an exported snapshot file, auto-detecting the dialect:
/// JSON documents open with '{', Prometheus text with '#' or a
/// metric name.
fn load_snapshot(path: &str, out: &mut dyn Write) -> Option<fsmon_telemetry::Snapshot> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            let _ = writeln!(out, "error: cannot read {path}: {e}");
            return None;
        }
    };
    let parsed = if text.trim_start().starts_with('{') {
        fsmon_telemetry::export::parse_json(&text)
    } else {
        fsmon_telemetry::export::parse_prometheus(&text)
    };
    match parsed {
        Ok(s) => Some(s),
        Err(e) => {
            let _ = writeln!(out, "error: cannot parse {path}: {e}");
            None
        }
    }
}

/// Per-instrument listing of a delta snapshot: one line per metric
/// that changed, keyed by its full id (`name{label="v"}`). Counters
/// and histograms with a zero delta are elided; gauges always show
/// their current value. With `endpoints` (the before/after snapshots
/// the delta came from), histogram lines also show how the cumulative
/// p50/p99 moved between the two snapshots, so a diff covers latency
/// shifts and not just sample counts.
fn write_delta_listing(
    delta: &fsmon_telemetry::Snapshot,
    endpoints: Option<(&fsmon_telemetry::Snapshot, &fsmon_telemetry::Snapshot)>,
    out: &mut dyn Write,
) {
    use fsmon_telemetry::MetricValue;
    let mut shown = 0usize;
    for (id, value) in &delta.metrics {
        match value {
            MetricValue::Counter(0) => continue,
            MetricValue::Counter(n) => {
                let _ = writeln!(out, "{id} +{n}");
            }
            MetricValue::Gauge(g) => {
                let _ = writeln!(out, "{id} = {g}");
            }
            MetricValue::Histogram(h) => {
                if h.count() == 0 {
                    continue;
                }
                let shift = endpoints
                    .and_then(|(before, after)| {
                        let quantiles =
                            |snap: &fsmon_telemetry::Snapshot| match snap.metrics.get(id) {
                                Some(MetricValue::Histogram(h)) if h.count() > 0 => {
                                    Some((h.quantile(0.5), h.quantile(0.99)))
                                }
                                _ => None,
                            };
                        Some((quantiles(before)?, quantiles(after)?))
                    })
                    .map(|((bp50, bp99), (ap50, ap99))| {
                        format!("; cumulative p50 {bp50} -> {ap50}, p99 {bp99} -> {ap99}")
                    })
                    .unwrap_or_default();
                let _ = writeln!(
                    out,
                    "{id} +{} samples (p50 {} / p99 {}{shift})",
                    h.count(),
                    h.quantile(0.5),
                    h.quantile(0.99),
                );
            }
        }
        shown += 1;
    }
    if shown == 0 {
        let _ = writeln!(out, "(no change)");
    }
}

fn stats(
    format: StatsFormat,
    from: Option<&str>,
    diff: Option<&(String, String)>,
    mds: u16,
    seconds: u64,
    cache: usize,
    out: &mut dyn Write,
) -> i32 {
    let snap = if let Some((before_path, after_path)) = diff {
        let Some(before) = load_snapshot(before_path, out) else {
            return 2;
        };
        let Some(after) = load_snapshot(after_path, out) else {
            return 2;
        };
        let delta = after.delta_from(&before);
        if format == StatsFormat::Summary {
            let _ = writeln!(out, "--- delta {before_path} -> {after_path} ---");
            write_delta_listing(&delta, Some((&before, &after)), out);
            return 0;
        }
        delta
    } else {
        match from {
            Some(path) => match load_snapshot(path, out) {
                Some(s) => s,
                None => return 2,
            },
            None => {
                // Keep stdout machine-parseable for the export formats.
                if format == StatsFormat::Summary {
                    let _ = writeln!(
                        out,
                        "running simulated pipeline: {mds} MDS(s), {seconds}s, cache {cache}"
                    );
                } else {
                    eprintln!(
                        "running simulated pipeline: {mds} MDS(s), {seconds}s, cache {cache}"
                    );
                }
                if let Err(e) = run_sim_pipeline(mds, seconds, cache) {
                    let _ = writeln!(out, "error: {e}");
                    return 2;
                }
                fsmon_telemetry::global().snapshot()
            }
        }
    };
    match format {
        StatsFormat::Summary => write_stats_summary(&snap, out),
        StatsFormat::Prometheus => {
            let _ = write!(out, "{}", fsmon_telemetry::export::render_prometheus(&snap));
        }
        StatsFormat::Json => {
            let _ = writeln!(out, "{}", fsmon_telemetry::export::render_json(&snap));
        }
    }
    0
}

/// Minimal HTTP/1.1 GET against `addr` (accepting the `:port`
/// localhost shorthand), returning the status code and body.
fn http_get(addr: &str, path: &str) -> Result<(u16, String), String> {
    use std::io::Read;
    let addr = match addr.strip_prefix(':') {
        Some(port) => format!("127.0.0.1:{port}"),
        None => addr.to_string(),
    };
    let mut stream =
        std::net::TcpStream::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(|e| format!("send to {addr}: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("read from {addr}: {e}"))?;
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed response from {addr}"))?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

/// `fsmon health`: one GET against a running observer's `/health`,
/// pretty-printed. Exit 0 when every clause holds, 1 when alerting,
/// 2 when the endpoint is unreachable or the response unparseable.
fn health(addr: &str, out: &mut dyn Write) -> i32 {
    let (status, body) = match http_get(addr, "/health") {
        Ok(r) => r,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            return 2;
        }
    };
    // The observer answers 200 when ok and 503 while alerting; both
    // carry the same report document.
    if status != 200 && status != 503 {
        let _ = writeln!(out, "error: /health returned HTTP {status}");
        return 2;
    }
    match fsmon_telemetry::HealthReport::from_json(&body) {
        Ok(report) => {
            let _ = writeln!(out, "{report}");
            if report.ok {
                0
            } else {
                1
            }
        }
        Err(e) => {
            let _ = writeln!(out, "error: cannot parse /health response: {e}");
            2
        }
    }
}

/// Pretty-print one decoded incident bundle: the verdicts at dump
/// time, the worst-trace exemplar with per-stage stamps, and the
/// flight-recorder snapshot window condensed to the pipeline's
/// headline counters.
fn write_incident(bundle: &fsmon_telemetry::IncidentBundle, out: &mut dyn Write) {
    let _ = writeln!(out, "reason    : {}", bundle.reason);
    let _ = writeln!(out, "at        : unix_ms {}", bundle.unix_ms);
    if !bundle.config.is_empty() {
        let _ = writeln!(out, "config    : {}", bundle.config);
    }
    if let Some(slo) = &bundle.slo {
        let _ = writeln!(out, "slo       : {slo}");
    }
    for v in &bundle.verdicts {
        let _ = writeln!(
            out,
            "verdict   : [{}] {}: value {} {} (burn fast {:.2} slow {:.2})",
            v.scope,
            v.clause,
            v.value.map(|x| x.to_string()).unwrap_or_else(|| "-".into()),
            if v.alerting {
                "ALERTING"
            } else if v.breached {
                "breached"
            } else {
                "ok"
            },
            v.fast_burn,
            v.slow_burn,
        );
    }
    if let Some(e) = &bundle.exemplar {
        let stamps: String = fsmon_telemetry::TraceStage::ALL
            .iter()
            .zip(e.stamps.iter())
            .map(|(stage, ns)| format!("  {} {}", stage.name(), ns))
            .collect();
        let _ = writeln!(
            out,
            "exemplar  : event {} (mdt {}) end-to-end {} ns",
            e.event_id, e.mdt, e.total_ns
        );
        let _ = writeln!(out, "            stage stamps (ns):{stamps}");
    }
    let _ = writeln!(
        out,
        "snapshots : {} pre-incident ticks",
        bundle.snapshots.len()
    );
    for (ms, snap) in &bundle.snapshots {
        let _ = writeln!(
            out,
            "  {ms}: collected {}, received {}, stored {}, delivered {}",
            snap.counter("fsmon_collector_events_total"),
            snap.counter("fsmon_aggregator_received_total"),
            snap.counter("fsmon_store_appends_total"),
            snap.counter("fsmon_consumer_delivered_total"),
        );
    }
}

/// `fsmon incidents`: decode (CRC-verifying) and display flight
/// recorder bundles.
fn incidents(action: &IncidentsAction, out: &mut dyn Write) -> i32 {
    match action {
        IncidentsAction::Show(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    let _ = writeln!(out, "error: cannot read {path}: {e}");
                    return 2;
                }
            };
            match fsmon_telemetry::IncidentBundle::decode(&text) {
                Ok(bundle) => {
                    write_incident(&bundle, out);
                    0
                }
                Err(e) => {
                    let _ = writeln!(out, "error: cannot decode {path}: {e}");
                    2
                }
            }
        }
        IncidentsAction::List(dir) => {
            let entries = match std::fs::read_dir(dir) {
                Ok(rd) => rd,
                Err(e) => {
                    let _ = writeln!(out, "error: cannot list {dir}: {e}");
                    return 2;
                }
            };
            let mut paths: Vec<std::path::PathBuf> = entries
                .flatten()
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("incident-") && n.ends_with(".json"))
                })
                .collect();
            paths.sort();
            for path in &paths {
                let name = path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .unwrap_or_default();
                match std::fs::read_to_string(path)
                    .map_err(|e| e.to_string())
                    .and_then(|t| {
                        fsmon_telemetry::IncidentBundle::decode(&t).map_err(|e| e.to_string())
                    }) {
                    Ok(b) => {
                        let _ = writeln!(
                            out,
                            "{name}  {}  {} verdict(s), {} snapshot(s){}",
                            b.reason,
                            b.verdicts.len(),
                            b.snapshots.len(),
                            if b.exemplar.is_some() {
                                ", exemplar"
                            } else {
                                ""
                            }
                        );
                    }
                    Err(e) => {
                        let _ = writeln!(out, "{name}  (corrupt: {e})");
                    }
                }
            }
            let _ = writeln!(out, "{} bundle(s) in {dir}", paths.len());
            0
        }
    }
}

/// Per-MDT event rates from a windowed delta snapshot: the
/// `fsmon_collector_events_total{mdt=...}` counter deltas divided by
/// the window span.
fn per_mdt_rates(delta: &fsmon_telemetry::Snapshot, span_secs: f64) -> Vec<(String, f64)> {
    use fsmon_telemetry::MetricValue;
    let mut rates = Vec::new();
    for (id, value) in &delta.metrics {
        if id.name != "fsmon_collector_events_total" {
            continue;
        }
        let MetricValue::Counter(n) = value else {
            continue;
        };
        let Some((_, mdt)) = id.labels.iter().find(|(k, _)| k == "mdt") else {
            continue;
        };
        rates.push((mdt.clone(), *n as f64 / span_secs));
    }
    rates
}

/// Render recent per-tick values as a fixed-height sparkline, scaled
/// to the window peak (all-zero history renders as a flat baseline).
fn sparkline(values: &std::collections::VecDeque<f64>) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let peak = values.iter().cloned().fold(0.0_f64, f64::max);
    values
        .iter()
        .map(|&v| {
            if peak <= 0.0 {
                GLYPHS[0]
            } else {
                GLYPHS[((v / peak * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

/// Live view of the running pipeline: a workload drives the simulated
/// cluster in the background while the foreground ticks, printing one
/// line per interval with stage deltas and trace latency, then the
/// merged fleet snapshot (every collector's published telemetry folded
/// into one view) and the final per-stage summary.
#[allow(clippy::too_many_arguments)]
fn top(
    mds: u16,
    seconds: u64,
    cache: usize,
    resolver_threads: usize,
    publish_lanes: usize,
    aggregator_shards: usize,
    interval_ms: u64,
    window_secs: u64,
    out: &mut dyn Write,
) -> i32 {
    use fsmon_lustre::{ScalableConfig, ScalableMonitor};
    use lustre_sim::{LustreConfig, LustreFs};

    let mds = mds.max(1);
    let _ = writeln!(
        out,
        "fsmon top: {mds} MDS(s), {seconds}s workload, {}ms refresh{}",
        interval_ms.max(50),
        if aggregator_shards > 1 {
            format!(", {aggregator_shards} aggregator shards")
        } else {
            String::new()
        }
    );
    let fs = LustreFs::new(LustreConfig::small_dne(mds));
    let monitor = match ScalableMonitor::start(
        &fs,
        ScalableConfig {
            cache_size: cache,
            resolver_threads,
            publish_lanes,
            aggregator_shards,
            trace_sample_per_10k: 100,
            ..ScalableConfig::default()
        },
    ) {
        Ok(m) => m,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            return 2;
        }
    };

    // Two pushdown filter classes at different selectivity feed the
    // subscribers section: everything, and creates only. Both are
    // in-process ring cursors drained once per tick.
    let mut top_subs = vec![
        monitor.subscribe_filtered(&fsmon_rules::FilterSpec::all(), "top-all"),
        monitor.subscribe_filtered(
            &fsmon_rules::FilterSpec::all().with_kinds(fsmon_events::kind::KindMask::from_kinds([
                fsmon_events::EventKind::Create,
            ])),
            "top-creates",
        ),
    ];

    let client = fs.client();
    let bases = mdt_working_dirs(&fs);
    let worker = std::thread::spawn(move || drive_spread_workload(&client, &bases, seconds.max(1)));

    let window = Duration::from_secs(window_secs.max(1));
    let mut prev = fsmon_telemetry::global().snapshot();
    // Ring of timestamped snapshots covering the sliding window, so
    // per-MDT rates reflect the last N seconds rather than the whole
    // run or a single tick.
    let mut ring: std::collections::VecDeque<(Instant, fsmon_telemetry::Snapshot)> =
        std::collections::VecDeque::from([(Instant::now(), prev.clone())]);
    // Per-tick collected rates feeding the sparkline dashboard.
    let mut spark: std::collections::VecDeque<f64> = std::collections::VecDeque::new();
    let mut last_tick_at = Instant::now();
    let mut tick = 0u64;
    while !worker.is_finished() {
        // Pull the live feed so Deliver stamps fold into the trace
        // histograms; recv_batch's timeout paces the tick.
        let _ = monitor
            .consumer()
            .recv_batch(8192, Duration::from_millis(interval_ms.max(50)));
        let snap = fsmon_telemetry::global().snapshot();
        let delta = snap.delta_from(&prev);
        prev = snap.clone();
        let now = Instant::now();
        ring.push_back((now, snap));
        while ring.len() > 2 && now.duration_since(ring[1].0) >= window {
            ring.pop_front();
        }
        tick += 1;
        let e2e = delta
            .histogram("fsmon_trace_e2e_ns")
            .filter(|h| h.count() > 0)
            .map(|h| format!("  e2e p99 {} ns", h.quantile(0.99)))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "tick {tick:>3}: +{} collected  +{} published  +{} stored  +{} delivered{e2e}",
            delta.counter("fsmon_collector_events_total"),
            delta.counter("fsmon_aggregator_published_total"),
            delta.counter("fsmon_store_appends_total"),
            delta.counter("fsmon_consumer_delivered_total"),
        );
        let (oldest_at, oldest) = ring.front().expect("ring is never empty");
        let span = now.duration_since(*oldest_at).as_secs_f64().max(1e-9);
        let windowed = ring
            .back()
            .expect("ring is never empty")
            .1
            .delta_from(oldest);
        let mut rates = per_mdt_rates(&windowed, span);
        if !rates.is_empty() {
            rates.sort_by(|a, b| a.0.cmp(&b.0));
            let line: String = rates
                .iter()
                .map(|(mdt, rate)| format!("  mdt{mdt} {rate:.0} ev/s"))
                .collect();
            let _ = writeln!(out, "  window {span:>4.1}s:{line}");
        }
        let tick_span = now.duration_since(last_tick_at).as_secs_f64().max(1e-9);
        last_tick_at = now;
        if spark.len() == 32 {
            spark.pop_front();
        }
        spark.push_back(delta.counter("fsmon_collector_events_total") as f64 / tick_span);
        let peak = spark.iter().cloned().fold(0.0_f64, f64::max);
        let _ = writeln!(out, "  collected {} peak {peak:.0} ev/s", sparkline(&spark));
        for s in &mut top_subs {
            let _ = s.poll();
        }
    }
    let gen_elapsed = worker.join().expect("workload thread");
    let expected = total_appended(&fs);
    monitor.wait_events(expected, Duration::from_secs(60));
    drain_consumer(&monitor, expected);

    // Fold every collector's telemetry into the fleet view. Snapshots
    // travel the same mq path as events, so give the aggregator's demux
    // a moment to ingest one from each MDT.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        monitor.publish_fleet_snapshots();
        if monitor.fleet_sources().len() >= mds as usize || Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let fleet = monitor.fleet_snapshot();
    let sources = monitor.fleet_sources();
    let _ = writeln!(
        out,
        "--- fleet ({} sources: {}) ---",
        sources.len(),
        sources.join(", ")
    );
    let _ = writeln!(
        out,
        "fleet     : {} records, {} events, {} traced, backlog {}",
        fleet.counter("fsmon_collector_records_total"),
        fleet.counter("fsmon_collector_events_total"),
        fleet.counter("fsmon_collector_traces_total"),
        fleet.gauge("fsmon_collector_backlog").unwrap_or(0),
    );
    let _ = writeln!(out, "generated : {expected} events in {gen_elapsed:.1?}");
    // The subscribers section: one row per active filter class with
    // its shared fan-out counters (server-side filter pushdown).
    let classes = monitor.class_stats();
    let _ = writeln!(out, "--- subscribers ({} classes) ---", classes.len());
    for c in &classes {
        let rate = if c.rate == 0 {
            "unlimited".to_string()
        } else {
            format!("{}/s", c.rate)
        };
        let _ = writeln!(
            out,
            "class     : {} : {} consumer(s), {} frames, queue depth {}, {} stalls, \
             {} degraded, rate {rate}, {} shed",
            c.key, c.consumers, c.frames, c.queue_depth, c.stalls, c.degraded, c.shed
        );
    }
    for s in &mut top_subs {
        let _ = s.poll();
        let st = s.stats();
        let _ = writeln!(
            out,
            "subscriber: {} delivered {} ({} frames lost)",
            s.class_key(),
            st.delivered,
            st.frames_lost
        );
    }
    drop(top_subs);
    monitor.stop();
    write_stats_summary(&fsmon_telemetry::global().snapshot(), out);
    0
}

/// Run the simulated pipeline under an armed fault plan and verify the
/// end-to-end delivery guarantee: every generated event reaches the
/// consumer exactly once (live or healed from the store), despite
/// injected disconnects, store errors, and lane crashes.
#[allow(clippy::too_many_arguments)]
fn chaos(
    plan_name: &str,
    seed: u64,
    mds: u16,
    seconds: u64,
    resolver_threads: usize,
    publish_lanes: usize,
    aggregator_shards: usize,
    durability: fsmon_store::Durability,
    consumers: usize,
    slo: Option<&str>,
    stall_ms: Option<u64>,
    incident_dir: Option<&str>,
    out: &mut dyn Write,
) -> i32 {
    use fsmon_faults::{FaultPlan, FaultPoint, FaultRule};
    use fsmon_lustre::{ScalableConfig, ScalableMonitor};
    use fsmon_telemetry::MetricValue;
    use lustre_sim::{LustreConfig, LustreFs};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let Some(mut plan) = FaultPlan::named(plan_name, seed) else {
        let _ = writeln!(
            out,
            "error: unknown fault plan {plan_name:?} (known: {})",
            FaultPlan::NAMED.join(", ")
        );
        return 2;
    };
    // An explicit stall throttles every collector lane iteration — the
    // breach injection the health engine's SLO is meant to catch.
    if let Some(ms) = stall_ms {
        plan = plan.with(
            FaultPoint::CollectorStall,
            FaultRule::percent(100).delay(Duration::from_millis(ms)),
        );
    }
    let faults = plan.arm();
    let before = fsmon_telemetry::global().snapshot();

    let dir = std::env::temp_dir().join(format!("fsmon-chaos-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let shards = aggregator_shards.max(1);

    let _ = writeln!(
        out,
        "chaos: plan {plan_name:?} seed {seed}, {mds} MDS(s), {seconds}s workload, \
         durability {durability}, {consumers} consumer(s), {shards} aggregator shard(s)"
    );
    // With an SLO or an incident directory, the health engine watches
    // the run: fast ticks so a couple of seconds produce a usable
    // burn-rate history, and bundles dumped wherever asked.
    let health_opts =
        (slo.is_some() || incident_dir.is_some()).then(|| fsmon_telemetry::HealthOptions {
            spec: slo.map(|s| fsmon_telemetry::SloSpec::parse(s).expect("validated at arg parse")),
            tick: Duration::from_millis(100),
            incident_dir: incident_dir.map(std::path::PathBuf::from),
            config_desc: format!(
                "chaos plan={plan_name} seed={seed} mds={mds} stall_ms={}",
                stall_ms.unwrap_or(0)
            ),
            ..fsmon_telemetry::HealthOptions::default()
        });
    let fs = LustreFs::new(LustreConfig::small_dne(mds.max(1)));
    let monitor = match ScalableMonitor::start(
        &fs,
        ScalableConfig {
            cache_size: 2000,
            // Small batches mean more publishes, so injected faults land
            // between batches often enough to matter. 1% tracing rides
            // along to prove sampling survives the fault plan.
            trace_sample_per_10k: 100,
            batch_size: 64,
            // The monitor opens the run's durable store(s) itself —
            // one per shard under this directory, each with small
            // segments so the run exercises rolls (and, under `storm`,
            // torn-tail quarantine) and each consulting the fault
            // plane.
            store_dir: Some(dir.join("store")),
            store_segment_bytes: 64 * 1024,
            durability,
            aggregator_shards: shards,
            cursor_file: Some(dir.join("cursors")),
            faults: faults.clone(),
            resolver_threads,
            publish_lanes,
            health: health_opts,
            ..ScalableConfig::default()
        },
    ) {
        Ok(m) => m,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            return 2;
        }
    };
    // Shard stores outlive the monitor: the replay-based verdicts below
    // read them after stop().
    let stores = monitor.shard_stores();
    // Drive every consumer concurrently: the monitor's built-in one
    // plus `consumers - 1` named attachments, each drained on its own
    // thread and independently verified against the replay path.
    let mut lanes: Vec<(String, Arc<fsmon_lustre::FederatedConsumer>)> =
        vec![("main".to_string(), monitor.consumer().clone())];
    for i in 1..consumers {
        let name = format!("aux{i}");
        match monitor.new_consumer_named(fsmon_core::EventFilter::all(), &name) {
            Ok(c) => lanes.push((name, Arc::new(c))),
            Err(e) => {
                let _ = writeln!(out, "error: cannot attach consumer {name}: {e}");
                return 2;
            }
        }
    }
    let stopped = Arc::new(AtomicBool::new(false));
    // Each shard stamps its own dense id stream, so delivered events
    // are tracked as (shard, id) pairs — with K=1 everything lands in
    // shard 0 and the pairs degenerate to the classic id check.
    type LaneDrain = std::thread::JoinHandle<(String, Vec<(usize, u64)>)>;
    let drains: Vec<LaneDrain> = lanes
        .iter()
        .map(|(name, consumer)| {
            let name = name.clone();
            let consumer = consumer.clone();
            let stopped = stopped.clone();
            std::thread::spawn(move || {
                // Live feed, concurrent with the workload.
                let mut ids: Vec<(usize, u64)> = Vec::new();
                let live_deadline = Instant::now() + Duration::from_secs(80);
                loop {
                    let batch = consumer.recv_batch(8192, Duration::from_millis(200));
                    ids.extend(
                        batch
                            .iter()
                            .map(|e| (fsmon_core::shard_of(e.mdt_index, shards), e.id)),
                    );
                    if (batch.is_empty() && stopped.load(Ordering::Relaxed))
                        || Instant::now() >= live_deadline
                    {
                        break;
                    }
                }
                // The store lanes have joined by the time `stopped` is
                // set, so the stores hold every stamped event; heal
                // whatever the live feed missed from there.
                consumer.catch_up();
                loop {
                    let batch = consumer.recv_batch(8192, Duration::from_millis(50));
                    if batch.is_empty() {
                        break;
                    }
                    ids.extend(
                        batch
                            .iter()
                            .map(|e| (fsmon_core::shard_of(e.mdt_index, shards), e.id)),
                    );
                }
                (name, ids)
            })
        })
        .collect();

    // The materialized index rides the same pub/sub path on its own
    // lane, folding live batches as they arrive. Every 16 batches it
    // simulates a supervised crash: persist the snapshot, drop the
    // in-memory state, resume from the snapshot's applied-seq cursor,
    // and heal the discarded tail from the store. Events the store
    // cannot produce yet wait in the service's reorder stage, so the
    // fold never applies out of sequence.
    let index_consumer = match monitor.new_consumer_named(fsmon_core::EventFilter::all(), "index") {
        Ok(c) => c,
        Err(e) => {
            let _ = writeln!(out, "error: cannot attach index consumer: {e}");
            return 2;
        }
    };
    // One index service per shard (the reorder stage tracks one dense
    // id stream), each folding its shard's slice of the merged feed
    // and healing from its own shard store. K=1 keeps the classic
    // single service and snapshot name.
    let index_snap_path = |k: usize| {
        if shards == 1 {
            dir.join("index.snap")
        } else {
            dir.join(format!("index-s{k}.snap"))
        }
    };
    let index_snaps: Vec<std::path::PathBuf> = (0..shards).map(index_snap_path).collect();
    let index_stores = stores.clone();
    let index_stopped = stopped.clone();
    let index_thread = std::thread::spawn(move || {
        let new_engine = || fsmon_index::PolicyEngine::standard("/**", 0, 1.0);
        let mut svcs: Vec<fsmon_index::IndexService> = index_snaps
            .iter()
            .map(|p| fsmon_index::IndexService::open(p, new_engine()))
            .collect();
        let mut restarts = 0u64;
        let mut batches = vec![0u64; shards];
        let live_deadline = Instant::now() + Duration::from_secs(80);
        loop {
            let batch = index_consumer.recv_batch(8192, Duration::from_millis(200));
            if !batch.is_empty() {
                let mut slices: Vec<Vec<fsmon_events::StandardEvent>> =
                    (0..shards).map(|_| Vec::new()).collect();
                for ev in batch {
                    slices[fsmon_core::shard_of(ev.mdt_index, shards)].push(ev);
                }
                for (k, slice) in slices.into_iter().enumerate() {
                    if slice.is_empty() {
                        continue;
                    }
                    batches[k] += 1;
                    if batches[k].is_multiple_of(16) {
                        let _ = svcs[k].save();
                        svcs[k] = fsmon_index::IndexService::open(&index_snaps[k], new_engine());
                        restarts += 1;
                        // Heal what the crash discarded; anything the
                        // store lane hasn't persisted yet stages in the
                        // reorder buffer until a later catch-up fills
                        // the hole.
                        let _ = svcs[k].catch_up(index_stores[k].as_ref());
                    }
                    svcs[k].ingest(&slice);
                    if svcs[k].pending_len() > 0 {
                        let _ = svcs[k].catch_up(index_stores[k].as_ref());
                    }
                }
            } else if index_stopped.load(Ordering::Relaxed) || Instant::now() >= live_deadline {
                break;
            }
        }
        // The stores are complete once the monitor stopped; fold the
        // rest and leave snapshots behind for the reload proof.
        for (k, svc) in svcs.iter_mut().enumerate() {
            let _ = svc.catch_up(index_stores[k].as_ref());
            svc.record_lag(index_stores[k].as_ref());
            let _ = svc.save();
        }
        (svcs, restarts)
    });

    // The filtered lane: a narrow predicate pushed down to the
    // aggregator (server-side filtering) rides the same fault plan.
    // It must see exactly its subset, exactly once, across aggregator
    // crashes — verified below against a linear replay of the store
    // through the same compiled predicate.
    let filter_spec =
        fsmon_rules::FilterSpec::all().with_kinds(fsmon_events::kind::KindMask::from_kinds([
            fsmon_events::EventKind::Create,
        ]));
    let mut filtered = match monitor.new_filtered_consumer(&filter_spec, "chaos-filtered") {
        Ok(f) => f,
        Err(e) => {
            let _ = writeln!(out, "error: cannot attach filtered consumer: {e}");
            return 2;
        }
    };
    let filtered_stopped = stopped.clone();
    let filtered_thread = std::thread::spawn(move || {
        let mut ids: Vec<(usize, u64)> = Vec::new();
        let live_deadline = Instant::now() + Duration::from_secs(80);
        loop {
            let batch = filtered.recv_for(Duration::from_millis(200));
            ids.extend(
                batch
                    .iter()
                    .map(|e| (fsmon_core::shard_of(e.mdt_index, shards), e.id)),
            );
            if (batch.is_empty() && filtered_stopped.load(Ordering::Relaxed))
                || Instant::now() >= live_deadline
            {
                break;
            }
        }
        // The stores are complete once the monitor stopped: heal
        // recorded gaps and any lost tail through the subscriber's own
        // filter.
        ids.extend(
            filtered
                .catch_up()
                .iter()
                .map(|e| (fsmon_core::shard_of(e.mdt_index, shards), e.id)),
        );
        (ids, filtered.stats())
    });

    let client = fs.client();
    let bases = mdt_working_dirs(&fs);
    let elapsed = drive_spread_workload(&client, &bases, seconds);
    // The workload has no renames, so changelog records map 1:1 to
    // events and each shard's expected dense id range is the sum of
    // its MDTs' appended records.
    let mut expected_shard = vec![0u64; shards];
    for m in 0..fs.mdt_count() {
        expected_shard[fsmon_core::shard_of(Some(m), shards)] +=
            fs.mdt(m).changelog_stats().appended;
    }
    let expected: u64 = expected_shard.iter().sum();
    monitor.wait_events(expected, Duration::from_secs(60));

    // Exercise the history REQ/REP path under the same plan: storm
    // injects request drops/errors, and the retry loop must heal them.
    match monitor.history_client() {
        Ok(history) => match history.replay_since_retry(0, 64, &fsmon_faults::Retry::fast()) {
            Ok(events) => {
                let _ = writeln!(
                    out,
                    "history   : replayed {} events through the faulted REQ/REP path",
                    events.len()
                );
            }
            Err(e) => {
                let _ = writeln!(out, "history   : replay failed past retry budget: {e}");
            }
        },
        Err(e) => {
            let _ = writeln!(out, "history   : connect failed: {e}");
        }
    }

    // Stopping joins the store lane, so the store now holds every
    // stamped event; the drain threads then heal and finish. The
    // health verdict is read first — stop() tears the engine down.
    let health_report = monitor.health().map(|h| h.report());
    monitor.stop();
    stopped.store(true, Ordering::Relaxed);

    // Each shard stamps ids dense from 1 over its own stream, so a
    // fault-free run delivers exactly the union of 1..=expected_shard[k]
    // for every shard k to every consumer — with K=1 that is the
    // classic 1..=expected check. Pairs outside a shard's range mean
    // an upstream duplicate slipped past dedup and was stamped as a
    // fresh event.
    let mut lost = 0u64;
    let mut duplicated = 0u64;
    let mut per_lane: Vec<(String, u64, u64, u64, u64)> = Vec::new();
    for handle in drains {
        let (name, mut ids) = handle.join().expect("consumer drain thread");
        let total = ids.len() as u64;
        ids.sort_unstable();
        ids.dedup();
        let unique = ids.len() as u64;
        let in_range = ids
            .iter()
            .filter(|&&(k, id)| k < shards && id >= 1 && id <= expected_shard[k])
            .count() as u64;
        let lane_lost = expected.saturating_sub(in_range);
        let lane_dup = (total - unique) + (unique - in_range);
        lost += lane_lost;
        duplicated += lane_dup;
        per_lane.push((name, total, unique, lane_lost, lane_dup));
    }
    // The federation invariant's other half: every shard's sequencer
    // stamped exactly its MDTs' records, so the union check above is
    // really a union of K linear shard replays.
    let mut seq_ok = true;
    for (k, s) in stores.iter().enumerate() {
        let st = s.stats();
        if st.last_seq != expected_shard[k] {
            seq_ok = false;
        }
        if shards > 1 {
            let _ = writeln!(
                out,
                "shard {k}   : {} sequenced (expected {}) -> {}",
                st.last_seq,
                expected_shard[k],
                if st.last_seq == expected_shard[k] {
                    "PASS"
                } else {
                    "FAIL"
                }
            );
        }
    }

    let after = fsmon_telemetry::global().snapshot();
    let delta = after.delta_from(&before);
    let _ = writeln!(out, "--- fault/recovery counters ---");
    let interesting = [
        "fsmon_faults_",
        "restarts_total",
        "retries_total",
        "dedup_dropped",
        "gaps_detected",
        "gap_events_healed",
        "duplicates_dropped",
        "reconnects_total",
        "errors_total",
        "torn_tails",
        "quarantined",
    ];
    for (id, value) in &delta.metrics {
        if let MetricValue::Counter(n) = value {
            if *n > 0 && interesting.iter().any(|p| id.name.contains(p)) {
                let _ = writeln!(out, "{id} +{n}");
            }
        }
    }

    let traced = delta.counter("fsmon_trace_records_total");
    if traced > 0 {
        let p99 = delta
            .histogram("fsmon_trace_e2e_ns")
            .map(|h| h.quantile(0.99))
            .unwrap_or(0);
        let _ = writeln!(
            out,
            "tracing   : {traced} sampled traces completed (e2e p99 {p99} ns)"
        );
    }

    let rate = expected as f64 / elapsed.as_secs_f64().max(1e-9);
    let _ = writeln!(
        out,
        "generated : {expected} events in {:.1?} ({rate:.0} ev/s)",
        elapsed
    );
    for (name, total, unique, lane_lost, lane_dup) in &per_lane {
        let _ = writeln!(
            out,
            "consumer  : {name}: {total} events ({unique} unique), lost {lane_lost}, \
             duplicated {lane_dup} -> {}",
            if *lane_lost == 0 && *lane_dup == 0 {
                "PASS"
            } else {
                "FAIL"
            }
        );
    }

    // The index invariant, per shard: the incrementally-folded state
    // (crashed and resumed mid-run) must equal a single linear fold of
    // that shard's full store, and so must the state a fresh service
    // resumes from the final snapshot — the whole-monitor-restart case.
    let (index_svcs, index_restarts) = index_thread.join().expect("index fold thread");
    let mut index_ok = true;
    let mut index_diverged = false;
    let mut index_applied = 0u64;
    let mut index_entries = 0usize;
    let mut index_rollups = 0usize;
    for (k, svc) in index_svcs.iter().enumerate() {
        let mut reference = fsmon_index::NamespaceIndex::new();
        loop {
            match stores[k].get_since(reference.applied_seq(), 4096) {
                Ok(chunk) if chunk.is_empty() => break,
                Ok(chunk) => {
                    for ev in &chunk {
                        reference.apply(ev);
                    }
                }
                Err(e) => {
                    let _ = writeln!(out, "error: shard {k} reference replay failed: {e}");
                    break;
                }
            }
        }
        let reloaded =
            fsmon_index::IndexService::open(index_snap_path(k), fsmon_index::PolicyEngine::empty());
        if svc.index() != &reference {
            index_diverged = true;
        }
        index_ok &= reference.applied_seq() >= expected_shard[k]
            && svc.index() == &reference
            && reloaded.index() == &reference;
        index_applied += svc.index().applied_seq();
        index_entries += svc.index().len();
        index_rollups += svc.index().rollup_count();
    }
    let _ = writeln!(
        out,
        "index     : applied seq {}, {} entries, {} rollups, {} supervised restarts, \
         replay fold {} -> {}",
        index_applied,
        index_entries,
        index_rollups,
        index_restarts,
        if index_diverged { "DIVERGED" } else { "equal" },
        if index_ok { "PASS" } else { "FAIL" }
    );

    // The filtered-lane invariant: what the pushdown subscriber
    // delivered (live class frames + store healing) must be exactly
    // the ids a linear replay of the store produces through the same
    // compiled predicate — no loss, no duplicates, and nothing outside
    // the predicate, despite the fault plan.
    let (filtered_ids, filtered_stats) = filtered_thread.join().expect("filtered drain thread");
    let compiled = filter_spec.compile();
    let mut subset_reference: Vec<(usize, u64)> = Vec::new();
    for (k, store) in stores.iter().enumerate() {
        let mut since = 0u64;
        loop {
            match store.get_since(since, 4096) {
                Ok(chunk) if chunk.is_empty() => break,
                Ok(chunk) => {
                    since = chunk.last().map(|e| e.id).unwrap_or(since);
                    subset_reference.extend(
                        chunk
                            .iter()
                            .filter(|e| compiled.matches_event(e))
                            .map(|e| (k, e.id)),
                    );
                }
                Err(e) => {
                    let _ = writeln!(
                        out,
                        "error: shard {k} filtered reference replay failed: {e}"
                    );
                    break;
                }
            }
        }
    }
    subset_reference.sort_unstable();
    let filtered_total = filtered_ids.len();
    let mut filtered_sorted = filtered_ids;
    filtered_sorted.sort_unstable();
    filtered_sorted.dedup();
    let filtered_dups = filtered_total - filtered_sorted.len();
    let filtered_ok = filtered_dups == 0 && filtered_sorted == subset_reference;
    let _ = writeln!(
        out,
        "filtered  : class {:?}: {} events ({} expected), {} dup, {} gaps healed ({} events), \
         {} frames lost -> {}",
        filter_spec.canonical(),
        filtered_total,
        subset_reference.len(),
        filtered_dups,
        filtered_stats.gaps_detected,
        filtered_stats.healed,
        filtered_stats.frames_lost,
        if filtered_ok { "PASS" } else { "FAIL" }
    );

    // The SLO verdict rides alongside the delivery verdict: a breach
    // is evidence (bundles on disk), not a delivery failure, so it
    // does not flip the exit code.
    if let Some(report) = health_report {
        let _ = writeln!(out, "--- health ---");
        let _ = writeln!(out, "{report}");
    }

    let pass = lost == 0 && duplicated == 0 && seq_ok && index_ok && filtered_ok;
    let _ = writeln!(
        out,
        "verdict   : lost {lost}, duplicated {duplicated} -> {}",
        if pass { "PASS" } else { "FAIL" }
    );
    let _ = std::fs::remove_dir_all(&dir);
    if pass {
        0
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Cli;

    fn run_str(args: &[&str]) -> (i32, String) {
        let cli = Cli::parse(args.iter().copied()).unwrap();
        let mut out = Vec::new();
        let code = run(cli.command, &mut out);
        (code, String::from_utf8(out).unwrap())
    }

    #[test]
    fn help_prints_usage() {
        let (code, out) = run_str(&["help"]);
        assert_eq!(code, 0);
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn watch_missing_dir_errors() {
        let (code, out) = run_str(&["watch", "/definitely/not/here"]);
        assert_eq!(code, 2);
        assert!(out.contains("not a directory"));
    }

    #[test]
    fn watch_observes_and_stores_then_replay_reads() {
        let dir = std::env::temp_dir().join(format!("fsmon-cli-watch-{}", std::process::id()));
        let store = std::env::temp_dir().join(format!("fsmon-cli-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&store);
        std::fs::create_dir_all(&dir).unwrap();

        // Generate activity from another thread while watch runs.
        let dir2 = dir.clone();
        let gen = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(300));
            std::fs::write(dir2.join("a.txt"), b"x").unwrap();
            std::thread::sleep(Duration::from_millis(300));
            std::fs::remove_file(dir2.join("a.txt")).unwrap();
        });
        let (code, out) = run_str(&[
            "watch",
            dir.to_str().unwrap(),
            "--store",
            store.to_str().unwrap(),
            "--duration",
            "2",
            "--interval-ms",
            "50",
        ]);
        gen.join().unwrap();
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("CREATE /a.txt"), "{out}");
        assert!(out.contains("DELETE /a.txt"), "{out}");

        let (code, out) = run_str(&["replay", "--store", store.to_str().unwrap()]);
        assert_eq!(code, 0);
        assert!(out.contains("CREATE /a.txt"), "{out}");
        assert!(out.contains("replayed 2 events"), "{out}");

        // Replay --since skips acknowledged history.
        let (_, out) = run_str(&["replay", "--store", store.to_str().unwrap(), "--since", "1"]);
        assert!(out.contains("replayed 1 events"), "{out}");

        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&store);
    }

    #[test]
    fn watch_kind_filter_limits_output() {
        let dir = std::env::temp_dir().join(format!("fsmon-cli-kinds-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let dir2 = dir.clone();
        let gen = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(200));
            std::fs::write(dir2.join("f"), b"1").unwrap();
            std::thread::sleep(Duration::from_millis(300));
            std::fs::remove_file(dir2.join("f")).unwrap();
        });
        let (code, out) = run_str(&[
            "watch",
            dir.to_str().unwrap(),
            "--kinds",
            "delete",
            "--duration",
            "1",
            "--interval-ms",
            "50",
        ]);
        gen.join().unwrap();
        assert_eq!(code, 0);
        assert!(out.contains("DELETE /f"), "{out}");
        assert!(!out.contains("CREATE /f"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_on_missing_store_fails_cleanly() {
        // FileStore::open creates the directory, so point at a path that
        // cannot be created.
        let (code, out) = run_str(&["replay", "--store", "/proc/definitely/not/writable"]);
        assert_eq!(code, 2);
        assert!(out.contains("error"));
    }

    #[test]
    fn demo_lustre_runs_quickly() {
        let (code, out) = run_str(&[
            "demo-lustre",
            "--mds",
            "1",
            "--seconds",
            "1",
            "--cache",
            "100",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("generated"), "{out}");
        assert!(out.contains("lost 0"), "{out}");
        assert!(out.contains("--- telemetry"), "{out}");
    }

    #[test]
    fn demo_lustre_filter_attaches_a_pushdown_subscriber() {
        let (code, out) = run_str(&[
            "demo-lustre",
            "--mds",
            "1",
            "--seconds",
            "1",
            "--cache",
            "100",
            "--filter",
            "path=/**;kinds=CREATE",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(
            out.contains("filtered  : class path=/**;kinds=CREATE;mdts=*:"),
            "{out}"
        );
    }

    #[test]
    fn demo_lustre_rejects_a_malformed_filter() {
        let Err(err) = Cli::parse(["demo-lustre", "--filter", "kinds=NOPE"].iter().copied()) else {
            panic!("malformed spec accepted");
        };
        assert!(err.0.contains("--filter"), "{}", err.0);
    }

    #[test]
    fn stats_live_run_reports_nonzero_pipeline_metrics() {
        let (code, out) = run_str(&["stats", "--seconds", "1", "--cache", "100"]);
        assert_eq!(code, 0, "{out}");
        // Every stage the acceptance criteria name shows activity.
        for line in [
            "collector :",
            "fid2path  :",
            "mq        :",
            "aggregator:",
            "store     :",
            "consumer  :",
        ] {
            assert!(out.contains(line), "missing {line:?} in {out}");
        }
        assert!(!out.contains("collector : 0 records"), "{out}");
        // The live run folds its store into a materialized index, so
        // the summary gains an index section with a real cursor.
        assert!(out.contains("index     : applied seq"), "{out}");
        assert!(!out.contains("index     : applied seq 0"), "{out}");
    }

    #[test]
    fn top_ticks_and_merges_the_fleet_view() {
        let (code, out) = run_str(&[
            "top",
            "--mds",
            "2",
            "--seconds",
            "1",
            "--cache",
            "100",
            "--interval-ms",
            "100",
            "--window",
            "2",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("tick "), "{out}");
        // Windowed per-MDT rates ride along with every tick.
        assert!(out.contains("window"), "{out}");
        // The sparkline dashboard line: glyphs scaled to the peak rate.
        assert!(out.contains("peak"), "{out}");
        assert!(
            out.chars().any(|c| "▁▂▃▄▅▆▇█".contains(c)),
            "no sparkline glyphs: {out}"
        );
        assert!(out.contains("mdt0"), "{out}");
        assert!(out.contains("mdt1"), "{out}");
        assert!(out.contains("--- fleet (2 sources"), "{out}");
        assert!(out.contains("fleet     :"), "{out}");
        // The subscribers section: both pushdown classes with shared
        // fan-out counters, and the per-subscriber delivery totals.
        assert!(out.contains("--- subscribers (2 classes)"), "{out}");
        assert!(out.contains("class     : path=/**;kinds=*;mdts=*"), "{out}");
        assert!(out.contains("kinds=CREATE"), "{out}");
        assert!(out.contains("subscriber:"), "{out}");
        // Tracing is on at 1%, so the final summary attributes latency.
        assert!(out.contains("latency   :"), "{out}");
        assert!(out.contains("exemplar  :"), "{out}");
    }

    #[test]
    fn chaos_basic_plan_passes_with_zero_loss() {
        let (code, out) = run_str(&["chaos", "--plan", "basic", "--seed", "7", "--seconds", "1"]);
        assert_eq!(code, 0, "{out}");
        assert!(
            out.contains("verdict   : lost 0, duplicated 0 -> PASS"),
            "{out}"
        );
        // The attached index lane crashed, resumed from its snapshot
        // cursor, and still folded to the full-replay state.
        assert!(out.contains("replay fold equal -> PASS"), "{out}");
        assert!(out.contains("fault/recovery counters"), "{out}");
        // The pushdown lane saw exactly its subset, exactly once.
        assert!(out.contains("filtered  : class"), "{out}");
        assert!(out.contains("-> PASS"), "{out}");
    }

    #[test]
    fn find_resumes_from_snapshot_cursor_over_a_real_store() {
        use fsmon_events::{EventKind, StandardEvent};
        let dir = std::env::temp_dir().join(format!("fsmon-cli-find-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let store = FileStore::open(&dir).unwrap();
            for (path, size) in [
                ("/data/a.h5", 4096),
                ("/data/b.h5", 128),
                ("/logs/x.log", 64),
            ] {
                store
                    .append(
                        &StandardEvent::new(EventKind::Create, "/r", path)
                            .with_size(size)
                            .with_owner(1001),
                    )
                    .unwrap();
            }
        }

        let (code, out) = run_str(&[
            "find",
            "--store",
            dir.to_str().unwrap(),
            "--pattern",
            "/data/*.h5",
            "--min-size",
            "1024",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(
            out.contains("resumed at seq 0, caught up to seq 3"),
            "{out}"
        );
        assert!(out.contains("/data/a.h5"), "{out}");
        assert!(!out.contains("/data/b.h5"), "too small: {out}");
        assert!(!out.contains("/logs/x.log"), "wrong pattern: {out}");
        assert!(out.contains("matched 1 of 3 entries"), "{out}");

        // A second query resumes from the saved snapshot cursor
        // instead of replaying the whole store.
        let (code, out) = run_str(&["find", "--store", dir.to_str().unwrap()]);
        assert_eq!(code, 0, "{out}");
        assert!(
            out.contains("resumed at seq 3, caught up to seq 3"),
            "{out}"
        );

        // Rollups answer du without touching the store's segments.
        let (code, out) = run_str(&["du", "--store", dir.to_str().unwrap()]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("/data"), "{out}");
        assert!(out.contains("total under /"), "{out}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn policy_reports_standard_rules_from_demo_run() {
        let (code, out) = run_str(&["policy", "--purge-age", "0", "--seconds", "1"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("indexing a fresh"), "{out}");
        for rule in ["purge-age", "hot-dirs", "orphans"] {
            assert!(out.contains(rule), "missing {rule}: {out}");
        }
        assert!(out.contains("candidates"), "{out}");
    }

    #[test]
    fn chaos_unknown_plan_errors() {
        let (code, out) = run_str(&["chaos", "--plan", "nope"]);
        assert_eq!(code, 2);
        assert!(out.contains("none, basic, storm"), "{out}");
    }

    #[test]
    fn health_queries_a_live_observer() {
        use std::sync::Arc;
        let registry = fsmon_telemetry::Registry::new();
        let local: fsmon_telemetry::health::SnapshotFn = {
            let registry = registry.clone();
            Arc::new(move || registry.snapshot())
        };
        let monitor = fsmon_telemetry::HealthMonitor::spawn(
            local,
            None,
            fsmon_telemetry::HealthOptions {
                tick: Duration::from_millis(20),
                http_addr: Some(":0".into()),
                ..fsmon_telemetry::HealthOptions::default()
            },
        )
        .unwrap();
        let addr = monitor.http_addr().unwrap().to_string();
        // Give the engine a tick so the report turns ready.
        std::thread::sleep(Duration::from_millis(120));
        let (code, out) = run_str(&["health", &addr]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("health: OK"), "{out}");
        monitor.stop();
    }

    #[test]
    fn health_unreachable_endpoint_errors() {
        let (code, out) = run_str(&["health", "127.0.0.1:1"]);
        assert_eq!(code, 2, "{out}");
        assert!(out.contains("error"), "{out}");
    }

    #[test]
    fn incidents_show_and_list_round_trip() {
        let dir = std::env::temp_dir().join(format!("fsmon-cli-incidents-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        fsmon_telemetry::root()
            .scope("cliincident")
            .counter("events_total")
            .add(3);
        let snap = fsmon_telemetry::global().snapshot();
        let bundle = fsmon_telemetry::IncidentBundle {
            reason: "slo:e2e_p99<50000000".into(),
            unix_ms: 1700000000000,
            config: "mds=2 cache=100".into(),
            slo: Some("e2e_p99<50000000;budget=0.05;fast=30s;slow=300s".into()),
            verdicts: vec![],
            exemplar: None,
            snapshots: vec![(1699999999000, snap)],
        };
        let path = dir.join("incident-1700000000000-1-slo-e2e.json");
        std::fs::write(&path, bundle.encode()).unwrap();

        let (code, out) = run_str(&["incidents", "show", path.to_str().unwrap()]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("reason    : slo:e2e_p99<50000000"), "{out}");
        assert!(out.contains("config    : mds=2 cache=100"), "{out}");
        assert!(out.contains("snapshots : 1 pre-incident ticks"), "{out}");

        // A truncated bundle fails the CRC check instead of printing
        // partial evidence.
        let torn = dir.join("incident-1700000000001-2-torn.json");
        let text = bundle.encode();
        let mut cut = text.len() / 2;
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        std::fs::write(&torn, &text[..cut]).unwrap();
        let (code, out) = run_str(&["incidents", "show", torn.to_str().unwrap()]);
        assert_eq!(code, 2, "{out}");
        assert!(out.contains("error"), "{out}");

        let (code, out) = run_str(&["incidents", "list", dir.to_str().unwrap()]);
        assert_eq!(code, 0, "{out}");
        assert!(
            out.contains("incident-1700000000000-1-slo-e2e.json"),
            "{out}"
        );
        assert!(out.contains("corrupt"), "{out}");
        assert!(out.contains("2 bundle(s)"), "{out}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_diff_reports_counter_deltas() {
        let c = fsmon_telemetry::root()
            .scope("clidiff")
            .counter("ticks_total");
        c.add(3);
        let dir = std::env::temp_dir();
        let a = dir.join(format!("fsmon-diff-a-{}.prom", std::process::id()));
        let b = dir.join(format!("fsmon-diff-b-{}.json", std::process::id()));
        std::fs::write(
            &a,
            fsmon_telemetry::export::render_prometheus(&fsmon_telemetry::global().snapshot()),
        )
        .unwrap();
        c.add(5);
        std::fs::write(
            &b,
            fsmon_telemetry::export::render_json(&fsmon_telemetry::global().snapshot()),
        )
        .unwrap();

        let (code, out) = run_str(&["stats", "--diff", a.to_str().unwrap(), b.to_str().unwrap()]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("fsmon_clidiff_ticks_total +5"), "{out}");

        // Machine formats render the delta snapshot itself.
        let (code, out) = run_str(&[
            "stats",
            "--diff",
            a.to_str().unwrap(),
            b.to_str().unwrap(),
            "--format",
            "json",
        ]);
        assert_eq!(code, 0, "{out}");
        let delta = fsmon_telemetry::export::parse_json(&out).unwrap();
        assert_eq!(delta.counter("fsmon_clidiff_ticks_total"), 5);

        let (code, _) = run_str(&["stats", "--diff", a.to_str().unwrap(), "/nope.prom"]);
        assert_eq!(code, 2);

        let _ = std::fs::remove_file(&a);
        let _ = std::fs::remove_file(&b);
    }

    #[test]
    fn stats_from_file_parses_both_dialects() {
        // Populate the process-wide registry, then export and re-read
        // through the command path.
        fsmon_telemetry::root()
            .scope("clitest")
            .counter("events_total")
            .add(7);
        let snap = fsmon_telemetry::global().snapshot();
        let dir = std::env::temp_dir();
        let prom_path = dir.join(format!("fsmon-stats-{}.prom", std::process::id()));
        let json_path = dir.join(format!("fsmon-stats-{}.json", std::process::id()));
        std::fs::write(
            &prom_path,
            fsmon_telemetry::export::render_prometheus(&snap),
        )
        .unwrap();
        std::fs::write(&json_path, fsmon_telemetry::export::render_json(&snap)).unwrap();

        let (code, out) = run_str(&[
            "stats",
            "--from",
            prom_path.to_str().unwrap(),
            "--format",
            "json",
        ]);
        assert_eq!(code, 0, "{out}");
        let reparsed = fsmon_telemetry::export::parse_json(&out).unwrap();
        assert_eq!(reparsed.counter("fsmon_clitest_events_total"), 7);

        let (code, out) = run_str(&["stats", "--from", json_path.to_str().unwrap()]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("--- telemetry"), "{out}");

        let (code, out) = run_str(&["stats", "--from", "/definitely/not/here.prom"]);
        assert_eq!(code, 2);
        assert!(out.contains("error"), "{out}");

        let _ = std::fs::remove_file(&prom_path);
        let _ = std::fs::remove_file(&json_path);
    }
}
