#![warn(missing_docs)]

//! # fsmon-cli
//!
//! The `fsmon` command-line tool — an `inotifywait`-style front end to
//! the FSMonitor library:
//!
//! ```text
//! fsmon watch <path> [--format inotify|kqueue|fsevents|filesystemwatcher]
//!                    [--kinds create,modify,delete,...]
//!                    [--prefix /sub] [--non-recursive]
//!                    [--store <dir>] [--duration <secs>]
//!                    [--interval-ms <ms>]
//! fsmon replay --store <dir> [--since <id>] [--max <n>]
//! fsmon demo-lustre [--mds <n>] [--seconds <s>] [--cache <n>]
//! ```
//!
//! The argument parser and command plumbing live here so they are unit
//! testable; `src/main.rs` is a thin shell.

pub mod args;
pub mod commands;

pub use args::{Cli, Command, ParseError};
