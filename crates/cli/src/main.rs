//! The `fsmon` binary: parse arguments, dispatch, exit.

use fsmon_cli::{args::USAGE, Cli};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let refs: Vec<&str> = args.iter().map(String::as_str).collect();
    match Cli::parse(refs) {
        Ok(cli) => {
            let code = fsmon_cli::commands::run(cli.command, &mut std::io::stdout());
            std::process::exit(code);
        }
        Err(e) => {
            eprintln!("fsmon: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    }
}
