//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is a cheaply clonable view into shared immutable storage
//! (an `Arc<[u8]>` plus a start/end window — cloning, slicing and
//! splitting are refcount bumps over the same storage, and [`Buf`]
//! consumption just advances the window). [`BytesMut`] is a growable
//! buffer that [`freeze`](BytesMut::freeze)s into `Bytes`.
//! Multi-byte integer accessors are big-endian, matching the real
//! crate's `get_u32`/`put_u32` family.

use std::sync::Arc;

/// Cheaply clonable immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wrap a static slice (no copy in the real crate; here one
    /// allocation at construction, still O(1) clone afterwards).
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes {
            data: Arc::from(s),
            start: 0,
            end: s.len(),
        }
    }

    /// Copy `s` into a fresh buffer.
    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(s),
            start: 0,
            end: s.len(),
        }
    }

    /// Remaining length.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when nothing remains.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The remaining bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// A zero-copy view of `range` of the remaining bytes, sharing the
    /// underlying storage (refcount bump, no allocation).
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.len(),
        };
        assert!(start <= end && end <= self.len());
        Bytes {
            data: self.data.clone(),
            start: self.start + start,
            end: self.start + end,
        }
    }

    /// Split off and return the first `at` bytes, advancing `self`.
    /// Both halves share the underlying storage (no copy).
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len());
        let head = Bytes {
            data: self.data.clone(),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Copy the remaining bytes out.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Ensure room for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional)
    }

    /// Append a whole slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s)
    }

    /// Clear the buffer.
    pub fn clear(&mut self) {
        self.data.clear()
    }

    /// Convert to an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Freeze the current contents into [`Bytes`] and clear `self`,
    /// keeping the allocation for reuse. One copy into shared storage
    /// (the shim's `Bytes` owns an `Arc<[u8]>`); the win over
    /// [`freeze`](BytesMut::freeze) is that the writer keeps its grown
    /// capacity across iterations instead of reallocating per frame.
    pub fn split_frozen(&mut self) -> Bytes {
        let frozen = Bytes::copy_from_slice(&self.data);
        self.data.clear();
        frozen
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        Bytes::copy_from_slice(&self.data).fmt(f)
    }
}

/// Read-side cursor: big-endian accessors that consume from the front.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Read a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(raw)
    }

    /// Read a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(raw)
    }

    /// Read a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }

    /// Fill `dst`, consuming its length.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of Bytes");
        self.start += n;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Write-side cursor: big-endian appenders.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, s: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s)
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read_roundtrip() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u16(0xBEEF);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(42);
        buf.put_slice(b"tail");
        let mut frozen = buf.freeze();
        assert_eq!(frozen.remaining(), 1 + 2 + 4 + 8 + 4);
        assert_eq!(frozen.get_u8(), 7);
        assert_eq!(frozen.get_u16(), 0xBEEF);
        assert_eq!(frozen.get_u32(), 0xDEAD_BEEF);
        assert_eq!(frozen.get_u64(), 42);
        let mut tail = [0u8; 4];
        frozen.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"tail");
        assert!(frozen.is_empty());
    }

    #[test]
    fn clone_is_independent_cursor() {
        let mut a = Bytes::copy_from_slice(&[1, 2, 3, 4]);
        let b = a.clone();
        a.advance(2);
        assert_eq!(a.as_slice(), &[3, 4]);
        assert_eq!(b.as_slice(), &[1, 2, 3, 4]);
    }

    #[test]
    fn equality_ignores_consumed_prefix() {
        let mut a = Bytes::copy_from_slice(&[9, 1, 2]);
        a.advance(1);
        assert_eq!(a, Bytes::copy_from_slice(&[1, 2]));
    }

    #[test]
    fn split_to_takes_prefix() {
        let mut rest = Bytes::copy_from_slice(b"headtail");
        let head = rest.split_to(4);
        assert_eq!(head.as_slice(), b"head");
        assert_eq!(rest.as_slice(), b"tail");
    }

    #[test]
    fn slice_and_split_share_storage() {
        let whole = Bytes::copy_from_slice(b"abcdefgh");
        let mid = whole.slice(2..6);
        assert_eq!(mid.as_slice(), b"cdef");
        assert!(Arc::ptr_eq(&whole.data, &mid.data), "slice must not copy");
        let mut rest = whole.clone();
        let head = rest.split_to(3);
        assert!(Arc::ptr_eq(&rest.data, &head.data), "split must not copy");
        let inner = mid.slice(1..3);
        assert_eq!(inner.as_slice(), b"de");
        assert!(Arc::ptr_eq(&whole.data, &inner.data));
    }

    #[test]
    fn split_frozen_clears_but_keeps_capacity() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_slice(b"first frame");
        let cap = buf.data.capacity();
        let frozen = buf.split_frozen();
        assert_eq!(frozen.as_slice(), b"first frame");
        assert!(buf.is_empty());
        assert_eq!(buf.data.capacity(), cap, "allocation must be retained");
        buf.put_slice(b"second");
        assert_eq!(buf.split_frozen().as_slice(), b"second");
        assert_eq!(frozen.as_slice(), b"first frame", "earlier frame unaffected");
    }
}
