//! Offline stand-in for the `criterion` crate.
//!
//! Provides the group/bench API subset the workspace's micro-benchmarks
//! use, with a simple measurement loop: warm-up for the configured
//! time, then run timed batches until the measurement window closes and
//! report per-iteration mean and median-of-batches. No statistical
//! regression machinery — the numbers are honest wall-clock medians,
//! printed one line per benchmark:
//!
//! ```text
//! lru/hit/200             time: 13 ns/iter (median 12 ns, 154201924 iters)
//! ```

use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimizer from deleting the
/// benchmarked expression.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` setup cost is amortized. The shim runs one
/// setup per measured invocation regardless, so the variants only
/// document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One invocation per batch.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A parameterized benchmark name, rendered `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// A bare name with no parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> BenchmarkId {
        BenchmarkId { id }
    }
}

/// The timing context passed to each benchmark closure.
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    /// (total_ns, iters) per measured batch.
    batches: Vec<(u64, u64)>,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: discover a batch size that takes ~1ms, then spin
        // until the warm-up window closes.
        let mut batch: u64 = 1;
        let warm_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_end {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt < Duration::from_millis(1) && batch < 1 << 40 {
                batch *= 2;
            }
        }
        let end = Instant::now() + self.measure;
        while Instant::now() < end {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.batches.push((t0.elapsed().as_nanos() as u64, batch));
        }
        if self.batches.is_empty() {
            // Degenerate windows (zero measure time): record one batch.
            let t0 = Instant::now();
            black_box(routine());
            self.batches.push((t0.elapsed().as_nanos() as u64, 1));
        }
    }

    /// Time `routine` over fresh state from `setup` each invocation;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_end {
            let input = setup();
            black_box(routine(input));
        }
        let end = Instant::now() + self.measure;
        while Instant::now() < end {
            let input = setup();
            let t0 = Instant::now();
            let out = routine(input);
            self.batches.push((t0.elapsed().as_nanos() as u64, 1));
            black_box(out);
        }
        if self.batches.is_empty() {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.batches.push((t0.elapsed().as_nanos() as u64, 1));
        }
    }

    fn report(&self, label: &str, throughput: Option<Throughput>) {
        let total_ns: u64 = self.batches.iter().map(|(ns, _)| ns).sum();
        let total_iters: u64 = self.batches.iter().map(|(_, n)| n).sum();
        let mean = total_ns as f64 / total_iters.max(1) as f64;
        let mut per_iter: Vec<f64> = self
            .batches
            .iter()
            .map(|&(ns, n)| ns as f64 / n.max(1) as f64)
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        let rate = throughput.map(|t| match t {
            Throughput::Elements(n) => {
                format!(", {:.1} Melem/s", n as f64 / mean * 1e3 / 1e6)
            }
            Throughput::Bytes(n) => {
                format!(", {:.1} MiB/s", n as f64 / mean * 1e9 / (1024.0 * 1024.0))
            }
        });
        println!(
            "{label:<40} time: {mean:>10.1} ns/iter (median {median:.1} ns, {total_iters} iters{})",
            rate.unwrap_or_default()
        );
    }
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    crit: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples (accepted for API compatibility; the shim
    /// sizes batches by time, not count).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// How long to measure each benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.crit.measure = d;
        self
    }

    /// How long to warm up each benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.crit.warm_up = d;
        self
    }

    /// Annotate subsequent benchmarks with a throughput rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = if id.id.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, id.id)
        };
        let mut b = Bencher {
            warm_up: self.crit.warm_up,
            measure: self.crit.measure,
            batches: Vec::new(),
        };
        f(&mut b);
        b.report(&label, self.throughput);
        self
    }

    /// Run one parameterized benchmark.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    warm_up: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            warm_up: Duration::from_millis(300),
            measure: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            crit: self,
            throughput: None,
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name.to_string())
            .bench_function(BenchmarkId { id: String::new() }, f);
        self
    }
}

/// Define a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
