//! Offline stand-in for the `crossbeam` crate.
//!
//! Implements the `crossbeam::channel` subset the workspace uses:
//! bounded/unbounded MPMC channels whose `Sender` *and* `Receiver`
//! clone, with `send` / `try_send` / `recv` / `try_recv` /
//! `recv_timeout` and disconnect detection. Built on a
//! `Mutex<VecDeque>` + two condvars; correctness over raw throughput
//! (the real crate is lock-free, this one is honest about being a
//! vendored fallback).

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Error for [`Sender::send`]: every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error for [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// Every receiver is gone.
        Disconnected(T),
    }

    /// Error for [`Receiver::recv`]: channel empty and every sender gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error for [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and every sender gone.
        Disconnected,
    }

    /// Error for [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the deadline.
        Timeout,
        /// Channel empty and every sender gone.
        Disconnected,
    }

    struct Inner<T> {
        queue: Mutex<State<T>>,
        /// Signalled when a message is pushed or all senders drop.
        not_empty: Condvar,
        /// Signalled when a message is popped or all receivers drop.
        not_full: Condvar,
        cap: Option<usize>,
    }

    struct State<T> {
        buf: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// The sending half; clonable.
    pub struct Sender<T>(Arc<Inner<T>>);

    /// The receiving half; clonable (MPMC: clones *share* the queue).
    pub struct Receiver<T>(Arc<Inner<T>>);

    /// A channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        new_channel(Some(cap))
    }

    /// A channel with no capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_channel(None)
    }

    fn new_channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(State {
                buf: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        });
        (Sender(inner.clone()), Receiver(inner))
    }

    impl<T> Inner<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.queue.lock().unwrap_or_else(|e| e.into_inner())
        }

        fn is_full(&self, st: &State<T>) -> bool {
            self.cap.is_some_and(|c| st.buf.len() >= c)
        }
    }

    impl<T> Sender<T> {
        /// Block until the message is enqueued (or all receivers gone).
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.0.lock();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                if !self.0.is_full(&st) {
                    st.buf.push_back(msg);
                    self.0.not_empty.notify_one();
                    return Ok(());
                }
                st = self
                    .0
                    .not_full
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Enqueue without blocking.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut st = self.0.lock();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if self.0.is_full(&st) {
                return Err(TrySendError::Full(msg));
            }
            st.buf.push_back(msg);
            self.0.not_empty.notify_one();
            Ok(())
        }

        /// Messages currently in flight.
        pub fn len(&self) -> usize {
            self.0.lock().buf.len()
        }

        /// True when no message is in flight.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives (or all senders gone and empty).
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.lock();
            loop {
                if let Some(msg) = st.buf.pop_front() {
                    self.0.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .0
                    .not_empty
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeue without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.0.lock();
            if let Some(msg) = st.buf.pop_front() {
                self.0.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Block up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.0.lock();
            loop {
                if let Some(msg) = st.buf.pop_front() {
                    self.0.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (g, _) = self
                    .0
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                st = g;
            }
        }

        /// Messages currently in flight.
        pub fn len(&self) -> usize {
            self.0.lock().buf.len()
        }

        /// True when no message is in flight.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Drain whatever is available right now.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.try_recv().ok())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.0.lock().senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.0.lock().receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.lock();
            st.senders -= 1;
            if st.senders == 0 {
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.0.lock();
            st.receivers -= 1;
            if st.receivers == 0 {
                self.0.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bounded_backpressure_and_disconnect() {
            let (tx, rx) = bounded(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
            assert_eq!(rx.try_recv(), Ok(1));
            drop(rx);
            assert!(matches!(tx.try_send(4), Err(TrySendError::Disconnected(4))));
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = bounded::<u32>(8);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(7).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn mpmc_under_threads() {
            let (tx, rx) = bounded(4);
            let producers: Vec<_> = (0..4)
                .map(|p| {
                    let tx = tx.clone();
                    std::thread::spawn(move || {
                        for i in 0..100u64 {
                            tx.send(p * 1000 + i).unwrap();
                        }
                    })
                })
                .collect();
            drop(tx);
            let consumers: Vec<_> = (0..2)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut n = 0u64;
                        while rx.recv().is_ok() {
                            n += 1;
                        }
                        n
                    })
                })
                .collect();
            drop(rx);
            for p in producers {
                p.join().unwrap();
            }
            let total: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
            assert_eq!(total, 400);
        }
    }
}
