//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors the small API subset it actually uses: [`Mutex`] and
//! [`RwLock`] with parking_lot's non-poisoning `lock()` / `read()` /
//! `write()` signatures, implemented over `std::sync`. A panicked
//! holder poisons the std lock; we recover the inner guard instead of
//! propagating, which matches parking_lot's observable behavior.

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex with parking_lot's `lock()` signature.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Mutex").field(&&*self.lock()).finish()
    }
}

/// Non-poisoning reader-writer lock with parking_lot's signatures.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value` in an rwlock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("RwLock").field(&&*self.read()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1; // must not panic
        assert_eq!(*m.lock(), 1);
    }
}
