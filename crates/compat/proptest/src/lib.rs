//! Offline stand-in for the `proptest` crate.
//!
//! Generate-only property testing: strategies produce random values,
//! the `proptest!` macro runs each property over N cases, and a failing
//! case prints its inputs before propagating the panic. No shrinking —
//! failures report the raw generated case. The strategy vocabulary
//! covers what the workspace's model tests use: integer ranges,
//! `any::<T>()`, tuples, `prop_map`, `prop_oneof!`, `prop_compose!`,
//! `prop::collection::vec`, `prop::sample::{select, Index}`,
//! `prop::option::of`, and regex-lite string patterns such as
//! `"/[a-z]{1,8}(/[a-z]{1,8}){0,2}"`.

pub mod test_runner {
    //! Deterministic RNG and case-loop plumbing used by the macros.

    /// SplitMix64: deterministic per seed, good enough to explore the
    //  state spaces these model tests cover.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case `case` of the run seeded by `seed`.
        pub fn new(seed: u64, case: u64) -> TestRng {
            TestRng {
                state: seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Per-property configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases to run.
        pub cases: u32,
    }

    impl Config {
        /// Run `cases` cases per property.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// Base seed for a run: `PROPTEST_SEED` env var or a fixed default
    /// so CI is reproducible.
    pub fn base_seed() -> u64 {
        std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5EED_CAFE_F00D_0001)
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Discard values failing `pred` (regenerates, up to a retry
        /// cap; the label mirrors proptest's API).
        fn prop_filter<F>(self, _whence: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, pred }
        }

        /// Derive a dependent strategy from each generated value
        /// (e.g. a length first, then a vector of that length).
        fn prop_flat_map<T, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            T: Strategy,
            F: Fn(Self::Value) -> T,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erase the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 consecutive candidates");
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Choose uniformly among `options`.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// Wrap a generation closure (used by `prop_compose!`).
    pub struct Compose<F> {
        f: F,
    }

    impl<F> Compose<F> {
        /// Strategy from a closure.
        pub fn new(f: F) -> Compose<F> {
            Compose { f }
        }
    }

    impl<V, F: Fn(&mut TestRng) -> V> Strategy for Compose<F> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (self.f)(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy over empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "strategy over empty range");
                    let span = (hi - lo + 1) as u64;
                    (lo + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// Regex-lite string strategy: literals, `[...]` classes (with
    /// ranges and a trailing literal `-`), `(...)` groups, `|`
    /// alternation, and `{m}` / `{m,n}` / `?` / `*` / `+` quantifiers
    /// (`*`/`+` capped at 8 repeats).
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            let chars: Vec<char> = self.chars().collect();
            let mut pos = 0;
            gen_alternation(&chars, &mut pos, rng, &mut out, None);
            out
        }
    }

    impl Strategy for String {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            self.as_str().generate(rng)
        }
    }

    /// Generate one branch of `a|b|...` until `stop` (a closing paren)
    /// or end of pattern.
    fn gen_alternation(
        pat: &[char],
        pos: &mut usize,
        rng: &mut TestRng,
        out: &mut String,
        stop: Option<char>,
    ) {
        // Collect branch spans first so the choice is uniform.
        let start = *pos;
        let mut branches: Vec<(usize, usize)> = Vec::new();
        let mut depth = 0usize;
        let mut branch_start = start;
        let mut i = start;
        while i < pat.len() {
            match pat[i] {
                '(' => depth += 1,
                ')' => {
                    if depth == 0 && stop == Some(')') {
                        break;
                    }
                    depth -= 1;
                }
                '|' if depth == 0 => {
                    branches.push((branch_start, i));
                    branch_start = i + 1;
                }
                '\\' => i += 1,
                _ => {}
            }
            i += 1;
        }
        branches.push((branch_start, i));
        let (bs, be) = branches[rng.below(branches.len() as u64) as usize];
        let mut bpos = bs;
        gen_sequence(pat, &mut bpos, be, rng, out);
        *pos = i;
    }

    /// Generate a plain sequence of quantified atoms in `[*pos, end)`.
    fn gen_sequence(pat: &[char], pos: &mut usize, end: usize, rng: &mut TestRng, out: &mut String) {
        while *pos < end {
            let atom_start = *pos;
            // Parse one atom into a reusable generator closure.
            enum Atom {
                Lit(char),
                Class(Vec<char>),
                Group(usize, usize),
            }
            let atom = match pat[*pos] {
                '[' => {
                    let mut set = Vec::new();
                    *pos += 1;
                    while *pos < end && pat[*pos] != ']' {
                        if pat[*pos] == '\\' {
                            *pos += 1;
                            set.push(pat[*pos]);
                            *pos += 1;
                        } else if *pos + 2 < end && pat[*pos + 1] == '-' && pat[*pos + 2] != ']' {
                            let (lo, hi) = (pat[*pos], pat[*pos + 2]);
                            for c in lo..=hi {
                                set.push(c);
                            }
                            *pos += 3;
                        } else {
                            set.push(pat[*pos]);
                            *pos += 1;
                        }
                    }
                    *pos += 1; // ']'
                    Atom::Class(set)
                }
                '(' => {
                    let gstart = *pos + 1;
                    let mut depth = 1usize;
                    let mut j = gstart;
                    while j < end && depth > 0 {
                        match pat[j] {
                            '(' => depth += 1,
                            ')' => depth -= 1,
                            '\\' => j += 1,
                            _ => {}
                        }
                        j += 1;
                    }
                    *pos = j; // past ')'
                    Atom::Group(gstart, j - 1)
                }
                '\\' => {
                    *pos += 1;
                    let c = pat[*pos];
                    *pos += 1;
                    Atom::Lit(c)
                }
                '.' => {
                    *pos += 1;
                    Atom::Class(('a'..='z').chain('0'..='9').collect())
                }
                c => {
                    *pos += 1;
                    Atom::Lit(c)
                }
            };
            let _ = atom_start;
            // Parse an optional quantifier.
            let (min, max) = if *pos < end {
                match pat[*pos] {
                    '{' => {
                        let mut j = *pos + 1;
                        let mut first = String::new();
                        while pat[j].is_ascii_digit() {
                            first.push(pat[j]);
                            j += 1;
                        }
                        let m: u64 = first.parse().unwrap();
                        let n = if pat[j] == ',' {
                            j += 1;
                            let mut second = String::new();
                            while pat[j].is_ascii_digit() {
                                second.push(pat[j]);
                                j += 1;
                            }
                            second.parse().unwrap()
                        } else {
                            m
                        };
                        *pos = j + 1; // past '}'
                        (m, n)
                    }
                    '?' => {
                        *pos += 1;
                        (0, 1)
                    }
                    '*' => {
                        *pos += 1;
                        (0, 8)
                    }
                    '+' => {
                        *pos += 1;
                        (1, 8)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            let reps = min + rng.below(max - min + 1);
            for _ in 0..reps {
                match &atom {
                    Atom::Lit(c) => out.push(*c),
                    Atom::Class(set) => {
                        assert!(!set.is_empty(), "empty character class");
                        out.push(set[rng.below(set.len() as u64) as usize]);
                    }
                    Atom::Group(gs, ge) => {
                        let mut gpos = *gs;
                        let mut sub = String::new();
                        // Alternation inside the group.
                        let slice = &pat[..*ge];
                        gen_alternation(slice, &mut gpos, rng, &mut sub, None);
                        out.push_str(&sub);
                    }
                }
            }
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical uniform strategy.
    pub trait ArbitraryValue {
        /// Draw one uniform value.
        fn draw(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn draw(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryValue for bool {
        fn draw(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl ArbitraryValue for char {
        fn draw(rng: &mut TestRng) -> char {
            // Printable ASCII keeps generated paths readable.
            (b' ' + rng.below(95) as u8) as char
        }
    }

    /// The strategy behind `any::<T>()`.
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: ArbitraryValue> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::draw(rng)
        }
    }

    /// Uniform strategy for `T`.
    pub fn any<T: ArbitraryValue>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    //! `prop::collection::*`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Accepted size bounds for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive.
        max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n + 1 }
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        let size = size.into();
        assert!(size.min < size.max, "vec strategy over empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let n = self.size.min + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for hash sets; generates up to the requested size,
    /// fewer when the element strategy collides.
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `HashSet` of roughly `size` elements drawn from `element`.
    pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S::Value: std::hash::Hash + Eq,
    {
        let size = size.into();
        assert!(size.min < size.max, "hash_set strategy over empty size range");
        HashSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: std::hash::Hash + Eq,
    {
        type Value = std::collections::HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> std::collections::HashSet<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let want = self.size.min + rng.below(span) as usize;
            let mut out = std::collections::HashSet::new();
            // Bounded retries: collisions may keep us under `want`.
            for _ in 0..want * 4 {
                if out.len() >= want {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

pub mod sample {
    //! `prop::sample::*`.

    use crate::arbitrary::ArbitraryValue;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A deferred index into a collection of then-unknown length.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Resolve against a collection of `len` elements (`len > 0`).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl ArbitraryValue for Index {
        fn draw(rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }

    /// Strategy cloning a uniformly chosen element of `options`.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Uniform choice from `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select over empty options");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

pub mod option {
    //! `prop::option::*`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `None` a quarter of the time.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Option` of values from `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod prelude {
    //! What `use proptest::prelude::*` brings in.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest};

    pub mod prop {
        //! The `prop::` module path used inside strategies.
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Assert inside a property (no shrinking: plain assert with context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Build a named strategy function from component strategies.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($fnarg:tt)*)(
        $($arg:ident in $strat:expr),+ $(,)?
    ) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($fnarg)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Compose::new(
                move |rng: &mut $crate::test_runner::TestRng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut *rng);)+
                    $body
                },
            )
        }
    };
}

/// Run each contained `#[test]` function over many generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let seed = $crate::test_runner::base_seed();
            for case in 0..config.cases as u64 {
                let mut rng = $crate::test_runner::TestRng::new(seed, case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let __case_desc = {
                    let mut s = String::new();
                    $(
                        s.push_str(concat!("  ", stringify!($arg), " = "));
                        s.push_str(&format!("{:?}\n", &$arg));
                    )+
                    s
                };
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || { $body })
                );
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest case {case} of {} failed (seed {seed}):\n{__case_desc}",
                        config.cases,
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_shapes() {
        let mut rng = crate::test_runner::TestRng::new(1, 0);
        for case in 0..500u64 {
            rng = crate::test_runner::TestRng::new(1, case);
            let s = Strategy::generate(&"/[a-z]{1,8}(/[a-z]{1,8}){0,2}", &mut rng);
            assert!(s.starts_with('/'), "{s}");
            let comps: Vec<&str> = s[1..].split('/').collect();
            assert!((1..=3).contains(&comps.len()), "{s}");
            for c in comps {
                assert!((1..=8).contains(&c.len()), "{s}");
                assert!(c.chars().all(|ch| ch.is_ascii_lowercase()), "{s}");
            }
        }
    }

    #[test]
    fn class_with_trailing_dash_and_dot() {
        for case in 0..300u64 {
            let mut rng = crate::test_runner::TestRng::new(2, case);
            let s = Strategy::generate(&"[a-z0-9._-]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.len()), "{s}");
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "._-".contains(c)),
                "{s}"
            );
        }
    }

    #[test]
    fn alternation_picks_each_branch() {
        let mut saw = std::collections::HashSet::new();
        for case in 0..64u64 {
            let mut rng = crate::test_runner::TestRng::new(3, case);
            saw.insert(Strategy::generate(&"(abc|xyz)", &mut rng));
        }
        assert_eq!(
            saw,
            ["abc".to_string(), "xyz".to_string()].into_iter().collect()
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_pipeline_works(
            v in prop::collection::vec(0u32..100, 1..20),
            flag in any::<bool>(),
            pick in any::<prop::sample::Index>(),
        ) {
            prop_assert!(!v.is_empty());
            prop_assert!(v[pick.index(v.len())] < 100);
            prop_assert_eq!(flag || !flag, true);
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![
            (0usize..4).prop_map(|n| n * 2),
            (10usize..14).prop_map(|n| n * 3),
        ]) {
            prop_assert!(x % 2 == 0 || x % 3 == 0);
        }
    }
}
