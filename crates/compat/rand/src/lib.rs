//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset the workload generators use: a seedable
//! [`rngs::StdRng`] (xoshiro256** seeded via SplitMix64 — not the real
//! crate's ChaCha12, so streams differ from upstream `rand`, but they
//! are deterministic per seed, which is all the workloads rely on) and
//! a [`Rng`] trait with `gen`, `gen_range`, and `gen_bool`.

/// Range bounds accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value in the range using `draw` as the entropy source.
    fn sample(self, draw: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, draw: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let v = ((draw)() as u128) % span;
                (self.start as u128).wrapping_add(v) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, draw: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                let v = ((draw)() as u128) % span;
                (start as u128).wrapping_add(v) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, draw: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = ((draw)() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample(self, draw: &mut dyn FnMut() -> u64) -> f32 {
        assert!(self.start < self.end, "gen_range on empty range");
        let unit = ((draw)() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

/// Values producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `draw`.
    fn draw(draw: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! int_standard {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw(draw: &mut dyn FnMut() -> u64) -> $t {
                (draw)() as $t
            }
        }
    )*};
}

int_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw(draw: &mut dyn FnMut() -> u64) -> bool {
        (draw)() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(draw: &mut dyn FnMut() -> u64) -> f64 {
        ((draw)() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The `rand::Rng` subset the workspace uses.
pub trait Rng {
    /// The core 64-bit draw.
    fn next_u64(&mut self) -> u64;

    /// A uniform value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        let mut f = || self.next_u64();
        T::draw(&mut f)
    }

    /// A uniform value in `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        let mut f = || self.next_u64();
        range.sample(&mut f)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

/// The `rand::SeedableRng` subset the workspace uses.
pub trait SeedableRng: Sized {
    /// Deterministic RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete RNGs.

    use super::{Rng, SeedableRng};

    /// xoshiro256** — small, fast, and plenty for workload synthesis.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the seed, per Vigna's reference.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A `StdRng` seeded from the OS clock (stand-in for `thread_rng`).
pub fn thread_rng() -> rngs::StdRng {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    rngs::StdRng::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn f64_unit_interval_covers() {
        let mut rng = StdRng::seed_from_u64(11);
        let (mut lo, mut hi) = (false, false);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            lo |= v < 0.1;
            hi |= v > 0.9;
        }
        assert!(lo && hi, "unit draws should span the interval");
    }
}
