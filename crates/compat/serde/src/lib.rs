//! Offline stand-in for `serde`.
//!
//! Nothing in the workspace serializes through serde (no `serde_json`,
//! no bincode — wire encoding and JSON rendering are hand-rolled), but
//! many types carry `#[derive(Serialize, Deserialize)]`. This shim
//! keeps those derives compiling offline: the traits are blanket
//! markers and the derives (from the sibling `serde_derive` shim)
//! expand to nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
