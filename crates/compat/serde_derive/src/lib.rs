//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its event and
//! record types but never feeds them to a serde serializer (the wire
//! format and JSON rendering are hand-rolled). With crates.io
//! unreachable, these derives expand to nothing: the names stay
//! derivable, the marker traits in the sibling `serde` shim stay
//! blanket-implemented, and no code is generated.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
