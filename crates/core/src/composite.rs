//! Monitoring several storage systems through one FSMonitor.
//!
//! Big-data workflows span storage tiers ("data flows from instruments
//! to processing resources and archival storage", paper §I) — a
//! [`CompositeDsi`] merges any number of DSIs into one event stream so
//! one monitor, one subscription API, and one event store cover the
//! whole pipeline. Each member keeps its own watch root; events are
//! re-rooted under a per-member mount label.

use crate::dsi::{DsiError, RawEvent, StorageInterface};
use fsmon_events::{MonitorSource, StandardEvent};

struct Member {
    label: String,
    dsi: Box<dyn StorageInterface>,
}

/// A DSI that merges other DSIs.
pub struct CompositeDsi {
    members: Vec<Member>,
    watch_root: String,
    next: usize,
}

impl CompositeDsi {
    /// An empty composite with the given umbrella root (events are
    /// reported as `<root>/<label><member path>`).
    pub fn new(watch_root: impl Into<String>) -> CompositeDsi {
        CompositeDsi {
            members: Vec::new(),
            watch_root: watch_root.into(),
            next: 0,
        }
    }

    /// Add a member DSI under a mount `label`.
    #[must_use]
    pub fn with(
        mut self,
        label: impl Into<String>,
        dsi: Box<dyn StorageInterface>,
    ) -> CompositeDsi {
        self.members.push(Member {
            label: label.into(),
            dsi,
        });
        self
    }

    /// Number of member DSIs.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the composite has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    fn reroot(&self, label: &str, mut ev: StandardEvent) -> StandardEvent {
        ev.path = format!("/{label}{}", ev.path);
        if let Some(old) = ev.old_path.take() {
            ev.old_path = Some(format!("/{label}{old}"));
        }
        ev.watch_root = self.watch_root.clone();
        ev
    }
}

impl StorageInterface for CompositeDsi {
    fn name(&self) -> &'static str {
        "composite"
    }

    fn source(&self) -> MonitorSource {
        MonitorSource::Synthetic
    }

    fn watch_root(&self) -> &str {
        &self.watch_root
    }

    fn start(&mut self) -> Result<(), DsiError> {
        for m in &mut self.members {
            m.dsi.start()?;
        }
        Ok(())
    }

    fn poll(&mut self, max: usize) -> Vec<RawEvent> {
        if self.members.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        let n = self.members.len();
        // Round-robin across members so no single busy tier starves the
        // others.
        for k in 0..n {
            if out.len() >= max {
                break;
            }
            let idx = (self.next + k) % n;
            let budget = (max - out.len()).div_ceil(n - k);
            // Each member's raw events are standardized against its own
            // root first, then re-rooted under the member label.
            let label = self.members[idx].label.clone();
            let member_root = self.members[idx].dsi.watch_root().to_string();
            let raw = self.members[idx].dsi.poll(budget);
            let mut resolver = crate::resolution::ResolutionLayer::new(member_root);
            for r in raw {
                let mut ev = resolver.resolve(r);
                ev.id = 0; // the umbrella resolution layer re-assigns ids
                out.push(RawEvent::Standard(self.reroot(&label, ev)));
            }
        }
        self.next = (self.next + 1) % n;
        out
    }

    fn stop(&mut self) {
        for m in &mut self.members {
            m.dsi.stop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MonitorConfig;
    use crate::dsi::local::{SimFsEventsDsi, SimInotifyDsi};
    use crate::filter::EventFilter;
    use crate::interface::FsMonitor;
    use fsmon_events::EventKind;
    use fsmon_localfs::{FsEventsSim, InotifySim, SimFs};

    #[test]
    fn merges_two_systems_under_labels() {
        let scratch = SimFs::new();
        let archive = SimFs::new();
        let ino = InotifySim::attach(&scratch, 4096, 1 << 16);
        let fse = FsEventsSim::attach(&archive, 0, 1 << 16);
        let composite = CompositeDsi::new("/site")
            .with(
                "scratch",
                Box::new(SimInotifyDsi::recursive(ino, scratch.clone(), "/")),
            )
            .with("archive", Box::new(SimFsEventsDsi::new(fse, "/")));
        assert_eq!(composite.len(), 2);
        let mut monitor = FsMonitor::new(Box::new(composite), MonitorConfig::without_store());
        let all = monitor.subscribe(EventFilter::all());
        let archive_only = monitor.subscribe(EventFilter::subtree("/archive"));

        scratch.create("/run-1.dat");
        archive.create("/run-0.tar");
        monitor.pump_until_idle(16);

        let events = all.drain();
        let paths: Vec<&str> = events.iter().map(|e| e.path.as_str()).collect();
        assert!(paths.contains(&"/scratch/run-1.dat"), "{paths:?}");
        assert!(paths.contains(&"/archive/run-0.tar"), "{paths:?}");
        assert!(events.iter().all(|e| e.watch_root == "/site"));

        let archived = archive_only.drain();
        assert_eq!(archived.len(), 1);
        assert_eq!(archived[0].path, "/archive/run-0.tar");
    }

    #[test]
    fn rename_old_paths_rerooted_too() {
        let fs = SimFs::new();
        let ino = InotifySim::attach(&fs, 4096, 1 << 16);
        let composite = CompositeDsi::new("/site").with(
            "tier0",
            Box::new(SimInotifyDsi::recursive(ino, fs.clone(), "/")),
        );
        let mut monitor = FsMonitor::new(Box::new(composite), MonitorConfig::without_store());
        let sub = monitor.subscribe(EventFilter::all());
        fs.create("/a");
        fs.rename("/a", "/b");
        monitor.pump_until_idle(16);
        let events = sub.drain();
        let to = events
            .iter()
            .find(|e| e.kind == EventKind::MovedTo)
            .unwrap();
        assert_eq!(to.path, "/tier0/b");
        assert_eq!(to.old_path.as_deref(), Some("/tier0/a"));
    }

    #[test]
    fn empty_composite_is_inert() {
        let mut c = CompositeDsi::new("/site");
        assert!(c.is_empty());
        assert!(c.start().is_ok());
        assert!(c.poll(100).is_empty());
    }

    #[test]
    fn start_failure_propagates() {
        use crate::dsi::local::PollingDsi;
        let mut c = CompositeDsi::new("/site")
            .with("bad", Box::new(PollingDsi::new("/definitely/not/a/dir")));
        assert!(c.start().is_err());
    }
}
