//! Monitor configuration.

use std::path::PathBuf;
use std::time::Duration;

/// Where the interface layer persists events for fault tolerance
/// (paper §III-A3: "storing all events received from the resolution
/// layer into an event store (database)").
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum StoreBackend {
    /// No persistence: replay is unavailable.
    None,
    /// In-memory store (replay within the process lifetime).
    #[default]
    Memory,
    /// Durable file-backed store in this directory.
    File(PathBuf),
}

/// Configuration for an [`crate::FsMonitor`].
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Maximum raw events pulled from the DSI per pump cycle.
    pub batch_size: usize,
    /// Sleep between pump cycles in background mode.
    pub poll_interval: Duration,
    /// Event persistence backend.
    pub store: StoreBackend,
    /// Per-subscription queue capacity; a subscriber further behind
    /// than this loses the newest events (mirrors the mq HWM).
    pub subscription_capacity: usize,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            batch_size: 1024,
            poll_interval: Duration::from_millis(10),
            store: StoreBackend::Memory,
            subscription_capacity: 1 << 20,
        }
    }
}

impl MonitorConfig {
    /// Default configuration without persistence (lowest overhead).
    pub fn without_store() -> MonitorConfig {
        MonitorConfig {
            store: StoreBackend::None,
            ..MonitorConfig::default()
        }
    }

    /// Default configuration with a durable store at `dir`.
    pub fn with_file_store(dir: impl Into<PathBuf>) -> MonitorConfig {
        MonitorConfig {
            store: StoreBackend::File(dir.into()),
            ..MonitorConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_uses_memory_store() {
        assert_eq!(MonitorConfig::default().store, StoreBackend::Memory);
    }

    #[test]
    fn constructors() {
        assert_eq!(MonitorConfig::without_store().store, StoreBackend::None);
        assert_eq!(
            MonitorConfig::with_file_store("/tmp/x").store,
            StoreBackend::File(PathBuf::from("/tmp/x"))
        );
    }
}
