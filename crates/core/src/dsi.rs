//! The Data Storage Interface layer.
//!
//! "The lowest level of FSMonitor is responsible for interfacing with
//! the underlying file system to capture events and report them to the
//! resolution layer … We employ a modular architecture via which
//! arbitrary monitoring interfaces can be integrated" (§III-A1).
//!
//! [`StorageInterface`] is that modular boundary; [`DsiRegistry`]
//! performs the paper's "selecting the appropriate monitoring tool for
//! the given storage device".

use fsmon_events::fsevents::FsEventsEvent;
use fsmon_events::fswatcher::FswEvent;
use fsmon_events::inotify::InotifyEvent;
use fsmon_events::kqueue::KqueueEvent;
use fsmon_events::{MonitorSource, StandardEvent};

/// Errors raised by DSI lifecycle operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DsiError {
    /// The watch target does not exist or cannot be monitored.
    BadTarget(String),
    /// The underlying facility refused (watch limit, fd limit, …).
    ResourceLimit(String),
    /// No registered DSI matches the requested system.
    NoDsiFor(SystemKind),
}

impl std::fmt::Display for DsiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DsiError::BadTarget(t) => write!(f, "cannot monitor target: {t}"),
            DsiError::ResourceLimit(m) => write!(f, "monitoring resource limit: {m}"),
            DsiError::NoDsiFor(k) => write!(f, "no DSI registered for {k:?}"),
        }
    }
}

impl std::error::Error for DsiError {}

/// A raw event as captured by a DSI, in its native dialect. The
/// resolution layer standardizes these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RawEvent {
    /// An inotify event plus the watched directory's path relative to
    /// the watch root (the wd→path bookkeeping the DSI maintains).
    Inotify {
        /// The native event.
        event: InotifyEvent,
        /// Relative path of the directory `event.wd` watches.
        dir_rel: String,
    },
    /// A kqueue kevent (carries its absolute path).
    Kqueue(KqueueEvent),
    /// An FSEvents callback entry.
    FsEvents(FsEventsEvent),
    /// A FileSystemWatcher event.
    Fsw(FswEvent),
    /// An event the DSI already standardized (distributed DSIs resolve
    /// paths at the MDS and ship standardized events).
    Standard(StandardEvent),
}

/// The storage systems the registry can select a DSI for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// Linux local file systems (inotify).
    Linux,
    /// BSD family (kqueue).
    Bsd,
    /// macOS (FSEvents).
    MacOs,
    /// Windows (FileSystemWatcher).
    Windows,
    /// Lustre distributed file system (Changelog DSI).
    Lustre,
    /// Anything reachable by path (polling fallback).
    Generic,
}

/// A pluggable monitoring backend.
pub trait StorageInterface: Send {
    /// Human-readable DSI name (`"inotify"`, `"lustre-changelog"`, …).
    fn name(&self) -> &'static str;

    /// The provenance tag events from this DSI carry.
    fn source(&self) -> MonitorSource;

    /// The watch root this DSI observes.
    fn watch_root(&self) -> &str;

    /// Begin monitoring. Idempotent.
    fn start(&mut self) -> Result<(), DsiError>;

    /// Collect up to `max` pending raw events (non-blocking).
    fn poll(&mut self, max: usize) -> Vec<RawEvent>;

    /// Stop monitoring and release watches.
    fn stop(&mut self);
}

/// Factory type for registered DSIs.
pub type DsiFactory = Box<dyn Fn(&str) -> Result<Box<dyn StorageInterface>, DsiError> + Send>;

/// Selects the appropriate DSI for a target system.
#[derive(Default)]
pub struct DsiRegistry {
    factories: Vec<(SystemKind, &'static str, DsiFactory)>,
}

impl DsiRegistry {
    /// An empty registry.
    pub fn new() -> DsiRegistry {
        DsiRegistry::default()
    }

    /// Register a factory for a system kind. Later registrations for
    /// the same kind take precedence (site-local overrides).
    pub fn register(&mut self, kind: SystemKind, name: &'static str, factory: DsiFactory) {
        self.factories.push((kind, name, factory));
    }

    /// Registered DSI names for a kind, most-preferred first.
    pub fn names_for(&self, kind: SystemKind) -> Vec<&'static str> {
        self.factories
            .iter()
            .rev()
            .filter(|(k, _, _)| *k == kind || *k == SystemKind::Generic)
            .map(|(_, n, _)| *n)
            .collect()
    }

    /// Build the preferred DSI for `kind`, falling back to a `Generic`
    /// registration when no exact match exists.
    pub fn create(
        &self,
        kind: SystemKind,
        watch_root: &str,
    ) -> Result<Box<dyn StorageInterface>, DsiError> {
        let exact = self.factories.iter().rev().find(|(k, _, _)| *k == kind);
        let chosen = exact.or_else(|| {
            self.factories
                .iter()
                .rev()
                .find(|(k, _, _)| *k == SystemKind::Generic)
        });
        match chosen {
            Some((_, _, factory)) => factory(watch_root),
            None => Err(DsiError::NoDsiFor(kind)),
        }
    }
}

pub mod local {
    //! DSI adapters over the simulated local kernels and the real
    //! polling watcher.

    use super::*;
    use fsmon_localfs::{FsEventsSim, FswSim, InotifySim, KqueueSim, PollWatcher, SimFs};
    use std::sync::Arc;

    /// `(extracted_total, native_overflows_total)` counters for one DSI
    /// kind, labelled `dsi=<name>`.
    fn dsi_counters(
        name: &'static str,
    ) -> (Arc<fsmon_telemetry::Counter>, Arc<fsmon_telemetry::Counter>) {
        let scope = fsmon_telemetry::root().scope("dsi").with_label("dsi", name);
        (
            scope.counter("extracted_total"),
            scope.counter("native_overflows_total"),
        )
    }

    /// DSI over the simulated inotify kernel: places a watch on the
    /// root and — unlike bare `inotifywait` — crawls new directories to
    /// keep recursive coverage (the capability the paper highlights in
    /// §V-C1).
    pub struct SimInotifyDsi {
        sim: Arc<InotifySim>,
        fs: Option<Arc<SimFs>>,
        root: String,
        recursive: bool,
        started: bool,
        extracted: Arc<fsmon_telemetry::Counter>,
        overflows: Arc<fsmon_telemetry::Counter>,
    }

    impl SimInotifyDsi {
        /// Non-recursive DSI (bare inotify semantics).
        pub fn new(sim: Arc<InotifySim>, root: impl Into<String>) -> SimInotifyDsi {
            let (extracted, overflows) = dsi_counters("inotify");
            SimInotifyDsi {
                sim,
                fs: None,
                root: root.into(),
                recursive: false,
                started: false,
                extracted,
                overflows,
            }
        }

        /// Recursive DSI: watches every directory under the root and
        /// watches new directories as their CREATE events appear.
        pub fn recursive(
            sim: Arc<InotifySim>,
            fs: Arc<SimFs>,
            root: impl Into<String>,
        ) -> SimInotifyDsi {
            let (extracted, overflows) = dsi_counters("inotify");
            SimInotifyDsi {
                sim,
                fs: Some(fs),
                root: root.into(),
                recursive: true,
                started: false,
                extracted,
                overflows,
            }
        }
    }

    impl StorageInterface for SimInotifyDsi {
        fn name(&self) -> &'static str {
            "inotify"
        }

        fn source(&self) -> MonitorSource {
            MonitorSource::Inotify
        }

        fn watch_root(&self) -> &str {
            &self.root
        }

        fn start(&mut self) -> Result<(), DsiError> {
            if self.started {
                return Ok(());
            }
            if self.recursive {
                let fs = self.fs.as_ref().expect("recursive DSI holds fs");
                self.sim.add_watch_recursive(fs, &self.root);
            } else if self.sim.add_watch(&self.root).is_none() {
                return Err(DsiError::ResourceLimit("inotify watch limit".into()));
            }
            self.started = true;
            Ok(())
        }

        fn poll(&mut self, max: usize) -> Vec<RawEvent> {
            let events = self.sim.read(max);
            let mut out = Vec::with_capacity(events.len());
            for event in events {
                if event
                    .mask
                    .has(fsmon_events::inotify::InotifyMask::IN_Q_OVERFLOW)
                {
                    // The kernel queue dropped events between reads.
                    self.overflows.inc();
                }
                // A DELETE_SELF on a watch that no longer resolves is
                // redundant: the parent watch already reported the
                // delete (Watchdog suppresses these the same way).
                if event
                    .mask
                    .has(fsmon_events::inotify::InotifyMask::IN_DELETE_SELF)
                    && self.sim.wd_path(event.wd).is_none()
                {
                    continue;
                }
                // Maintain recursive coverage: watch directories as they
                // are created.
                if self.recursive
                    && event
                        .mask
                        .has(fsmon_events::inotify::InotifyMask::IN_CREATE)
                    && event.mask.is_dir()
                {
                    if let Some(dir) = self.sim.wd_path(event.wd) {
                        let new_dir = if dir == "/" {
                            format!("/{}", event.name)
                        } else {
                            format!("{dir}/{}", event.name)
                        };
                        self.sim.add_watch(&new_dir);
                    }
                }
                let dir_abs = self
                    .sim
                    .wd_path(event.wd)
                    .unwrap_or_else(|| self.root.clone());
                let dir_rel = dir_abs
                    .strip_prefix(self.root.trim_end_matches('/'))
                    .unwrap_or("")
                    .to_string();
                out.push(RawEvent::Inotify { event, dir_rel });
            }
            self.extracted.add(out.len() as u64);
            out
        }

        fn stop(&mut self) {
            self.started = false;
        }
    }

    /// DSI over the simulated kqueue kernel.
    pub struct SimKqueueDsi {
        sim: Arc<KqueueSim>,
        fs: Arc<SimFs>,
        root: String,
    }

    impl SimKqueueDsi {
        /// Watch `root`'s tree through `sim`.
        pub fn new(sim: Arc<KqueueSim>, fs: Arc<SimFs>, root: impl Into<String>) -> SimKqueueDsi {
            SimKqueueDsi {
                sim,
                fs,
                root: root.into(),
            }
        }
    }

    impl StorageInterface for SimKqueueDsi {
        fn name(&self) -> &'static str {
            "kqueue"
        }

        fn source(&self) -> MonitorSource {
            MonitorSource::Kqueue
        }

        fn watch_root(&self) -> &str {
            &self.root
        }

        fn start(&mut self) -> Result<(), DsiError> {
            if self.sim.watch_tree(&self.fs, &self.root) == 0 {
                return Err(DsiError::BadTarget(self.root.clone()));
            }
            Ok(())
        }

        fn poll(&mut self, max: usize) -> Vec<RawEvent> {
            self.sim
                .drain()
                .into_iter()
                .take(max)
                .map(RawEvent::Kqueue)
                .collect()
        }

        fn stop(&mut self) {}
    }

    /// DSI over the simulated FSEvents stream.
    pub struct SimFsEventsDsi {
        sim: Arc<FsEventsSim>,
        root: String,
        started: bool,
    }

    impl SimFsEventsDsi {
        /// Watch `root`'s subtree through `sim`.
        pub fn new(sim: Arc<FsEventsSim>, root: impl Into<String>) -> SimFsEventsDsi {
            SimFsEventsDsi {
                sim,
                root: root.into(),
                started: false,
            }
        }
    }

    impl StorageInterface for SimFsEventsDsi {
        fn name(&self) -> &'static str {
            "fsevents"
        }

        fn source(&self) -> MonitorSource {
            MonitorSource::FsEvents
        }

        fn watch_root(&self) -> &str {
            &self.root
        }

        fn start(&mut self) -> Result<(), DsiError> {
            if !self.started {
                self.sim.watch_subtree(&self.root);
                self.started = true;
            }
            Ok(())
        }

        fn poll(&mut self, max: usize) -> Vec<RawEvent> {
            self.sim
                .drain()
                .into_iter()
                .take(max)
                .map(RawEvent::FsEvents)
                .collect()
        }

        fn stop(&mut self) {
            self.started = false;
        }
    }

    /// DSI over the simulated FileSystemWatcher.
    pub struct SimFswDsi {
        sim: Arc<FswSim>,
        fs: Arc<SimFs>,
        root: String,
    }

    impl SimFswDsi {
        /// Watch `root` through `sim`.
        pub fn new(sim: Arc<FswSim>, fs: Arc<SimFs>, root: impl Into<String>) -> SimFswDsi {
            SimFswDsi {
                sim,
                fs,
                root: root.into(),
            }
        }
    }

    impl StorageInterface for SimFswDsi {
        fn name(&self) -> &'static str {
            "filesystemwatcher"
        }

        fn source(&self) -> MonitorSource {
            MonitorSource::FileSystemWatcher
        }

        fn watch_root(&self) -> &str {
            &self.root
        }

        fn start(&mut self) -> Result<(), DsiError> {
            if !self.sim.set_path(&self.fs, &self.root) {
                return Err(DsiError::BadTarget(self.root.clone()));
            }
            Ok(())
        }

        fn poll(&mut self, max: usize) -> Vec<RawEvent> {
            self.sim
                .drain()
                .into_iter()
                .take(max)
                .map(RawEvent::Fsw)
                .collect()
        }

        fn stop(&mut self) {}
    }

    /// DSI over the real polling watcher (already standardized).
    pub struct PollingDsi {
        watcher: PollWatcher,
        root: String,
        extracted: Arc<fsmon_telemetry::Counter>,
    }

    impl PollingDsi {
        /// Watch the real directory at `root`.
        pub fn new(root: impl Into<String>) -> PollingDsi {
            let root = root.into();
            PollingDsi {
                watcher: PollWatcher::new(root.clone()),
                root,
                extracted: dsi_counters("polling").0,
            }
        }
    }

    impl StorageInterface for PollingDsi {
        fn name(&self) -> &'static str {
            "polling"
        }

        fn source(&self) -> MonitorSource {
            MonitorSource::Polling
        }

        fn watch_root(&self) -> &str {
            &self.root
        }

        fn start(&mut self) -> Result<(), DsiError> {
            if !std::path::Path::new(&self.root).is_dir() {
                return Err(DsiError::BadTarget(self.root.clone()));
            }
            self.watcher.poll(); // prime the baseline
            Ok(())
        }

        fn poll(&mut self, max: usize) -> Vec<RawEvent> {
            let out: Vec<RawEvent> = self
                .watcher
                .poll()
                .into_iter()
                .take(max)
                .map(RawEvent::Standard)
                .collect();
            self.extracted.add(out.len() as u64);
            out
        }

        fn stop(&mut self) {}
    }
}

#[cfg(test)]
mod tests {
    use super::local::*;
    use super::*;
    use fsmon_localfs::{InotifySim, SimFs};

    #[test]
    fn registry_selects_exact_kind() {
        let mut reg = DsiRegistry::new();
        reg.register(
            SystemKind::Generic,
            "polling",
            Box::new(|root| Ok(Box::new(PollingDsi::new(root)) as Box<dyn StorageInterface>)),
        );
        reg.register(
            SystemKind::Linux,
            "inotify",
            Box::new(|root| {
                let fs = SimFs::new();
                let sim = InotifySim::attach(&fs, 16, 16);
                Ok(Box::new(SimInotifyDsi::new(sim, root)) as Box<dyn StorageInterface>)
            }),
        );
        let dsi = reg.create(SystemKind::Linux, "/").unwrap();
        assert_eq!(dsi.name(), "inotify");
        // Unknown kind falls back to generic.
        let dsi = reg.create(SystemKind::Windows, "/tmp").unwrap();
        assert_eq!(dsi.name(), "polling");
        assert_eq!(reg.names_for(SystemKind::Linux), vec!["inotify", "polling"]);
    }

    #[test]
    fn empty_registry_errors() {
        let reg = DsiRegistry::new();
        assert!(matches!(
            reg.create(SystemKind::Linux, "/"),
            Err(DsiError::NoDsiFor(SystemKind::Linux))
        ));
    }

    #[test]
    fn inotify_dsi_poll_carries_dir_rel() {
        let fs = SimFs::new();
        let sim = InotifySim::attach(&fs, 16, 1024);
        let mut dsi = SimInotifyDsi::recursive(sim, fs.clone(), "/");
        dsi.start().unwrap();
        fs.mkdir("/sub");
        dsi.poll(100); // consume mkdir, which installs the /sub watch
        fs.create("/sub/f.txt");
        let raw = dsi.poll(100);
        assert_eq!(raw.len(), 1);
        match &raw[0] {
            RawEvent::Inotify { event, dir_rel } => {
                assert_eq!(event.name, "f.txt");
                assert_eq!(dir_rel, "/sub");
            }
            other => panic!("unexpected raw event {other:?}"),
        }
    }

    #[test]
    fn inotify_dsi_nonrecursive_hits_watch_limit() {
        let fs = SimFs::new();
        let sim = InotifySim::attach(&fs, 0, 16);
        let mut dsi = SimInotifyDsi::new(sim, "/");
        assert!(matches!(dsi.start(), Err(DsiError::ResourceLimit(_))));
    }

    #[test]
    fn polling_dsi_rejects_missing_root() {
        let mut dsi = PollingDsi::new("/definitely/not/a/real/dir");
        assert!(matches!(dsi.start(), Err(DsiError::BadTarget(_))));
    }
}
