//! Vector watermarks and the interface-layer shard merge.
//!
//! With the aggregator tier sharded (ISSUE 10), there is no global
//! sequencer: each shard stamps its own dense id stream `1, 2, 3, …`
//! over the MDTs it owns (`mdt % K == shard`), and exactly-once is a
//! *per-shard* contract — zero loss and zero duplication against each
//! shard's store, independently. What replaces the global cursor is a
//! **vector watermark**: one cursor per shard, carried by federated
//! consumers and used by `catch_up` to heal each shard lane against its
//! own store.
//!
//! Cross-shard ordering is deliberately weaker than intra-shard
//! ordering — that is the price of removing the serial point, and the
//! same trade the decentralized changelog-processing design (Doreau,
//! CEA) makes. The interface layer recovers a *useful* order with
//! [`ShardMerger`]: a bounded-reordering merge that sorts each merge
//! window by event timestamp (stable, tiebroken by shard then id). The
//! contract consumers must assume:
//!
//! * **Per shard**: strict id order, dense from 1, exactly once.
//! * **Across shards**: timestamp order *within a merge window* only;
//!   two events in different windows may be delivered out of timestamp
//!   order by up to the window span. Consumers needing a total order
//!   must impose one from event content (timestamps), not delivery
//!   order.

use fsmon_events::StandardEvent;

/// The shard an event belongs to under K-way MDT partitioning: shard
/// `mdt % K`. Events with no MDT stamp (non-Lustre sources) belong to
/// shard 0. The partition function is deterministic and derivable from
/// the event alone, so any consumer can attribute a delivered event to
/// the shard (and store) that sequenced it.
pub fn shard_of(mdt_index: Option<u16>, shards: usize) -> usize {
    match shards {
        0 | 1 => 0,
        k => mdt_index.map(|m| m as usize % k).unwrap_or(0),
    }
}

/// A per-shard cursor vector: `cursor[k]` is the highest id seen (or
/// healed) from shard `k`. The federated analogue of the single
/// `last_seen` id — replay "since" is now replay since a vector.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VectorWatermark {
    cursors: Vec<u64>,
}

impl VectorWatermark {
    /// A zero watermark over `shards` cursors (replay everything).
    pub fn zero(shards: usize) -> VectorWatermark {
        VectorWatermark {
            cursors: vec![0; shards.max(1)],
        }
    }

    /// Build from explicit per-shard cursors.
    pub fn from_cursors(cursors: Vec<u64>) -> VectorWatermark {
        VectorWatermark { cursors }
    }

    /// Number of shard cursors.
    pub fn shards(&self) -> usize {
        self.cursors.len()
    }

    /// The cursor for `shard` (0 when past the vector's end, so a
    /// narrower watermark read against a wider federation replays the
    /// unknown shards from the start — the safe direction).
    pub fn get(&self, shard: usize) -> u64 {
        self.cursors.get(shard).copied().unwrap_or(0)
    }

    /// Advance `shard`'s cursor to at least `id` (never regresses;
    /// widens the vector if needed).
    pub fn advance(&mut self, shard: usize, id: u64) {
        if shard >= self.cursors.len() {
            self.cursors.resize(shard + 1, 0);
        }
        if id > self.cursors[shard] {
            self.cursors[shard] = id;
        }
    }

    /// Per-shard cursors, shard 0 first.
    pub fn cursors(&self) -> &[u64] {
        &self.cursors
    }

    /// Pointwise maximum with another watermark.
    pub fn merge(&mut self, other: &VectorWatermark) {
        for (shard, &id) in other.cursors.iter().enumerate() {
            self.advance(shard, id);
        }
    }

    /// Whether every cursor of `self` is `>=` the matching cursor of
    /// `other` (the "caught up to" relation; vectors are only partially
    /// ordered, so `!dominates(a,b)` does not imply `dominates(b,a)`).
    pub fn dominates(&self, other: &VectorWatermark) -> bool {
        (0..self.cursors.len().max(other.cursors.len())).all(|s| self.get(s) >= other.get(s))
    }

    /// Render as `s0:12,s1:9,…` (the form `fsmon` CLI sections print).
    pub fn render(&self) -> String {
        self.cursors
            .iter()
            .enumerate()
            .map(|(s, id)| format!("s{s}:{id}"))
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// Bounded-reordering merge of per-shard event streams at the
/// interface layer.
///
/// Shard lanes hand the merger whatever each delivered this poll (each
/// lane's slice already in per-shard id order); the merger sorts the
/// combined window by `timestamp_ns`, stable, tiebreaking equal stamps
/// by `(shard, id)` so the output is deterministic. The reordering
/// bound is the window itself: nothing is held back waiting for a
/// quiet shard (a stalled shard must not add latency to the others —
/// its late events simply land in a later window).
#[derive(Debug, Default)]
pub struct ShardMerger {
    scratch: Vec<(u64, usize, u64, usize)>,
}

impl ShardMerger {
    /// A merger (scratch reused across windows).
    pub fn new() -> ShardMerger {
        ShardMerger::default()
    }

    /// Merge one window: drains every lane's buffered slice into a
    /// single timestamp-ordered vector. The per-shard contract is
    /// authoritative: each lane's relative order is preserved exactly
    /// (timestamps are monotonicized per lane before sorting, so a
    /// locally misordered stamp can never reorder a shard's ids), and
    /// cross-shard placement follows those effective timestamps.
    pub fn merge(&mut self, lanes: &mut [Vec<StandardEvent>]) -> Vec<StandardEvent> {
        let total: usize = lanes.iter().map(Vec::len).sum();
        if total == 0 {
            return Vec::new();
        }
        // Fast path: one active lane (K=1, or a quiet window) is
        // already ordered.
        if let Some(only) = {
            let mut active = lanes.iter_mut().filter(|l| !l.is_empty());
            match (active.next(), active.next()) {
                (Some(only), None) => Some(only),
                _ => None,
            }
        } {
            return std::mem::take(only);
        }
        self.scratch.clear();
        self.scratch.reserve(total);
        for (shard, lane) in lanes.iter().enumerate() {
            let mut floor = 0u64;
            for (pos, ev) in lane.iter().enumerate() {
                floor = floor.max(ev.timestamp_ns);
                self.scratch.push((floor, shard, ev.id, pos));
            }
        }
        self.scratch.sort_unstable();
        let mut out: Vec<StandardEvent> = Vec::with_capacity(total);
        // Move events out in sorted order; lanes are left empty.
        let mut drained: Vec<Vec<Option<StandardEvent>>> = lanes
            .iter_mut()
            .map(|l| std::mem::take(l).into_iter().map(Some).collect())
            .collect();
        for &(_, shard, _, pos) in self.scratch.iter() {
            out.push(drained[shard][pos].take().expect("each slot moved once"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmon_events::EventKind;

    fn ev(shard_mdt: u16, id: u64, ts: u64) -> StandardEvent {
        let mut e = StandardEvent::new(EventKind::Create, "/r", format!("/f{shard_mdt}-{id}"));
        e.id = id;
        e.timestamp_ns = ts;
        e.mdt_index = Some(shard_mdt);
        e
    }

    #[test]
    fn shard_of_partitions_by_mdt_mod_k() {
        assert_eq!(shard_of(Some(5), 4), 1);
        assert_eq!(shard_of(Some(4), 4), 0);
        assert_eq!(shard_of(None, 4), 0);
        assert_eq!(shard_of(Some(5), 1), 0);
        assert_eq!(shard_of(Some(5), 0), 0);
    }

    #[test]
    fn watermark_advances_never_regress_and_merge_is_pointwise_max() {
        let mut w = VectorWatermark::zero(2);
        w.advance(0, 10);
        w.advance(0, 7);
        w.advance(3, 4);
        assert_eq!(w.cursors(), &[10, 0, 0, 4]);
        let mut other = VectorWatermark::from_cursors(vec![3, 9]);
        other.merge(&w);
        assert_eq!(other.cursors(), &[10, 9, 0, 4]);
        assert!(other.dominates(&w));
        assert!(!w.dominates(&other));
        assert_eq!(w.render(), "s0:10,s1:0,s2:0,s3:4");
    }

    #[test]
    fn merge_orders_by_timestamp_and_preserves_per_shard_id_order() {
        let mut merger = ShardMerger::new();
        let mut lanes = vec![
            vec![ev(0, 1, 100), ev(0, 2, 300)],
            vec![ev(1, 1, 200), ev(1, 2, 200)],
        ];
        let merged = merger.merge(&mut lanes);
        let order: Vec<(u64, Option<u16>)> = merged.iter().map(|e| (e.id, e.mdt_index)).collect();
        assert_eq!(
            order,
            [(1, Some(0)), (1, Some(1)), (2, Some(1)), (2, Some(0)),]
        );
        assert!(lanes.iter().all(Vec::is_empty));
    }

    #[test]
    fn single_active_lane_passes_through_in_lane_order() {
        let mut merger = ShardMerger::new();
        // Misordered timestamps within one lane stay in id order: the
        // fast path must not re-sort a lone shard's stream.
        let mut lanes = vec![vec![ev(0, 1, 900), ev(0, 2, 100)], Vec::new()];
        let merged = merger.merge(&mut lanes);
        assert_eq!(merged.iter().map(|e| e.id).collect::<Vec<_>>(), [1, 2]);
        assert!(merger.merge(&mut [Vec::new(), Vec::new()]).is_empty());
    }
}
