//! Consumer-side event filters.
//!
//! "Whenever a new event arrives to the consumer it filters the events
//! and only passes on events related to those files and directories
//! requested by the application" (§IV Consumption). The paper also
//! notes recursion is a *filtering rule*: FSMonitor "will monitor
//! events recursively by just modifying the filtering rule in the
//! Interface layer" (§V-C1) — hence the `recursive` flag here.

use fsmon_events::kind::KindMask;
use fsmon_events::{EventKind, StandardEvent};
use serde::{Deserialize, Serialize};

/// A subscription filter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventFilter {
    /// Relative path prefix (leading `/`); `"/"` matches everything.
    pub path_prefix: String,
    /// Which event kinds to deliver.
    pub kinds: KindMask,
    /// When false, only events on *direct children* of the prefix are
    /// delivered (bare-inotify semantics); when true, the entire
    /// subtree matches.
    pub recursive: bool,
}

impl EventFilter {
    /// Match everything, recursively.
    pub fn all() -> EventFilter {
        EventFilter {
            path_prefix: "/".to_string(),
            kinds: KindMask::ALL,
            recursive: true,
        }
    }

    /// Match a subtree, all kinds.
    pub fn subtree(prefix: impl Into<String>) -> EventFilter {
        EventFilter {
            path_prefix: prefix.into(),
            kinds: KindMask::ALL,
            recursive: true,
        }
    }

    /// Match only direct children of `prefix` (non-recursive).
    pub fn directory(prefix: impl Into<String>) -> EventFilter {
        EventFilter {
            path_prefix: prefix.into(),
            kinds: KindMask::ALL,
            recursive: false,
        }
    }

    /// Restrict to the given kinds.
    #[must_use]
    pub fn with_kinds<I: IntoIterator<Item = EventKind>>(mut self, kinds: I) -> EventFilter {
        self.kinds = KindMask::from_kinds(kinds);
        self
    }

    /// The canonical filter-class key: subscriptions whose filters
    /// render the same key are one *class* — the interface layer
    /// evaluates each class once per event and every aggregator
    /// downstream shares one pre-encoded subset frame per class.
    ///
    /// The key doubles as the pushdown wire spec: it is the
    /// `path=…;kinds=…;mdts=…` grammar `fsmon-rules` compiles, with the
    /// recursion flag folded into the glob (`/**` subtree vs `/*`
    /// direct children).
    pub fn class_key(&self) -> String {
        let prefix = self.path_prefix.trim_end_matches('/');
        let pattern = if self.recursive {
            format!("{prefix}/**")
        } else {
            format!("{prefix}/*")
        };
        let kinds = if EventKind::ALL.iter().all(|k| self.kinds.contains(*k)) {
            "*".to_string()
        } else {
            EventKind::ALL
                .iter()
                .filter(|k| self.kinds.contains(**k))
                .map(|k| k.as_str())
                .collect::<Vec<_>>()
                .join(",")
        };
        format!("path={pattern};kinds={kinds};mdts=*")
    }

    /// Whether `event` passes this filter.
    pub fn matches(&self, event: &StandardEvent) -> bool {
        if !self.kinds.contains(event.kind) {
            return false;
        }
        if self.recursive {
            event.path_under(&self.path_prefix)
        } else {
            self.direct_child(&event.path)
                || event
                    .old_path
                    .as_deref()
                    .is_some_and(|p| self.direct_child(p))
        }
    }

    fn direct_child(&self, path: &str) -> bool {
        let prefix = self.path_prefix.trim_end_matches('/');
        match path.strip_prefix(prefix) {
            Some(rest) => {
                let rest = rest.trim_start_matches('/');
                !rest.is_empty() && !rest.contains('/')
            }
            None => false,
        }
    }
}

impl Default for EventFilter {
    fn default() -> Self {
        EventFilter::all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, path: &str) -> StandardEvent {
        StandardEvent::new(kind, "/root", path)
    }

    #[test]
    fn all_matches_everything() {
        let f = EventFilter::all();
        assert!(f.matches(&ev(EventKind::Create, "/a/b/c")));
        assert!(f.matches(&ev(EventKind::Delete, "/x")));
    }

    #[test]
    fn subtree_prefix_boundaries() {
        let f = EventFilter::subtree("/data");
        assert!(f.matches(&ev(EventKind::Create, "/data/f")));
        assert!(f.matches(&ev(EventKind::Create, "/data/sub/f")));
        assert!(f.matches(&ev(EventKind::Create, "/data")));
        assert!(!f.matches(&ev(EventKind::Create, "/database/f")));
    }

    #[test]
    fn kind_mask_filters() {
        let f = EventFilter::all().with_kinds([EventKind::Create, EventKind::Delete]);
        assert!(f.matches(&ev(EventKind::Create, "/f")));
        assert!(f.matches(&ev(EventKind::Delete, "/f")));
        assert!(!f.matches(&ev(EventKind::Modify, "/f")));
    }

    #[test]
    fn non_recursive_matches_direct_children_only() {
        let f = EventFilter::directory("/dir");
        assert!(f.matches(&ev(EventKind::Create, "/dir/f")));
        assert!(!f.matches(&ev(EventKind::Create, "/dir/sub/f")));
        assert!(!f.matches(&ev(EventKind::Create, "/dir")));
        assert!(!f.matches(&ev(EventKind::Create, "/other/f")));
    }

    #[test]
    fn rename_matches_via_old_path() {
        let f = EventFilter::subtree("/old");
        let mut e = ev(EventKind::MovedTo, "/new/f");
        e.old_path = Some("/old/f".to_string());
        assert!(f.matches(&e));
        let f_dir = EventFilter::directory("/old");
        assert!(f_dir.matches(&e));
    }

    #[test]
    fn class_key_is_canonical_pushdown_grammar() {
        assert_eq!(EventFilter::all().class_key(), "path=/**;kinds=*;mdts=*");
        assert_eq!(
            EventFilter::subtree("/data/").class_key(),
            "path=/data/**;kinds=*;mdts=*"
        );
        assert_eq!(
            EventFilter::directory("/dir").class_key(),
            "path=/dir/*;kinds=*;mdts=*"
        );
        let f = EventFilter::subtree("/d").with_kinds([EventKind::Delete, EventKind::Create]);
        let key = f.class_key();
        assert!(key.starts_with("path=/d/**;kinds="));
        // Kind order is canonical regardless of construction order.
        assert_eq!(
            key,
            EventFilter::subtree("/d")
                .with_kinds([EventKind::Create, EventKind::Delete])
                .class_key()
        );
    }

    #[test]
    fn equal_filters_share_a_class_key() {
        assert_eq!(
            EventFilter::subtree("/a").class_key(),
            EventFilter::subtree("/a").class_key()
        );
        assert_ne!(
            EventFilter::subtree("/a").class_key(),
            EventFilter::directory("/a").class_key()
        );
    }

    #[test]
    fn root_directory_filter() {
        let f = EventFilter::directory("/");
        assert!(f.matches(&ev(EventKind::Create, "/top.txt")));
        assert!(!f.matches(&ev(EventKind::Create, "/sub/deep.txt")));
    }
}
