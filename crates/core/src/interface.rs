//! The interface layer: subscriptions, batching, replay, and fault
//! tolerance.
//!
//! "The topmost layer provides an interface for users and programs to
//! interact with FSMonitor … If users provide an event identifier,
//! FSMonitor will only report events that have happened since that
//! event. This layer is also responsible for providing fault-tolerance
//! by storing all events … into an event store" (§III-A3).

use crate::config::{MonitorConfig, StoreBackend};
use crate::dsi::StorageInterface;
use crate::filter::EventFilter;
use crate::resolution::{ResolutionLayer, ResolutionStats};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use fsmon_events::{EventId, StandardEvent};
use fsmon_store::{EventStore, FileStore, MemStore, StoreError, StoreStats};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

struct SubEntry {
    filter: EventFilter,
    tx: Sender<StandardEvent>,
    alive: Arc<AtomicBool>,
    dropped: Arc<AtomicU64>,
}

/// A consumer's view of the event stream.
pub struct Subscription {
    rx: Receiver<StandardEvent>,
    alive: Arc<AtomicBool>,
    dropped: Arc<AtomicU64>,
}

impl Subscription {
    /// Receive one event, blocking up to `timeout`.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Option<StandardEvent> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Take every queued event.
    pub fn drain(&self) -> Vec<StandardEvent> {
        let mut out = Vec::new();
        while let Ok(ev) = self.rx.try_recv() {
            out.push(ev);
        }
        out
    }

    /// Take up to `max` queued events (the batch retrieval API).
    pub fn drain_batch(&self, max: usize) -> Vec<StandardEvent> {
        let mut out = Vec::with_capacity(max.min(1024));
        while out.len() < max {
            match self.rx.try_recv() {
                Ok(ev) => out.push(ev),
                Err(_) => break,
            }
        }
        out
    }

    /// Events currently queued.
    pub fn queued(&self) -> usize {
        self.rx.len()
    }

    /// Events lost because this subscriber fell behind its queue
    /// capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        self.alive.store(false, Ordering::Relaxed);
    }
}

/// Interface-layer instrument handles (registered once per monitor,
/// incremented lock-free on the pump hot path).
struct InterfaceMetrics {
    /// Raw events extracted from the DSI (labelled by DSI name).
    raw_events: Arc<fsmon_telemetry::Counter>,
    /// Events fully processed through resolve + persist + fan-out.
    processed: Arc<fsmon_telemetry::Counter>,
    /// Filter passes that reached a subscriber's queue.
    delivered: Arc<fsmon_telemetry::Counter>,
    /// Events a subscriber's filter rejected.
    filtered_out: Arc<fsmon_telemetry::Counter>,
    /// Events lost because a subscriber's queue was full.
    dropped: Arc<fsmon_telemetry::Counter>,
    /// Pump batch sizes (non-empty polls only).
    batch_size: Arc<fsmon_telemetry::Histogram>,
}

impl InterfaceMetrics {
    fn new(dsi_name: &'static str) -> InterfaceMetrics {
        let dsi = fsmon_telemetry::root()
            .scope("dsi")
            .with_label("dsi", dsi_name);
        let consumer = fsmon_telemetry::root().scope("consumer");
        let interface = fsmon_telemetry::root().scope("interface");
        InterfaceMetrics {
            raw_events: dsi.counter("raw_events_total"),
            processed: interface.counter("events_total"),
            delivered: consumer.counter("delivered_total"),
            filtered_out: consumer.counter("filtered_total"),
            dropped: consumer.counter("dropped_total"),
            batch_size: interface.histogram("batch_size"),
        }
    }
}

/// The FSMonitor: one DSI, a resolution layer, an optional event
/// store, and any number of filtered subscriptions.
pub struct FsMonitor {
    dsi: Box<dyn StorageInterface>,
    resolution: ResolutionLayer,
    store: Option<Arc<dyn EventStore>>,
    subs: Arc<Mutex<Vec<SubEntry>>>,
    config: MonitorConfig,
    started: bool,
    /// Events processed across all pumps. Lives on the monitor (not the
    /// spawn loop) so the count is advanced *inside* `pump`, before
    /// subscribers can observe the delivered events.
    processed: Arc<AtomicU64>,
    metrics: InterfaceMetrics,
}

impl FsMonitor {
    /// Build a monitor over `dsi`, starting it immediately so no event
    /// between construction and the first pump is missed. A DSI that
    /// cannot start yet (e.g. its target does not exist) is retried on
    /// [`start`](FsMonitor::start) and each pump.
    pub fn new(mut dsi: Box<dyn StorageInterface>, config: MonitorConfig) -> FsMonitor {
        let store: Option<Arc<dyn EventStore>> = match &config.store {
            StoreBackend::None => None,
            StoreBackend::Memory => Some(Arc::new(MemStore::new())),
            StoreBackend::File(dir) => Some(Arc::new(
                FileStore::open(dir).expect("open file-backed event store"),
            )),
        };
        let resolution = ResolutionLayer::new(dsi.watch_root());
        let started = dsi.start().is_ok();
        let metrics = InterfaceMetrics::new(dsi.name());
        FsMonitor {
            dsi,
            resolution,
            store,
            subs: Arc::new(Mutex::new(Vec::new())),
            config,
            started,
            processed: Arc::new(AtomicU64::new(0)),
            metrics,
        }
    }

    /// The DSI in use.
    pub fn dsi_name(&self) -> &'static str {
        self.dsi.name()
    }

    /// The watch root.
    pub fn watch_root(&self) -> &str {
        self.dsi.watch_root()
    }

    /// Resolution-layer counters.
    pub fn resolution_stats(&self) -> ResolutionStats {
        self.resolution.stats()
    }

    /// Event-store counters (zeroes when no store is configured).
    pub fn store_stats(&self) -> StoreStats {
        self.store.as_ref().map(|s| s.stats()).unwrap_or_default()
    }

    /// Register a filtered subscription.
    pub fn subscribe(&self, filter: EventFilter) -> Subscription {
        let (tx, rx) = bounded(self.config.subscription_capacity);
        let alive = Arc::new(AtomicBool::new(true));
        let dropped = Arc::new(AtomicU64::new(0));
        self.subs.lock().push(SubEntry {
            filter,
            tx,
            alive: alive.clone(),
            dropped: dropped.clone(),
        });
        Subscription { rx, alive, dropped }
    }

    /// Start the DSI if not already started.
    pub fn start(&mut self) -> Result<(), crate::dsi::DsiError> {
        if !self.started {
            self.dsi.start()?;
            self.started = true;
        }
        Ok(())
    }

    /// Drive one processing cycle: poll the DSI, standardize, persist,
    /// and deliver. Returns the number of events processed.
    ///
    /// Deterministic alternative to [`spawn`](FsMonitor::spawn) —
    /// tests and benchmarks call this directly.
    pub fn pump(&mut self, max: usize) -> usize {
        if !self.started && self.start().is_err() {
            return 0;
        }
        let raw = self.dsi.poll(max.min(self.config.batch_size));
        if raw.is_empty() {
            return 0;
        }
        self.metrics.raw_events.add(raw.len() as u64);
        let events = self.resolution.resolve_batch(raw);
        let n = events.len();
        self.metrics.batch_size.record(n as u64);
        self.metrics.processed.add(n as u64);
        // Advance before fan-out: a subscriber that observes an event
        // must also observe it counted (MonitorHandle::processed).
        self.processed.fetch_add(n as u64, Ordering::Relaxed);
        let subs = self.subs.lock();
        // Group subscriptions into filter classes: each distinct filter
        // is evaluated once per event and every subscriber of the class
        // shares the verdict — O(events × classes) matching instead of
        // O(events × subscribers), mirroring the aggregator's
        // server-side pushdown.
        let mut classes: Vec<(&EventFilter, Vec<&SubEntry>)> = Vec::new();
        for sub in subs.iter() {
            if !sub.alive.load(Ordering::Relaxed) {
                continue;
            }
            match classes.iter_mut().find(|(f, _)| **f == sub.filter) {
                Some((_, members)) => members.push(sub),
                None => classes.push((&sub.filter, vec![sub])),
            }
        }
        for mut ev in events {
            if let Some(store) = &self.store {
                if let Ok(seq) = store.append(&ev) {
                    ev.id = seq;
                }
            }
            for (filter, members) in &classes {
                if !filter.matches(&ev) {
                    // Per-subscriber accounting is preserved: the class
                    // verdict applies to each of its members.
                    self.metrics.filtered_out.add(members.len() as u64);
                    continue;
                }
                for sub in members {
                    if !sub.alive.load(Ordering::Relaxed) {
                        continue;
                    }
                    match sub.tx.try_send(ev.clone()) {
                        Ok(()) => {
                            self.metrics.delivered.inc();
                        }
                        Err(TrySendError::Full(_)) => {
                            sub.dropped.fetch_add(1, Ordering::Relaxed);
                            self.metrics.dropped.inc();
                        }
                        Err(TrySendError::Disconnected(_)) => {
                            sub.alive.store(false, Ordering::Relaxed);
                        }
                    }
                }
            }
        }
        n
    }

    /// Pump until the DSI reports no events (bounded by `cycles`).
    pub fn pump_until_idle(&mut self, cycles: usize) -> usize {
        let mut total = 0;
        for _ in 0..cycles {
            let n = self.pump(self.config.batch_size);
            total += n;
            if n == 0 {
                break;
            }
        }
        total
    }

    /// Replay events with id greater than `since` from the event store
    /// (the consumer fault-recovery API).
    pub fn events_since(
        &self,
        since: EventId,
        max: usize,
    ) -> Result<Vec<StandardEvent>, StoreError> {
        match &self.store {
            Some(store) => store.get_since(since, max),
            None => Ok(Vec::new()),
        }
    }

    /// Flag events up to `up_to` as reported; they become eligible for
    /// removal at the next purge cycle.
    pub fn ack(&self, up_to: EventId) -> Result<(), StoreError> {
        if let Some(store) = &self.store {
            store.mark_reported(up_to)?;
        }
        Ok(())
    }

    /// Run a purge cycle on the event store.
    pub fn purge(&self) -> Result<(), StoreError> {
        if let Some(store) = &self.store {
            store.purge_reported()?;
        }
        Ok(())
    }

    /// Move the monitor to a background thread pumping at the
    /// configured interval. Returns a handle that stops the loop when
    /// dropped (or on [`MonitorHandle::stop`]).
    pub fn spawn(mut self) -> MonitorHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_t = stop.clone();
        let subs = self.subs.clone();
        let store = self.store.clone();
        let interval = self.config.poll_interval;
        let processed = self.processed.clone();
        let thread = std::thread::Builder::new()
            .name("fsmonitor-pump".into())
            .spawn(move || {
                let _ = self.start();
                while !stop_t.load(Ordering::Relaxed) {
                    let n = self.pump(self.config.batch_size);
                    if n == 0 {
                        std::thread::sleep(interval);
                    }
                }
                self.dsi.stop();
            })
            .expect("spawn monitor thread");
        MonitorHandle {
            stop,
            thread: Some(thread),
            subs,
            store,
            processed,
        }
    }
}

/// Handle to a background monitor.
pub struct MonitorHandle {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
    subs: Arc<Mutex<Vec<SubEntry>>>,
    store: Option<Arc<dyn EventStore>>,
    processed: Arc<AtomicU64>,
}

impl MonitorHandle {
    /// Register a subscription on the running monitor.
    pub fn subscribe(&self, filter: EventFilter) -> Subscription {
        let (tx, rx) = bounded(1 << 20);
        let alive = Arc::new(AtomicBool::new(true));
        let dropped = Arc::new(AtomicU64::new(0));
        self.subs.lock().push(SubEntry {
            filter,
            tx,
            alive: alive.clone(),
            dropped: dropped.clone(),
        });
        Subscription { rx, alive, dropped }
    }

    /// Events processed by the background loop so far.
    pub fn processed(&self) -> u64 {
        self.processed.load(Ordering::Relaxed)
    }

    /// Replay from the store.
    pub fn events_since(
        &self,
        since: EventId,
        max: usize,
    ) -> Result<Vec<StandardEvent>, StoreError> {
        match &self.store {
            Some(store) => store.get_since(since, max),
            None => Ok(Vec::new()),
        }
    }

    /// Stop the background loop and join the thread.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MonitorHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsi::local::SimInotifyDsi;
    use fsmon_events::EventKind;
    use fsmon_localfs::{InotifySim, SimFs};
    use std::time::Duration;

    fn monitor(fs: &Arc<SimFs>, config: MonitorConfig) -> FsMonitor {
        let ino = InotifySim::attach(fs, 4096, 1 << 16);
        let dsi = SimInotifyDsi::recursive(ino, fs.clone(), "/");
        FsMonitor::new(Box::new(dsi), config)
    }

    #[test]
    fn pump_delivers_filtered_events() {
        let fs = SimFs::new();
        let mut m = monitor(&fs, MonitorConfig::default());
        let all = m.subscribe(EventFilter::all());
        let creates = m.subscribe(EventFilter::all().with_kinds([EventKind::Create]));
        fs.create("/a");
        fs.modify("/a");
        fs.delete("/a");
        assert_eq!(m.pump(100), 3);
        assert_eq!(all.drain().len(), 3);
        let c = creates.drain();
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].kind, EventKind::Create);
    }

    #[test]
    fn events_get_store_sequences_and_replay_works() {
        let fs = SimFs::new();
        let mut m = monitor(&fs, MonitorConfig::default());
        fs.create("/a");
        fs.create("/b");
        m.pump(100);
        let replay = m.events_since(0, 10).unwrap();
        assert_eq!(replay.len(), 2);
        assert_eq!(replay[0].id, 1);
        let replay = m.events_since(1, 10).unwrap();
        assert_eq!(replay.len(), 1);
        assert_eq!(replay[0].path, "/b");
    }

    #[test]
    fn ack_and_purge_trim_the_store() {
        let fs = SimFs::new();
        let mut m = monitor(&fs, MonitorConfig::default());
        fs.create("/a");
        fs.create("/b");
        m.pump(100);
        m.ack(1).unwrap();
        m.purge().unwrap();
        let replay = m.events_since(0, 10).unwrap();
        assert_eq!(replay.len(), 1);
        assert_eq!(m.store_stats().reported_seq, 1);
    }

    #[test]
    fn no_store_mode_returns_empty_replay() {
        let fs = SimFs::new();
        let mut m = monitor(&fs, MonitorConfig::without_store());
        fs.create("/a");
        m.pump(100);
        assert!(m.events_since(0, 10).unwrap().is_empty());
        assert_eq!(m.store_stats(), StoreStats::default());
    }

    #[test]
    fn pump_until_idle_drains_everything() {
        let fs = SimFs::new();
        let mut m = monitor(
            &fs,
            MonitorConfig {
                batch_size: 8,
                ..MonitorConfig::default()
            },
        );
        let sub = m.subscribe(EventFilter::all());
        for i in 0..100 {
            fs.create(&format!("/f{i}"));
        }
        let n = m.pump_until_idle(1000);
        assert_eq!(n, 100);
        assert_eq!(sub.drain().len(), 100);
    }

    #[test]
    fn same_filter_subscribers_share_a_class_and_all_receive() {
        let fs = SimFs::new();
        let mut m = monitor(&fs, MonitorConfig::default());
        let a = m.subscribe(EventFilter::subtree("/keep"));
        let b = m.subscribe(EventFilter::subtree("/keep"));
        let other = m.subscribe(EventFilter::subtree("/other"));
        fs.mkdir("/keep");
        m.pump(100);
        fs.create("/keep/f");
        fs.create("/stray");
        m.pump(100);
        assert_eq!(a.drain().len(), 2);
        assert_eq!(b.drain().len(), 2);
        assert!(other.drain().is_empty());
    }

    #[test]
    fn dead_subscription_stops_receiving() {
        let fs = SimFs::new();
        let mut m = monitor(&fs, MonitorConfig::default());
        let sub = m.subscribe(EventFilter::all());
        drop(sub);
        fs.create("/a");
        m.pump(100); // must not panic or deliver to the dropped sub
        assert_eq!(m.resolution_stats().processed, 1);
    }

    #[test]
    fn background_mode_processes_and_stops() {
        let fs = SimFs::new();
        let m = monitor(
            &fs,
            MonitorConfig {
                poll_interval: Duration::from_millis(1),
                ..MonitorConfig::default()
            },
        );
        let handle = m.spawn();
        let sub = handle.subscribe(EventFilter::all());
        fs.create("/bg.txt");
        let ev = sub
            .recv_timeout(Duration::from_secs(2))
            .expect("event arrives");
        assert_eq!(ev.path, "/bg.txt");
        assert!(handle.processed() >= 1);
        handle.stop();
    }

    #[test]
    fn recursive_filter_vs_directory_filter() {
        let fs = SimFs::new();
        let mut m = monitor(&fs, MonitorConfig::default());
        let recursive = m.subscribe(EventFilter::subtree("/dir"));
        let direct = m.subscribe(EventFilter::directory("/dir"));
        fs.mkdir("/dir");
        m.pump(100);
        fs.mkdir("/dir/sub");
        m.pump(100);
        fs.create("/dir/sub/deep.txt");
        fs.create("/dir/shallow.txt");
        m.pump(100);
        let rec_paths: Vec<String> = recursive.drain().into_iter().map(|e| e.path).collect();
        assert!(rec_paths.contains(&"/dir/sub/deep.txt".to_string()));
        assert!(rec_paths.contains(&"/dir/shallow.txt".to_string()));
        let dir_paths: Vec<String> = direct.drain().into_iter().map(|e| e.path).collect();
        assert!(dir_paths.contains(&"/dir/shallow.txt".to_string()));
        assert!(!dir_paths.contains(&"/dir/sub/deep.txt".to_string()));
    }
}
