#![warn(missing_docs)]

//! # fsmon-core
//!
//! The FSMonitor library: a generic, scalable file-system monitor with a
//! storage-system-independent event representation (the paper's three-
//! layer architecture, Fig. 3).
//!
//! * **DSI layer** ([`dsi`]) — the [`StorageInterface`] trait abstracts
//!   event extraction from a concrete monitoring facility; adapters for
//!   the simulated inotify/kqueue/FSEvents/FileSystemWatcher kernels and
//!   the real polling watcher live in [`dsi::local`], and the registry
//!   ([`dsi::DsiRegistry`]) selects the right DSI for a target system.
//! * **Resolution layer** ([`resolution`]) — receives raw native events,
//!   standardizes them to the common representation, assigns event ids,
//!   and batches them. The [`LruCache`] used by distributed DSIs to
//!   memoize `fid2path` resolutions lives here too ([`lru`]).
//! * **Interface layer** ([`interface`]) — the client-facing API:
//!   filtered subscriptions, replay from an event id, and fault
//!   tolerance through a pluggable [`fsmon_store::EventStore`].
//!
//! ```
//! use fsmon_core::{FsMonitor, MonitorConfig, EventFilter};
//! use fsmon_core::dsi::local::SimInotifyDsi;
//! use fsmon_localfs::{SimFs, InotifySim};
//! use fsmon_events::EventKind;
//!
//! let fs = SimFs::new();
//! let ino = InotifySim::attach(&fs, 1024, 16384);
//! let dsi = SimInotifyDsi::new(ino, "/");
//! let mut monitor = FsMonitor::new(Box::new(dsi), MonitorConfig::default());
//! let sub = monitor.subscribe(EventFilter::all());
//!
//! fs.create("/hello.txt");
//! monitor.pump(100);
//! let events = sub.drain();
//! assert_eq!(events.len(), 1);
//! assert_eq!(events[0].kind, EventKind::Create);
//! ```

pub mod composite;
pub mod config;
pub mod dsi;
pub mod federation;
pub mod filter;
pub mod interface;
pub mod lru;
pub mod observer;
pub mod resolution;
pub mod sharded_lru;

pub use composite::CompositeDsi;
pub use config::MonitorConfig;
pub use dsi::{DsiError, RawEvent, StorageInterface, SystemKind};
pub use federation::{shard_of, ShardMerger, VectorWatermark};
pub use filter::EventFilter;
pub use interface::{FsMonitor, Subscription};
pub use lru::LruCache;
pub use observer::{EventHandler, Observer, ObserverGuard};
pub use resolution::{ResolutionLayer, ResolutionStats};
pub use sharded_lru::ShardedLruCache;
