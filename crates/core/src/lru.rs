//! A least-recently-used cache with hit/miss statistics.
//!
//! This is the cache the paper puts in front of `fid2path` ("we
//! implement the aggregator with a Least Recently Used (LRU) Cache to
//! store mappings of FIDs to source paths", §IV Processing) and sweeps
//! in Table VIII. O(1) get/insert via a hash map into an intrusive
//! doubly-linked list over a slab.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

const NIL: usize = usize::MAX;

/// Telemetry handles for an instrumented cache (see
/// [`LruCache::instrument`]).
struct LruTelemetry {
    hits: Arc<fsmon_telemetry::Counter>,
    misses: Arc<fsmon_telemetry::Counter>,
    evictions: Arc<fsmon_telemetry::Counter>,
    entries: Arc<fsmon_telemetry::Gauge>,
}

struct Node<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// Cache effectiveness counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LruStats {
    /// Lookups that found their key.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted at capacity.
    pub evictions: u64,
}

impl LruStats {
    /// Hit ratio in [0, 1]; 0 when no lookups have happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A fixed-capacity LRU cache.
pub struct LruCache<K, V> {
    capacity: usize,
    map: HashMap<K, usize>,
    slab: Vec<Node<K, V>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    stats: LruStats,
    telemetry: Option<LruTelemetry>,
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    /// A cache holding at most `capacity` entries (capacity 0 caches
    /// nothing — every lookup misses, matching a disabled cache).
    pub fn new(capacity: usize) -> LruCache<K, V> {
        LruCache {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            slab: Vec::with_capacity(capacity.min(1 << 20)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            stats: LruStats::default(),
            telemetry: None,
        }
    }

    /// Mirror this cache's counters into telemetry instruments under
    /// `scope` (`<scope>_hits_total`, `_misses_total`,
    /// `_evictions_total`, `_entries`). The fid2path caches register
    /// under `fsmon_fid2path` with an `mdt` label.
    pub fn instrument(mut self, scope: &fsmon_telemetry::Scope) -> LruCache<K, V> {
        self.telemetry = Some(LruTelemetry {
            hits: scope.counter("hits_total"),
            misses: scope.counter("misses_total"),
            evictions: scope.counter("evictions_total"),
            entries: scope.gauge("entries"),
        });
        self
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counters so far.
    pub fn stats(&self) -> LruStats {
        self.stats
    }

    /// Approximate resident bytes, assuming `entry_bytes` per entry
    /// (used to reproduce the paper's collector-memory columns).
    pub fn memory_bytes(&self, entry_bytes: usize) -> usize {
        self.len() * entry_bytes
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn attach_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Look up `key`, promoting it to most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.stats.hits += 1;
                if let Some(t) = &self.telemetry {
                    t.hits.inc();
                }
                self.detach(idx);
                self.attach_front(idx);
                Some(self.slab[idx].value.clone())
            }
            None => {
                self.stats.misses += 1;
                if let Some(t) = &self.telemetry {
                    t.misses.inc();
                }
                None
            }
        }
    }

    /// Check for `key` without promoting or counting.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|&idx| &self.slab[idx].value)
    }

    /// Insert or update `key`, evicting the LRU entry at capacity.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.slab[idx].value = value;
            self.detach(idx);
            self.attach_front(idx);
            return;
        }
        if self.map.len() >= self.capacity {
            // Evict the tail.
            let victim = self.tail;
            self.detach(victim);
            let old_key = self.slab[victim].key.clone();
            self.map.remove(&old_key);
            self.free.push(victim);
            self.stats.evictions += 1;
            if let Some(t) = &self.telemetry {
                t.evictions.inc();
                t.entries.sub(1);
            }
        }
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slab[idx] = Node {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                };
                idx
            }
            None => {
                self.slab.push(Node {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.attach_front(idx);
        if let Some(t) = &self.telemetry {
            t.entries.add(1);
        }
    }

    /// Remove `key` (e.g. after a delete event invalidates a fid→path
    /// mapping).
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.map.remove(key)?;
        self.detach(idx);
        self.free.push(idx);
        if let Some(t) = &self.telemetry {
            t.entries.sub(1);
        }
        Some(self.slab[idx].value.clone())
    }

    /// Drop every entry (counters survive).
    pub fn clear(&mut self) {
        if let Some(t) = &self.telemetry {
            t.entries.sub(self.map.len() as i64);
        }
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

impl<K, V> Drop for LruCache<K, V> {
    fn drop(&mut self) {
        // The entries gauge may be shared with other caches under the
        // same scope; give this cache's share back.
        if let Some(t) = &self.telemetry {
            t.entries.sub(self.map.len() as i64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_hit_and_miss_counting() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        assert_eq!(c.get(&"a"), Some(1));
        assert_eq!(c.get(&"b"), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!((s.hit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn eviction_removes_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.get(&"a"); // promote a
        c.insert("c", 3); // evicts b
        assert_eq!(c.peek(&"a"), Some(&1));
        assert_eq!(c.peek(&"b"), None);
        assert_eq!(c.peek(&"c"), Some(&3));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn update_promotes_and_replaces() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("a", 10); // update, promotes a
        c.insert("c", 3); // evicts b
        assert_eq!(c.get(&"a"), Some(10));
        assert_eq!(c.peek(&"b"), None);
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut c = LruCache::new(0);
        c.insert("a", 1);
        assert_eq!(c.get(&"a"), None);
        assert_eq!(c.len(), 0);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn remove_and_reuse_slot() {
        let mut c = LruCache::new(3);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.remove(&"a"), Some(1));
        assert_eq!(c.remove(&"a"), None);
        assert_eq!(c.len(), 1);
        c.insert("c", 3);
        c.insert("d", 4);
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(&"b"), Some(2));
        assert_eq!(c.get(&"c"), Some(3));
        assert_eq!(c.get(&"d"), Some(4));
    }

    #[test]
    fn clear_resets_entries_but_not_stats() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.get(&"a");
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats().hits, 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"b"), Some(2));
    }

    #[test]
    fn exhaustive_order_against_reference_model() {
        // Differential test against a naive Vec-based LRU.
        let mut c = LruCache::new(4);
        let mut model: Vec<(u32, u32)> = Vec::new(); // front = MRU
        let ops: Vec<u32> = (0..500).map(|i| (i * 7 + 3) % 13).collect();
        for (step, key) in ops.into_iter().enumerate() {
            if step % 3 == 0 {
                // insert
                let val = step as u32;
                if let Some(pos) = model.iter().position(|(k, _)| *k == key) {
                    model.remove(pos);
                } else if model.len() == 4 {
                    model.pop();
                }
                model.insert(0, (key, val));
                c.insert(key, val);
            } else {
                // get
                let expected = model.iter().position(|(k, _)| *k == key).map(|pos| {
                    let entry = model.remove(pos);
                    model.insert(0, entry);
                    model[0].1
                });
                assert_eq!(c.get(&key), expected, "step {step} key {key}");
            }
            assert_eq!(c.len(), model.len());
        }
    }

    #[test]
    fn memory_accounting() {
        let mut c = LruCache::new(100);
        for i in 0..10 {
            c.insert(i, i);
        }
        assert_eq!(c.memory_bytes(64), 640);
        assert_eq!(c.capacity(), 100);
    }
}
