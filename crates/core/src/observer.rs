//! Callback-style event handling — the Watchdog API shape.
//!
//! The paper implements its local DSIs "using the Python Watchdog
//! module" (§III-A1), whose users write *handlers* and `schedule()`
//! them against paths. This module offers the same ergonomics on top
//! of the subscription machinery: register [`EventHandler`]s with
//! filters, start the observer, and callbacks fire on a background
//! thread.

use crate::filter::EventFilter;
use crate::interface::FsMonitor;
use fsmon_events::{EventKind, StandardEvent};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A callback target for file-system events.
pub trait EventHandler: Send {
    /// Called for every event matching the handler's filter, in order.
    fn on_event(&mut self, event: &StandardEvent);

    /// Called when the pipeline signals native-queue loss (an
    /// `Overflow` control event). Default: ignore.
    fn on_overflow(&mut self, _event: &StandardEvent) {}
}

impl<F: FnMut(&StandardEvent) + Send> EventHandler for F {
    fn on_event(&mut self, event: &StandardEvent) {
        self(event)
    }
}

struct Scheduled {
    filter: EventFilter,
    handler: Box<dyn EventHandler>,
}

/// Owns a monitor and a set of scheduled handlers; dispatches events
/// to them from a background thread.
pub struct Observer {
    monitor: Option<FsMonitor>,
    scheduled: Vec<Scheduled>,
    poll_interval: Duration,
}

impl Observer {
    /// Wrap a monitor (not yet started).
    pub fn new(monitor: FsMonitor) -> Observer {
        Observer {
            monitor: Some(monitor),
            scheduled: Vec::new(),
            poll_interval: Duration::from_millis(10),
        }
    }

    /// Register `handler` for events matching `filter` (Watchdog's
    /// `schedule`).
    pub fn schedule(&mut self, filter: EventFilter, handler: impl EventHandler + 'static) {
        self.scheduled.push(Scheduled {
            filter,
            handler: Box::new(handler),
        });
    }

    /// Set the pump interval for the dispatch thread.
    pub fn set_poll_interval(&mut self, interval: Duration) {
        self.poll_interval = interval;
    }

    /// Start dispatching on a background thread. Returns a guard that
    /// stops the observer when dropped (or via
    /// [`ObserverGuard::stop`]).
    pub fn start(mut self) -> ObserverGuard {
        let mut monitor = self.monitor.take().expect("monitor present");
        // One umbrella subscription; per-handler filtering happens at
        // dispatch so each handler keeps its own view.
        let sub = monitor.subscribe(EventFilter::all());
        let mut scheduled = std::mem::take(&mut self.scheduled);
        let stop = Arc::new(AtomicBool::new(false));
        let stop_t = stop.clone();
        let interval = self.poll_interval;
        let observer_scope = fsmon_telemetry::root().scope("observer");
        let dispatched = observer_scope.counter("dispatched_total");
        let overflows = observer_scope.counter("overflows_total");
        let thread = std::thread::Builder::new()
            .name("fsmonitor-observer".into())
            .spawn(move || {
                let _ = monitor.start();
                while !stop_t.load(Ordering::Relaxed) {
                    let n = monitor.pump(4096);
                    for ev in sub.drain() {
                        for s in scheduled.iter_mut() {
                            if ev.kind == EventKind::Overflow {
                                overflows.inc();
                                s.handler.on_overflow(&ev);
                            } else if s.filter.matches(&ev) {
                                dispatched.inc();
                                s.handler.on_event(&ev);
                            }
                        }
                    }
                    if n == 0 {
                        std::thread::sleep(interval);
                    }
                }
            })
            .expect("spawn observer thread");
        ObserverGuard {
            stop,
            thread: Some(thread),
        }
    }
}

/// Handle to a running observer.
pub struct ObserverGuard {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ObserverGuard {
    /// Stop dispatching and join the thread.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ObserverGuard {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MonitorConfig;
    use crate::dsi::local::SimInotifyDsi;
    use fsmon_localfs::{InotifySim, SimFs};
    use parking_lot::Mutex;

    fn monitor(fs: &Arc<SimFs>) -> FsMonitor {
        let ino = InotifySim::attach(fs, 4096, 1 << 16);
        FsMonitor::new(
            Box::new(SimInotifyDsi::recursive(ino, fs.clone(), "/")),
            MonitorConfig::without_store(),
        )
    }

    #[test]
    fn closure_handlers_receive_filtered_events() {
        let fs = SimFs::new();
        let mut observer = Observer::new(monitor(&fs));
        let all_seen = Arc::new(Mutex::new(Vec::new()));
        let deletes_seen = Arc::new(Mutex::new(Vec::new()));
        {
            let all_seen = all_seen.clone();
            observer.schedule(EventFilter::all(), move |ev: &StandardEvent| {
                all_seen.lock().push(ev.path.clone());
            });
        }
        {
            let deletes_seen = deletes_seen.clone();
            observer.schedule(
                EventFilter::all().with_kinds([EventKind::Delete]),
                move |ev: &StandardEvent| {
                    deletes_seen.lock().push(ev.path.clone());
                },
            );
        }
        observer.set_poll_interval(Duration::from_millis(1));
        let guard = observer.start();
        fs.create("/a");
        fs.modify("/a");
        fs.delete("/a");
        let deadline = std::time::Instant::now() + Duration::from_secs(3);
        while all_seen.lock().len() < 3 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        guard.stop();
        assert_eq!(all_seen.lock().len(), 3);
        assert_eq!(deletes_seen.lock().as_slice(), &["/a".to_string()]);
    }

    #[test]
    fn struct_handler_with_overflow_hook() {
        struct Counter {
            events: Arc<Mutex<u64>>,
            overflows: Arc<Mutex<u64>>,
        }
        impl EventHandler for Counter {
            fn on_event(&mut self, _event: &StandardEvent) {
                *self.events.lock() += 1;
            }
            fn on_overflow(&mut self, _event: &StandardEvent) {
                *self.overflows.lock() += 1;
            }
        }
        // Tiny inotify queue so overflow actually happens.
        let fs = SimFs::new();
        let ino = InotifySim::attach(&fs, 4096, 4);
        let m = FsMonitor::new(
            Box::new(SimInotifyDsi::recursive(ino, fs.clone(), "/")),
            MonitorConfig::without_store(),
        );
        let events = Arc::new(Mutex::new(0));
        let overflows = Arc::new(Mutex::new(0));
        let mut observer = Observer::new(m);
        observer.schedule(
            EventFilter::all(),
            Counter {
                events: events.clone(),
                overflows: overflows.clone(),
            },
        );
        observer.set_poll_interval(Duration::from_millis(1));
        // Generate a burst before the observer can drain: overflow.
        for i in 0..50 {
            fs.create(&format!("/f{i}"));
        }
        let guard = observer.start();
        let deadline = std::time::Instant::now() + Duration::from_secs(3);
        while *overflows.lock() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        guard.stop();
        assert!(*overflows.lock() >= 1, "overflow hook fired");
        assert!(*events.lock() >= 4, "surviving events dispatched");
    }

    #[test]
    fn guard_drop_stops_cleanly() {
        let fs = SimFs::new();
        let observer = Observer::new(monitor(&fs));
        let guard = observer.start();
        drop(guard); // must not hang or panic
    }
}
