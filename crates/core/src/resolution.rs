//! The resolution layer: standardization, id assignment, rename
//! pairing, and batching.
//!
//! "As events are received from a DSI plugin they are immediately placed
//! in the processing queue. The events are then processed to resolve
//! and dereference paths such that events can be transformed into
//! various representations" (§III-A2).

use crate::dsi::RawEvent;
use fsmon_events::{EventId, EventKind, StandardEvent};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

/// Throughput and composition counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResolutionStats {
    /// Raw events standardized.
    pub processed: u64,
    /// `MovedTo` events enriched with their source path via cookie
    /// pairing.
    pub renames_paired: u64,
    /// Overflow control events observed (signals native-queue loss).
    pub overflows: u64,
}

/// The resolution layer for one monitor.
pub struct ResolutionLayer {
    watch_root: String,
    next_id: EventId,
    /// cookie → relative source path of a pending `MovedFrom`.
    pending_moves: HashMap<u32, String>,
    /// Source path of an immediately preceding FSEvents `ItemRenamed`,
    /// awaiting its destination half.
    pending_fsevents_rename: Option<String>,
    stats: ResolutionStats,
    t_processed: Arc<fsmon_telemetry::Counter>,
    t_renames: Arc<fsmon_telemetry::Counter>,
    t_overflows: Arc<fsmon_telemetry::Counter>,
    /// Depth of the cookie-pairing queue (pending `MovedFrom` halves).
    t_pending: Arc<fsmon_telemetry::Gauge>,
}

impl ResolutionLayer {
    /// A resolution layer standardizing against `watch_root`.
    pub fn new(watch_root: impl Into<String>) -> ResolutionLayer {
        let scope = fsmon_telemetry::root().scope("resolution");
        ResolutionLayer {
            watch_root: watch_root.into(),
            next_id: 0,
            pending_moves: HashMap::new(),
            pending_fsevents_rename: None,
            stats: ResolutionStats::default(),
            t_processed: scope.counter("processed_total"),
            t_renames: scope.counter("renames_paired_total"),
            t_overflows: scope.counter("overflows_total"),
            t_pending: scope.gauge("pending_renames"),
        }
    }

    /// The watch root events are standardized against.
    pub fn watch_root(&self) -> &str {
        &self.watch_root
    }

    /// Counters so far.
    pub fn stats(&self) -> ResolutionStats {
        self.stats
    }

    /// Highest event id assigned.
    pub fn last_id(&self) -> EventId {
        self.next_id
    }

    /// Standardize one raw event: translate the native dialect, stamp
    /// an id and wall-clock time, and pair renames by cookie.
    pub fn resolve(&mut self, raw: RawEvent) -> StandardEvent {
        let is_fsevents = matches!(raw, RawEvent::FsEvents(_));
        let mut ev = match raw {
            RawEvent::Inotify { event, dir_rel } => event.to_standard(&self.watch_root, &dir_rel),
            RawEvent::Kqueue(event) => event.to_standard(&self.watch_root),
            RawEvent::FsEvents(event) => event.to_standard(&self.watch_root),
            RawEvent::Fsw(event) => event.to_standard(&self.watch_root),
            RawEvent::Standard(event) => event,
        };
        // FSEvents reports both halves of a rename as ItemRenamed with
        // no direction; pair consecutive rename events (the Watchdog
        // heuristic): the first is the source, the second the
        // destination.
        if is_fsevents && ev.kind == EventKind::MovedFrom {
            match self.pending_fsevents_rename.take() {
                Some(old) => {
                    ev.kind = EventKind::MovedTo;
                    ev.old_path = Some(old);
                    self.stats.renames_paired += 1;
                    self.t_renames.inc();
                }
                None => {
                    self.pending_fsevents_rename = Some(ev.path.clone());
                }
            }
        } else {
            // Any intervening event breaks the pair.
            self.pending_fsevents_rename = None;
        }
        self.next_id += 1;
        ev.id = self.next_id;
        if ev.timestamp_ns == 0 {
            ev.timestamp_ns = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0);
        }
        match ev.kind {
            EventKind::MovedFrom if ev.cookie != 0 => {
                let was_new = self
                    .pending_moves
                    .insert(ev.cookie, ev.path.clone())
                    .is_none();
                if was_new {
                    self.t_pending.add(1);
                }
            }
            EventKind::MovedTo if ev.cookie != 0 => {
                if let Some(old) = self.pending_moves.remove(&ev.cookie) {
                    ev.old_path = Some(old);
                    self.stats.renames_paired += 1;
                    self.t_renames.inc();
                    self.t_pending.sub(1);
                }
            }
            EventKind::Overflow => {
                self.stats.overflows += 1;
                self.t_overflows.inc();
            }
            _ => {}
        }
        self.stats.processed += 1;
        self.t_processed.inc();
        ev
    }

    /// Standardize a batch, preserving order.
    pub fn resolve_batch(&mut self, raw: Vec<RawEvent>) -> Vec<StandardEvent> {
        raw.into_iter().map(|r| self.resolve(r)).collect()
    }
}

impl Drop for ResolutionLayer {
    fn drop(&mut self) {
        // Unpaired halves die with the layer; keep the global queue-depth
        // gauge from drifting upward across monitor lifetimes.
        self.t_pending.sub(self.pending_moves.len() as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmon_events::inotify::{InotifyEvent, InotifyMask};
    use fsmon_events::MonitorSource;

    fn inotify_raw(mask: u32, cookie: u32, name: &str) -> RawEvent {
        RawEvent::Inotify {
            event: InotifyEvent {
                wd: 1,
                mask: InotifyMask(mask),
                cookie,
                name: name.to_string(),
            },
            dir_rel: String::new(),
        }
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut r = ResolutionLayer::new("/root");
        let a = r.resolve(inotify_raw(InotifyMask::IN_CREATE, 0, "a"));
        let b = r.resolve(inotify_raw(InotifyMask::IN_CREATE, 0, "b"));
        assert_eq!(a.id, 1);
        assert_eq!(b.id, 2);
        assert_eq!(r.last_id(), 2);
    }

    #[test]
    fn timestamps_are_stamped() {
        let mut r = ResolutionLayer::new("/root");
        let ev = r.resolve(inotify_raw(InotifyMask::IN_CREATE, 0, "a"));
        assert!(ev.timestamp_ns > 0);
    }

    #[test]
    fn existing_timestamps_preserved() {
        let mut r = ResolutionLayer::new("/root");
        let pre = StandardEvent::new(EventKind::Create, "/root", "f").with_timestamp(42);
        let ev = r.resolve(RawEvent::Standard(pre));
        assert_eq!(ev.timestamp_ns, 42);
    }

    #[test]
    fn rename_pairing_by_cookie() {
        let mut r = ResolutionLayer::new("/root");
        r.resolve(inotify_raw(InotifyMask::IN_MOVED_FROM, 7, "hello.txt"));
        let to = r.resolve(inotify_raw(InotifyMask::IN_MOVED_TO, 7, "hi.txt"));
        assert_eq!(to.old_path.as_deref(), Some("/hello.txt"));
        assert_eq!(r.stats().renames_paired, 1);
    }

    #[test]
    fn unpaired_move_to_has_no_old_path() {
        let mut r = ResolutionLayer::new("/root");
        let to = r.resolve(inotify_raw(InotifyMask::IN_MOVED_TO, 9, "hi.txt"));
        assert_eq!(to.old_path, None);
    }

    #[test]
    fn fsevents_consecutive_renames_pair_into_from_to() {
        use fsmon_events::fsevents::{FsEventFlags, FsEventsEvent};
        let mut r = ResolutionLayer::new("/root");
        let ren = |id: u64, path: &str| {
            RawEvent::FsEvents(FsEventsEvent {
                event_id: id,
                flags: FsEventFlags(FsEventFlags::ITEM_RENAMED | FsEventFlags::ITEM_IS_FILE),
                path: format!("/root{path}"),
            })
        };
        let from = r.resolve(ren(1, "/hello.txt"));
        let to = r.resolve(ren(2, "/hi.txt"));
        assert_eq!(from.kind, EventKind::MovedFrom);
        assert_eq!(to.kind, EventKind::MovedTo);
        assert_eq!(to.old_path.as_deref(), Some("/hello.txt"));
        assert_eq!(r.stats().renames_paired, 1);
    }

    #[test]
    fn fsevents_rename_pair_broken_by_intervening_event() {
        use fsmon_events::fsevents::{FsEventFlags, FsEventsEvent};
        let mut r = ResolutionLayer::new("/root");
        let raw = |flags: u32, path: &str| {
            RawEvent::FsEvents(FsEventsEvent {
                event_id: 1,
                flags: FsEventFlags(flags | FsEventFlags::ITEM_IS_FILE),
                path: format!("/root{path}"),
            })
        };
        r.resolve(raw(FsEventFlags::ITEM_RENAMED, "/a"));
        r.resolve(raw(FsEventFlags::ITEM_MODIFIED, "/x"));
        let second = r.resolve(raw(FsEventFlags::ITEM_RENAMED, "/b"));
        // The /a half expired; /b starts a new pair (still a source).
        assert_eq!(second.kind, EventKind::MovedFrom);
    }

    #[test]
    fn overflow_counted() {
        let mut r = ResolutionLayer::new("/root");
        r.resolve(inotify_raw(InotifyMask::IN_Q_OVERFLOW, 0, ""));
        assert_eq!(r.stats().overflows, 1);
    }

    #[test]
    fn batch_preserves_order_and_counts() {
        let mut r = ResolutionLayer::new("/root");
        let out = r.resolve_batch(vec![
            inotify_raw(InotifyMask::IN_CREATE, 0, "a"),
            inotify_raw(InotifyMask::IN_MODIFY, 0, "a"),
            inotify_raw(InotifyMask::IN_DELETE, 0, "a"),
        ]);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].kind, EventKind::Create);
        assert_eq!(out[1].kind, EventKind::Modify);
        assert_eq!(out[2].kind, EventKind::Delete);
        assert_eq!(r.stats().processed, 3);
        assert!(out.iter().all(|e| e.source == MonitorSource::Inotify));
    }
}
