//! A sharded, lock-striped LRU cache for concurrent resolvers.
//!
//! The collector's parallel `fid2path` worker pool (paper §IV — the
//! resolution stage is the pipeline's dominant cost) shares one cache
//! across workers. A single `Mutex<LruCache>` would serialize exactly
//! the stage we parallelized, so [`ShardedLruCache`] stripes the key
//! space over N independent [`LruCache`] shards, each behind its own
//! mutex, routed by key hash. Contention drops by ~N while the
//! aggregate capacity, stats, and eviction behaviour stay per-shard
//! LRU (global recency is approximated, as in any striped LRU).

use crate::lru::{LruCache, LruStats};
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

/// A lock-striped LRU: N shards of [`LruCache`] routed by key hash.
///
/// All methods take `&self`, so one instance can be shared across a
/// worker pool behind an `Arc`. Capacity is split evenly across
/// shards (rounded up, so total capacity is at least the requested
/// value); capacity 0 disables caching entirely, matching
/// [`LruCache::new`].
pub struct ShardedLruCache<K, V> {
    shards: Vec<Mutex<LruCache<K, V>>>,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V: Clone> ShardedLruCache<K, V> {
    /// A cache of `capacity` total entries striped over `shards` locks
    /// (`shards` is clamped to at least 1).
    pub fn new(capacity: usize, shards: usize) -> ShardedLruCache<K, V> {
        let shards = shards.max(1);
        let per_shard = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(shards)
        };
        ShardedLruCache {
            shards: (0..shards)
                .map(|_| Mutex::new(LruCache::new(per_shard)))
                .collect(),
            capacity,
        }
    }

    /// Mirror per-shard counters into telemetry instruments under
    /// `scope`. The registry deduplicates by name+labels, so all
    /// shards feed the same `hits_total`/`misses_total`/
    /// `evictions_total` counters and `entries` gauge additively.
    pub fn instrument(self, scope: &fsmon_telemetry::Scope) -> ShardedLruCache<K, V> {
        ShardedLruCache {
            shards: self
                .shards
                .into_iter()
                .map(|s| Mutex::new(s.into_inner().unwrap().instrument(scope)))
                .collect(),
            capacity: self.capacity,
        }
    }

    fn shard_of(&self, key: &K) -> &Mutex<LruCache<K, V>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Configured total capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Current entry count summed over shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// Whether all shards are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss/eviction counters summed over shards.
    pub fn stats(&self) -> LruStats {
        let mut total = LruStats::default();
        for shard in &self.shards {
            let s = shard.lock().unwrap().stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
        }
        total
    }

    /// Approximate resident bytes at `entry_bytes` per entry.
    pub fn memory_bytes(&self, entry_bytes: usize) -> usize {
        self.len() * entry_bytes
    }

    /// Look up `key` in its shard, promoting on hit.
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard_of(key).lock().unwrap().get(key)
    }

    /// Insert (or refresh) `key` in its shard.
    pub fn insert(&self, key: K, value: V) {
        self.shard_of(&key).lock().unwrap().insert(key, value)
    }

    /// Remove `key` from its shard.
    pub fn remove(&self, key: &K) -> Option<V> {
        self.shard_of(key).lock().unwrap().remove(key)
    }

    /// Clear every shard (counters survive, as for [`LruCache`]).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().unwrap().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn basic_get_insert_remove() {
        let cache: ShardedLruCache<u64, String> = ShardedLruCache::new(100, 8);
        assert_eq!(cache.shard_count(), 8);
        assert_eq!(cache.get(&1), None);
        cache.insert(1, "one".into());
        cache.insert(2, "two".into());
        assert_eq!(cache.get(&1).as_deref(), Some("one"));
        assert_eq!(cache.remove(&2).as_deref(), Some("two"));
        assert_eq!(cache.get(&2), None);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache: ShardedLruCache<u64, u64> = ShardedLruCache::new(0, 4);
        cache.insert(1, 1);
        assert_eq!(cache.get(&1), None);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn capacity_splits_but_totals_at_least_requested() {
        let cache: ShardedLruCache<u64, u64> = ShardedLruCache::new(10, 4);
        for i in 0..1000 {
            cache.insert(i, i);
        }
        // Per-shard ceil(10/4)=3 → at most 12 resident, at least
        // bounded well below the 1000 inserted.
        assert!(
            cache.len() <= 12,
            "len {} exceeds striped capacity",
            cache.len()
        );
        assert!(cache.stats().evictions >= 1000 - 12);
    }

    /// Satellite stress test: hammer the cache from many threads and
    /// check the shard-summed stats are conserved — every lookup is
    /// accounted as exactly one hit or miss, evictions never exceed
    /// inserts, and residency respects striped capacity.
    #[test]
    fn concurrent_stress_conserves_stats() {
        let cache: Arc<ShardedLruCache<u64, u64>> = Arc::new(ShardedLruCache::new(256, 8));
        let gets = Arc::new(AtomicU64::new(0));
        let inserts = Arc::new(AtomicU64::new(0));
        let n_threads = 8;
        let per_thread = 5_000u64;
        let mut handles = Vec::new();
        for t in 0..n_threads {
            let cache = cache.clone();
            let gets = gets.clone();
            let inserts = inserts.clone();
            handles.push(std::thread::spawn(move || {
                // Overlapping key ranges so threads contend on shards.
                for i in 0..per_thread {
                    let key = (t * 1_000 + i) % 2_048;
                    match i % 4 {
                        0 => {
                            cache.insert(key, i);
                            inserts.fetch_add(1, Ordering::Relaxed);
                        }
                        3 => {
                            cache.remove(&key);
                        }
                        _ => {
                            cache.get(&key);
                            gets.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = cache.stats();
        let gets = gets.load(Ordering::Relaxed);
        let inserts = inserts.load(Ordering::Relaxed);
        assert_eq!(
            stats.hits + stats.misses,
            gets,
            "every get must count as exactly one hit or miss"
        );
        assert!(
            stats.evictions <= inserts,
            "cannot evict more than inserted"
        );
        // 256 split over 8 shards = 32 each, exact striped bound.
        assert!(cache.len() <= 256, "len {} over capacity", cache.len());
        assert_eq!(cache.capacity(), 256);
    }
}
