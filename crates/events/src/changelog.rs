//! The Lustre Changelog record-type vocabulary.
//!
//! Lustre's MDT Changelog tags every record with a numeric operation code
//! rendered as `NNTYPE` (`01CREAT`, `17MTIME`, …). This module defines the
//! record types the paper enumerates in §IV-1 (plus `OPEN`/`CLOSE`, which
//! Lustre records and the paper's Table IX reports), their numeric codes
//! (matching `lustre_user.h`), and the mapping into the standardized
//! [`EventKind`] vocabulary.

use crate::kind::EventKind;
use serde::{Deserialize, Serialize};

/// A Lustre Changelog record type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChangelogKind {
    /// Creation of a regular file.
    Creat,
    /// Creation of a directory.
    Mkdir,
    /// Hard link.
    Hlink,
    /// Soft link.
    Slink,
    /// Creation of a device file.
    Mknod,
    /// Deletion of a regular file.
    Unlnk,
    /// Deletion of a directory.
    Rmdir,
    /// Rename source (`RENME` carries old + new FIDs, §IV-1).
    Renme,
    /// Rename target.
    Rnmto,
    /// File opened.
    Open,
    /// File closed.
    Close,
    /// ioctl on a file or directory.
    Ioctl,
    /// Truncate of a regular file.
    Trunc,
    /// Attribute change.
    Sattr,
    /// Extended attribute change.
    Xattr,
    /// Modification of a regular file.
    Mtime,
}

impl ChangelogKind {
    /// All record types, in code order.
    pub const ALL: [ChangelogKind; 16] = [
        ChangelogKind::Creat,
        ChangelogKind::Mkdir,
        ChangelogKind::Hlink,
        ChangelogKind::Slink,
        ChangelogKind::Mknod,
        ChangelogKind::Unlnk,
        ChangelogKind::Rmdir,
        ChangelogKind::Renme,
        ChangelogKind::Rnmto,
        ChangelogKind::Open,
        ChangelogKind::Close,
        ChangelogKind::Ioctl,
        ChangelogKind::Trunc,
        ChangelogKind::Sattr,
        ChangelogKind::Xattr,
        ChangelogKind::Mtime,
    ];

    /// The numeric operation code (as in `lustre_user.h`).
    pub fn code(self) -> u8 {
        match self {
            ChangelogKind::Creat => 1,
            ChangelogKind::Mkdir => 2,
            ChangelogKind::Hlink => 3,
            ChangelogKind::Slink => 4,
            ChangelogKind::Mknod => 5,
            ChangelogKind::Unlnk => 6,
            ChangelogKind::Rmdir => 7,
            ChangelogKind::Renme => 8,
            ChangelogKind::Rnmto => 9,
            ChangelogKind::Open => 10,
            ChangelogKind::Close => 11,
            ChangelogKind::Ioctl => 12,
            ChangelogKind::Trunc => 13,
            ChangelogKind::Sattr => 14,
            ChangelogKind::Xattr => 15,
            ChangelogKind::Mtime => 17,
        }
    }

    /// Inverse of [`code`](ChangelogKind::code).
    pub fn from_code(code: u8) -> Option<ChangelogKind> {
        ChangelogKind::ALL
            .iter()
            .copied()
            .find(|k| k.code() == code)
    }

    /// The 5-letter type name as printed by `lfs changelog`.
    pub fn name(self) -> &'static str {
        match self {
            ChangelogKind::Creat => "CREAT",
            ChangelogKind::Mkdir => "MKDIR",
            ChangelogKind::Hlink => "HLINK",
            ChangelogKind::Slink => "SLINK",
            ChangelogKind::Mknod => "MKNOD",
            ChangelogKind::Unlnk => "UNLNK",
            ChangelogKind::Rmdir => "RMDIR",
            ChangelogKind::Renme => "RENME",
            ChangelogKind::Rnmto => "RNMTO",
            ChangelogKind::Open => "OPEN",
            ChangelogKind::Close => "CLOSE",
            ChangelogKind::Ioctl => "IOCTL",
            ChangelogKind::Trunc => "TRUNC",
            ChangelogKind::Sattr => "SATTR",
            ChangelogKind::Xattr => "XATTR",
            ChangelogKind::Mtime => "MTIME",
        }
    }

    /// The `NNTYPE` label as it appears in the Changelog (`01CREAT`).
    pub fn label(self) -> String {
        format!("{:02}{}", self.code(), self.name())
    }

    /// Parse an `NNTYPE` label or bare type name.
    pub fn parse(s: &str) -> Option<ChangelogKind> {
        let name = s.trim_start_matches(|c: char| c.is_ascii_digit());
        ChangelogKind::ALL
            .iter()
            .copied()
            .find(|k| k.name() == name)
    }

    /// Map to the standardized event kind (and whether the subject is a
    /// directory, when the record type itself implies it).
    pub fn to_standard(self) -> (EventKind, bool) {
        match self {
            ChangelogKind::Creat => (EventKind::Create, false),
            ChangelogKind::Mkdir => (EventKind::Create, true),
            ChangelogKind::Hlink => (EventKind::HardLink, false),
            ChangelogKind::Slink => (EventKind::SymLink, false),
            ChangelogKind::Mknod => (EventKind::DeviceNode, false),
            ChangelogKind::Unlnk => (EventKind::Delete, false),
            ChangelogKind::Rmdir => (EventKind::Delete, true),
            ChangelogKind::Renme => (EventKind::MovedFrom, false),
            ChangelogKind::Rnmto => (EventKind::MovedTo, false),
            ChangelogKind::Open => (EventKind::Open, false),
            ChangelogKind::Close => (EventKind::Close, false),
            ChangelogKind::Ioctl => (EventKind::Ioctl, false),
            ChangelogKind::Trunc => (EventKind::Truncate, false),
            ChangelogKind::Sattr => (EventKind::Attrib, false),
            ChangelogKind::Xattr => (EventKind::Xattr, false),
            ChangelogKind::Mtime => (EventKind::Modify, false),
        }
    }

    /// Whether records of this type delete their target, so resolving the
    /// target FID will fail and Algorithm 1 must fall back to the parent.
    pub fn deletes_target(self) -> bool {
        matches!(self, ChangelogKind::Unlnk | ChangelogKind::Rmdir)
    }

    /// Whether records of this type carry the extra rename FIDs
    /// (`s=[…]`, `sp=[…]` in Table I).
    pub fn is_rename(self) -> bool {
        matches!(self, ChangelogKind::Renme)
    }
}

impl std::fmt::Display for ChangelogKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A set of changelog record types — Lustre's `changelog_mask`
/// (`lctl set_param mdd.*.changelog_mask=...`), which controls which
/// operations the MDT records at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChangelogMask(u32);

impl ChangelogMask {
    /// Record nothing.
    pub const NONE: ChangelogMask = ChangelogMask(0);
    /// Record every type.
    pub const ALL: ChangelogMask = ChangelogMask(u32::MAX);

    /// Lustre's default mask: everything except OPEN and CLOSE (the
    /// high-rate types sites enable explicitly).
    pub fn default_mask() -> ChangelogMask {
        ChangelogMask::ALL
            .without(ChangelogKind::Open)
            .without(ChangelogKind::Close)
    }

    /// This mask plus `kind`.
    #[must_use]
    pub fn with(self, kind: ChangelogKind) -> ChangelogMask {
        ChangelogMask(self.0 | (1 << kind.code()))
    }

    /// This mask minus `kind`.
    #[must_use]
    pub fn without(self, kind: ChangelogKind) -> ChangelogMask {
        ChangelogMask(self.0 & !(1 << kind.code()))
    }

    /// Whether `kind` is recorded.
    pub fn records(self, kind: ChangelogKind) -> bool {
        self.0 & (1 << kind.code()) != 0
    }

    /// Build from a list of type names (the `lctl` syntax).
    pub fn from_names(names: &[&str]) -> Option<ChangelogMask> {
        let mut mask = ChangelogMask::NONE;
        for name in names {
            mask = mask.with(ChangelogKind::parse(name)?);
        }
        Some(mask)
    }
}

impl Default for ChangelogMask {
    fn default() -> Self {
        ChangelogMask::default_mask()
    }
}

/// The rename-specific FID pair carried by `RENME` records (Table I:
/// `s=[new fid]`, `sp=[old fid]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChangelogRename<F> {
    /// The FID the file has been renamed to (`s=[…]`).
    pub new_fid: F,
    /// The original file's FID (`sp=[…]`).
    pub old_fid: F,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_match_lustre_user_h() {
        assert_eq!(ChangelogKind::Creat.label(), "01CREAT");
        assert_eq!(ChangelogKind::Mkdir.label(), "02MKDIR");
        assert_eq!(ChangelogKind::Unlnk.label(), "06UNLNK");
        assert_eq!(ChangelogKind::Renme.label(), "08RENME");
        assert_eq!(ChangelogKind::Mtime.label(), "17MTIME");
    }

    #[test]
    fn code_roundtrips() {
        for k in ChangelogKind::ALL {
            assert_eq!(ChangelogKind::from_code(k.code()), Some(k));
        }
        assert_eq!(ChangelogKind::from_code(0), None);
        assert_eq!(ChangelogKind::from_code(16), None);
    }

    #[test]
    fn parse_accepts_label_and_bare_name() {
        assert_eq!(ChangelogKind::parse("01CREAT"), Some(ChangelogKind::Creat));
        assert_eq!(ChangelogKind::parse("CREAT"), Some(ChangelogKind::Creat));
        assert_eq!(ChangelogKind::parse("17MTIME"), Some(ChangelogKind::Mtime));
        assert_eq!(ChangelogKind::parse("99BOGUS"), None);
    }

    #[test]
    fn standard_mapping_directionality() {
        assert_eq!(
            ChangelogKind::Mkdir.to_standard(),
            (EventKind::Create, true)
        );
        assert_eq!(
            ChangelogKind::Rmdir.to_standard(),
            (EventKind::Delete, true)
        );
        assert_eq!(
            ChangelogKind::Creat.to_standard(),
            (EventKind::Create, false)
        );
        assert_eq!(
            ChangelogKind::Mtime.to_standard(),
            (EventKind::Modify, false)
        );
    }

    #[test]
    fn deletion_types() {
        assert!(ChangelogKind::Unlnk.deletes_target());
        assert!(ChangelogKind::Rmdir.deletes_target());
        assert!(!ChangelogKind::Renme.deletes_target());
    }

    #[test]
    fn rename_type() {
        assert!(ChangelogKind::Renme.is_rename());
        assert!(!ChangelogKind::Rnmto.is_rename());
    }

    #[test]
    fn default_mask_excludes_open_close() {
        let mask = ChangelogMask::default_mask();
        assert!(!mask.records(ChangelogKind::Open));
        assert!(!mask.records(ChangelogKind::Close));
        for k in ChangelogKind::ALL {
            if !matches!(k, ChangelogKind::Open | ChangelogKind::Close) {
                assert!(mask.records(k), "{k:?}");
            }
        }
    }

    #[test]
    fn mask_with_without() {
        let mask = ChangelogMask::NONE.with(ChangelogKind::Creat);
        assert!(mask.records(ChangelogKind::Creat));
        assert!(!mask.records(ChangelogKind::Unlnk));
        assert!(!mask
            .without(ChangelogKind::Creat)
            .records(ChangelogKind::Creat));
    }

    #[test]
    fn mask_from_names() {
        let mask = ChangelogMask::from_names(&["CREAT", "UNLNK"]).unwrap();
        assert!(mask.records(ChangelogKind::Creat));
        assert!(mask.records(ChangelogKind::Unlnk));
        assert!(!mask.records(ChangelogKind::Mkdir));
        assert_eq!(ChangelogMask::from_names(&["BOGUS"]), None);
    }
}
