//! Event coalescing utilities.
//!
//! High-rate consumers (catalogs, dashboards) often want the *net*
//! effect of a burst rather than every intermediate event — the
//! compression FSEvents performs in-kernel, offered here as a consumer-
//! side utility over standardized events. The resolution layer itself
//! never coalesces (the paper's pipeline is lossless); this is strictly
//! opt-in post-processing.

use crate::event::StandardEvent;
use crate::kind::EventKind;

/// Coalesce a batch: collapse per-path runs into their net effect.
///
/// Rules (applied per path, preserving first-seen order between paths):
///
/// * `Create` followed by any number of `Modify`/`Attrib`-class events
///   stays a single `Create` (the consumer will read the final state).
/// * `Create … Delete` cancels out entirely — the path never existed
///   as far as a catch-up consumer is concerned.
/// * `Modify × N` collapses to one `Modify`.
/// * `Delete` followed by `Create` of the same path becomes a `Modify`
///   (the path exists; its contents changed).
/// * Renames are barriers: a `MovedFrom`/`MovedTo` pair is never
///   merged away, and events before/after a rename of the same path do
///   not merge across it.
/// * Control events (`Overflow`, …) are barriers for everything.
pub fn coalesce(events: &[StandardEvent]) -> Vec<StandardEvent> {
    // Rewrites can expose new merges (Delete+Create becomes Modify,
    // which may now duplicate an earlier Modify), so run single passes
    // to a fixpoint. Each pass only shrinks or rewrites in place, so
    // this terminates quickly (at most a handful of passes).
    let mut current = coalesce_once(events);
    loop {
        let next = coalesce_once(&current);
        if next == current {
            return next;
        }
        current = next;
    }
}

fn coalesce_once(events: &[StandardEvent]) -> Vec<StandardEvent> {
    let mut out: Vec<StandardEvent> = Vec::with_capacity(events.len());
    // Index into `out` of the last un-merged event per path.
    let mut last_for_path: std::collections::HashMap<String, usize> =
        std::collections::HashMap::new();
    // Marks removed entries (cancelled create+delete pairs).
    let mut dead: Vec<bool> = Vec::with_capacity(events.len());

    for ev in events {
        if ev.kind.is_control() || ev.kind.is_move() {
            // Barrier: forget merge state for the involved paths (all
            // paths for control events).
            if ev.kind.is_move() {
                last_for_path.remove(&ev.path);
                if let Some(old) = &ev.old_path {
                    last_for_path.remove(old);
                }
            } else {
                last_for_path.clear();
            }
            dead.push(false);
            out.push(ev.clone());
            continue;
        }
        let merged = match last_for_path.get(&ev.path).copied() {
            Some(idx) if !dead[idx] => {
                let prev_kind = out[idx].kind;
                match (prev_kind, ev.kind) {
                    // Create + mutation ⇒ still Create.
                    (EventKind::Create, k) if is_mutation(k) => true,
                    // Create + Delete ⇒ nothing.
                    (EventKind::Create, EventKind::Delete) => {
                        dead[idx] = true;
                        last_for_path.remove(&ev.path);
                        continue;
                    }
                    // Exact duplicates (including Create+Create and
                    // Delete+Delete from lossy/racy monitors) ⇒ one.
                    (a, b) if a == b => true,
                    // Delete + Create ⇒ Modify.
                    (EventKind::Delete, EventKind::Create) => {
                        out[idx].kind = EventKind::Modify;
                        true
                    }
                    _ => false,
                }
            }
            _ => false,
        };
        if !merged {
            dead.push(false);
            last_for_path.insert(ev.path.clone(), out.len());
            out.push(ev.clone());
        }
    }
    out.into_iter()
        .zip(dead)
        .filter(|(_, d)| !d)
        .map(|(e, _)| e)
        .collect()
}

fn is_mutation(k: EventKind) -> bool {
    matches!(
        k,
        EventKind::Modify
            | EventKind::Truncate
            | EventKind::Attrib
            | EventKind::Xattr
            | EventKind::CloseWrite
            | EventKind::Ioctl
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, path: &str) -> StandardEvent {
        StandardEvent::new(kind, "/r", path)
    }

    fn kinds(events: &[StandardEvent]) -> Vec<(EventKind, String)> {
        events.iter().map(|e| (e.kind, e.path.clone())).collect()
    }

    #[test]
    fn create_then_modifies_is_one_create() {
        let input = vec![
            ev(EventKind::Create, "/f"),
            ev(EventKind::Modify, "/f"),
            ev(EventKind::Modify, "/f"),
            ev(EventKind::Attrib, "/f"),
        ];
        let out = coalesce(&input);
        assert_eq!(kinds(&out), vec![(EventKind::Create, "/f".into())]);
    }

    #[test]
    fn create_then_delete_cancels() {
        let input = vec![
            ev(EventKind::Create, "/tmp1"),
            ev(EventKind::Modify, "/tmp1"),
            ev(EventKind::Delete, "/tmp1"),
            ev(EventKind::Create, "/kept"),
        ];
        let out = coalesce(&input);
        assert_eq!(kinds(&out), vec![(EventKind::Create, "/kept".into())]);
    }

    #[test]
    fn delete_then_create_is_modify() {
        let input = vec![ev(EventKind::Delete, "/f"), ev(EventKind::Create, "/f")];
        let out = coalesce(&input);
        assert_eq!(kinds(&out), vec![(EventKind::Modify, "/f".into())]);
    }

    #[test]
    fn repeated_modifies_collapse() {
        let input = vec![
            ev(EventKind::Modify, "/f"),
            ev(EventKind::Modify, "/f"),
            ev(EventKind::Modify, "/g"),
            ev(EventKind::Modify, "/f"),
        ];
        let out = coalesce(&input);
        assert_eq!(
            kinds(&out),
            vec![
                (EventKind::Modify, "/f".into()),
                (EventKind::Modify, "/g".into())
            ]
        );
    }

    #[test]
    fn renames_are_never_merged() {
        let input = vec![
            ev(EventKind::Create, "/a"),
            ev(EventKind::MovedFrom, "/a"),
            ev(EventKind::MovedTo, "/b"),
            ev(EventKind::Modify, "/b"),
        ];
        let out = coalesce(&input);
        assert_eq!(
            kinds(&out),
            vec![
                (EventKind::Create, "/a".into()),
                (EventKind::MovedFrom, "/a".into()),
                (EventKind::MovedTo, "/b".into()),
                (EventKind::Modify, "/b".into()),
            ]
        );
    }

    #[test]
    fn overflow_is_a_global_barrier() {
        let input = vec![
            ev(EventKind::Modify, "/f"),
            ev(EventKind::Overflow, "/"),
            ev(EventKind::Modify, "/f"),
        ];
        let out = coalesce(&input);
        assert_eq!(out.len(), 3, "no merging across the overflow marker");
    }

    #[test]
    fn interleaved_paths_keep_order() {
        let input = vec![
            ev(EventKind::Create, "/a"),
            ev(EventKind::Create, "/b"),
            ev(EventKind::Modify, "/a"),
            ev(EventKind::Modify, "/b"),
        ];
        let out = coalesce(&input);
        assert_eq!(
            kinds(&out),
            vec![
                (EventKind::Create, "/a".into()),
                (EventKind::Create, "/b".into())
            ]
        );
    }

    #[test]
    fn empty_input() {
        assert!(coalesce(&[]).is_empty());
    }
}
