//! The standardized event record produced by the resolution layer.

use crate::kind::EventKind;
use serde::{Deserialize, Serialize};

/// Monotonically increasing identifier assigned by the resolution layer.
///
/// The interface layer lets consumers replay "all events since id X"
/// (paper §III-A3), so ids must be dense and ordered per monitor.
pub type EventId = u64;

/// Which kind of monitoring facility originally produced an event.
///
/// Carried through the pipeline so consumers can audit provenance and so
/// the resolution layer knows which native translation produced the
/// standardized record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MonitorSource {
    /// Linux inotify (or the simulated inotify kernel).
    Inotify,
    /// BSD/macOS kqueue.
    Kqueue,
    /// macOS FSEvents.
    FsEvents,
    /// Windows FileSystemWatcher.
    FileSystemWatcher,
    /// The scalable Lustre Changelog DSI.
    LustreChangelog,
    /// The portable polling watcher (snapshot diffing over a real FS).
    Polling,
    /// Synthetic events injected by tests or workload generators.
    Synthetic,
}

impl MonitorSource {
    /// Stable numeric tag used by the wire codec.
    pub fn wire_tag(self) -> u8 {
        match self {
            MonitorSource::Inotify => 0,
            MonitorSource::Kqueue => 1,
            MonitorSource::FsEvents => 2,
            MonitorSource::FileSystemWatcher => 3,
            MonitorSource::LustreChangelog => 4,
            MonitorSource::Polling => 5,
            MonitorSource::Synthetic => 6,
        }
    }

    /// Inverse of [`wire_tag`](MonitorSource::wire_tag).
    pub fn from_wire_tag(tag: u8) -> Option<MonitorSource> {
        Some(match tag {
            0 => MonitorSource::Inotify,
            1 => MonitorSource::Kqueue,
            2 => MonitorSource::FsEvents,
            3 => MonitorSource::FileSystemWatcher,
            4 => MonitorSource::LustreChangelog,
            5 => MonitorSource::Polling,
            6 => MonitorSource::Synthetic,
            _ => return None,
        })
    }

    /// All sources, in wire-tag order.
    pub const ALL: [MonitorSource; 7] = [
        MonitorSource::Inotify,
        MonitorSource::Kqueue,
        MonitorSource::FsEvents,
        MonitorSource::FileSystemWatcher,
        MonitorSource::LustreChangelog,
        MonitorSource::Polling,
        MonitorSource::Synthetic,
    ];
}

/// A fully resolved, standardized file-system event.
///
/// This is FSMonitor's common representation: every DSI's native events
/// are translated into this form by the resolution layer before they reach
/// consumers. Paths are stored relative to the watch root, matching the
/// paper's Table II output (`/home/arnab/test CREATE /hello.txt` is watch
/// root + kind + relative path).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StandardEvent {
    /// Resolution-layer sequence number; 0 until assigned.
    pub id: EventId,
    /// The standardized event type.
    pub kind: EventKind,
    /// Whether the subject is a directory (inotify's `IN_ISDIR`).
    pub is_dir: bool,
    /// The watch root the monitor was asked to observe.
    pub watch_root: String,
    /// Path of the subject, relative to `watch_root`, with a leading `/`.
    pub path: String,
    /// For `MovedTo` events whose source is known, the old relative path;
    /// for Lustre `RENME` the resolved old path.
    pub old_path: Option<String>,
    /// Kernel rename cookie pairing `MovedFrom`/`MovedTo` (0 if none).
    pub cookie: u32,
    /// Event time in nanoseconds (simulated clock or wall clock of the
    /// producing node).
    pub timestamp_ns: u64,
    /// Which facility produced the raw event.
    pub source: MonitorSource,
    /// For distributed sources, the index of the MDT whose changelog
    /// recorded the event (`None` for local monitors).
    pub mdt_index: Option<u16>,
    /// Size of the subject in bytes at event time, when the producing
    /// DSI can stat it cheaply (`None` when unknown — local watchers and
    /// removal events carry no size).
    pub size: Option<u64>,
    /// Numeric owner (uid) of the subject at event time, when known.
    pub owner: Option<u32>,
}

impl StandardEvent {
    /// Create a minimal event; the remaining fields take neutral defaults
    /// and can be adjusted with the builder-style `with_*` methods.
    pub fn new(kind: EventKind, watch_root: impl Into<String>, name: impl AsRef<str>) -> Self {
        let name = name.as_ref();
        let path = if name.starts_with('/') {
            name.to_string()
        } else {
            format!("/{name}")
        };
        StandardEvent {
            id: 0,
            kind,
            is_dir: false,
            watch_root: watch_root.into(),
            path,
            old_path: None,
            cookie: 0,
            timestamp_ns: 0,
            source: MonitorSource::Synthetic,
            mdt_index: None,
            size: None,
            owner: None,
        }
    }

    /// Mark the subject as a directory.
    #[must_use]
    pub fn dir(mut self) -> Self {
        self.is_dir = true;
        self
    }

    /// Set the producing source.
    #[must_use]
    pub fn with_source(mut self, source: MonitorSource) -> Self {
        self.source = source;
        self
    }

    /// Set the rename cookie.
    #[must_use]
    pub fn with_cookie(mut self, cookie: u32) -> Self {
        self.cookie = cookie;
        self
    }

    /// Set the old path of a rename destination event.
    #[must_use]
    pub fn with_old_path(mut self, old: impl Into<String>) -> Self {
        self.old_path = Some(old.into());
        self
    }

    /// Set the event timestamp.
    #[must_use]
    pub fn with_timestamp(mut self, ns: u64) -> Self {
        self.timestamp_ns = ns;
        self
    }

    /// Set the MDT index (Lustre provenance).
    #[must_use]
    pub fn with_mdt(mut self, mdt: u16) -> Self {
        self.mdt_index = Some(mdt);
        self
    }

    /// Attach the subject's size in bytes (metadata enrichment).
    #[must_use]
    pub fn with_size(mut self, bytes: u64) -> Self {
        self.size = Some(bytes);
        self
    }

    /// Attach the subject's owner uid (metadata enrichment).
    #[must_use]
    pub fn with_owner(mut self, uid: u32) -> Self {
        self.owner = Some(uid);
        self
    }

    /// Absolute path of the subject: watch root joined with the relative
    /// path.
    pub fn absolute_path(&self) -> String {
        let root = self.watch_root.trim_end_matches('/');
        format!("{root}{}", self.path)
    }

    /// The `KIND[,ISDIR]` column of the Table II rendering.
    pub fn kind_label(&self) -> String {
        if self.is_dir {
            format!("{},ISDIR", self.kind)
        } else {
            self.kind.to_string()
        }
    }

    /// Render in the paper's Table II format:
    /// `<watch_root> <KIND[,ISDIR]> <relative path>`.
    pub fn render_table2(&self) -> String {
        format!("{} {} {}", self.watch_root, self.kind_label(), self.path)
    }

    /// Whether this event concerns `prefix` or anything beneath it.
    ///
    /// Used by consumer-side filtering (paper §IV Consumption). `prefix`
    /// is a relative path with leading `/`; `"/"` matches everything.
    pub fn path_under(&self, prefix: &str) -> bool {
        path_has_prefix(&self.path, prefix)
            || self
                .old_path
                .as_deref()
                .is_some_and(|p| path_has_prefix(p, prefix))
    }
}

/// Component-wise path prefix test: `/a/b` is under `/a` but `/ab` is not.
pub fn path_has_prefix(path: &str, prefix: &str) -> bool {
    let prefix = prefix.trim_end_matches('/');
    if prefix.is_empty() {
        return true;
    }
    match path.strip_prefix(prefix) {
        Some(rest) => rest.is_empty() || rest.starts_with('/'),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalizes_leading_slash() {
        let a = StandardEvent::new(EventKind::Create, "/root", "f.txt");
        let b = StandardEvent::new(EventKind::Create, "/root", "/f.txt");
        assert_eq!(a.path, "/f.txt");
        assert_eq!(a.path, b.path);
    }

    #[test]
    fn table2_rendering_matches_paper() {
        let ev = StandardEvent::new(EventKind::Create, "/home/arnab/test", "hello.txt");
        assert_eq!(ev.render_table2(), "/home/arnab/test CREATE /hello.txt");
        let ev = StandardEvent::new(EventKind::Create, "/home/arnab/test", "okdir").dir();
        assert_eq!(ev.render_table2(), "/home/arnab/test CREATE,ISDIR /okdir");
    }

    #[test]
    fn absolute_path_joins_root() {
        let ev = StandardEvent::new(EventKind::Modify, "/mnt/lustre/", "dir/f");
        assert_eq!(ev.absolute_path(), "/mnt/lustre/dir/f");
    }

    #[test]
    fn path_under_component_boundaries() {
        let ev = StandardEvent::new(EventKind::Create, "/r", "/a/b/c.txt");
        assert!(ev.path_under("/"));
        assert!(ev.path_under("/a"));
        assert!(ev.path_under("/a/b"));
        assert!(ev.path_under("/a/b/c.txt"));
        assert!(!ev.path_under("/a/bc"));
        assert!(!ev.path_under("/x"));
    }

    #[test]
    fn path_under_checks_old_path_too() {
        let ev = StandardEvent::new(EventKind::MovedTo, "/r", "/new/f").with_old_path("/old/f");
        assert!(ev.path_under("/old"));
        assert!(ev.path_under("/new"));
        assert!(!ev.path_under("/other"));
    }

    #[test]
    fn source_wire_tags_roundtrip() {
        for s in MonitorSource::ALL {
            assert_eq!(MonitorSource::from_wire_tag(s.wire_tag()), Some(s));
        }
        assert_eq!(MonitorSource::from_wire_tag(99), None);
    }

    #[test]
    fn builder_methods() {
        let ev = StandardEvent::new(EventKind::MovedTo, "/r", "b")
            .with_cookie(7)
            .with_old_path("/a")
            .with_timestamp(42)
            .with_mdt(3)
            .with_size(4096)
            .with_owner(1001)
            .with_source(MonitorSource::LustreChangelog);
        assert_eq!(ev.cookie, 7);
        assert_eq!(ev.old_path.as_deref(), Some("/a"));
        assert_eq!(ev.timestamp_ns, 42);
        assert_eq!(ev.mdt_index, Some(3));
        assert_eq!(ev.size, Some(4096));
        assert_eq!(ev.owner, Some(1001));
        assert_eq!(ev.source, MonitorSource::LustreChangelog);
    }

    #[test]
    fn prefix_helper_edge_cases() {
        assert!(path_has_prefix("/a", "/"));
        assert!(path_has_prefix("/a", ""));
        assert!(path_has_prefix("/a", "/a/"));
        assert!(!path_has_prefix("/ab", "/a"));
    }
}
