//! Event rendering in each supported representation.
//!
//! The paper's resolution layer does not define "yet another event
//! representation"; instead it populates the event template of whichever
//! format the consumer asked for (§III-A2). [`EventFormatter`] implements
//! that template population for every supported dialect.

use crate::event::StandardEvent;
use crate::fsevents::standard_to_fsevents;
use crate::fswatcher::standard_to_fsw;
use crate::kqueue::standard_to_kqueue;
use serde::{Deserialize, Serialize};

/// The output dialect a consumer requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum EventFormatter {
    /// inotify-style (`/root CREATE /path`) — FSMonitor's default
    /// standard representation (Table II).
    #[default]
    Inotify,
    /// kqueue-style (`NOTE_WRITE /root/path`).
    Kqueue,
    /// FSEvents-style (`ItemCreated ItemIsFile /root/path`).
    FsEvents,
    /// FileSystemWatcher-style (`Created /root/path`).
    FileSystemWatcher,
}

impl EventFormatter {
    /// All dialects.
    pub const ALL: [EventFormatter; 4] = [
        EventFormatter::Inotify,
        EventFormatter::Kqueue,
        EventFormatter::FsEvents,
        EventFormatter::FileSystemWatcher,
    ];

    /// Render `ev` in this dialect.
    pub fn render(self, ev: &StandardEvent) -> String {
        match self {
            EventFormatter::Inotify => ev.render_table2(),
            EventFormatter::Kqueue => {
                let native = standard_to_kqueue(ev, 0);
                format!("{} {}", native.fflags.render(), native.path)
            }
            EventFormatter::FsEvents => {
                let native = standard_to_fsevents(ev, ev.id);
                format!("{} {}", native.flags.render(), native.path)
            }
            EventFormatter::FileSystemWatcher => {
                let native = standard_to_fsw(ev);
                match &native.old_full_path {
                    Some(old) => {
                        format!("{} {} (from {})", native.change_type, native.full_path, old)
                    }
                    None => format!("{} {}", native.change_type, native.full_path),
                }
            }
        }
    }

    /// Render a batch, one event per line.
    pub fn render_batch(self, events: &[StandardEvent]) -> String {
        let mut out = String::new();
        for ev in events {
            out.push_str(&self.render(ev));
            out.push('\n');
        }
        out
    }

    /// Name used in configuration files / CLI flags.
    pub fn as_str(self) -> &'static str {
        match self {
            EventFormatter::Inotify => "inotify",
            EventFormatter::Kqueue => "kqueue",
            EventFormatter::FsEvents => "fsevents",
            EventFormatter::FileSystemWatcher => "filesystemwatcher",
        }
    }

    /// Parse a configuration name.
    pub fn parse(s: &str) -> Option<EventFormatter> {
        EventFormatter::ALL
            .iter()
            .copied()
            .find(|f| f.as_str() == s.to_ascii_lowercase())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::EventKind;

    #[test]
    fn inotify_dialect_matches_table2() {
        let ev = StandardEvent::new(EventKind::Create, "/home/arnab/test", "hello.txt");
        assert_eq!(
            EventFormatter::Inotify.render(&ev),
            "/home/arnab/test CREATE /hello.txt"
        );
    }

    #[test]
    fn kqueue_dialect_uses_note_names() {
        let ev = StandardEvent::new(EventKind::Modify, "/r", "f");
        assert_eq!(EventFormatter::Kqueue.render(&ev), "NOTE_WRITE /r/f");
    }

    #[test]
    fn fsevents_dialect_uses_item_names() {
        let ev = StandardEvent::new(EventKind::Create, "/r", "f");
        assert_eq!(
            EventFormatter::FsEvents.render(&ev),
            "ItemCreated ItemIsFile /r/f"
        );
    }

    #[test]
    fn fsw_dialect_renders_rename_with_old_path() {
        let ev = StandardEvent::new(EventKind::MovedTo, "/r", "b").with_old_path("/a");
        assert_eq!(
            EventFormatter::FileSystemWatcher.render(&ev),
            "Renamed /r/b (from /r/a)"
        );
    }

    #[test]
    fn parse_roundtrips() {
        for f in EventFormatter::ALL {
            assert_eq!(EventFormatter::parse(f.as_str()), Some(f));
        }
        assert_eq!(
            EventFormatter::parse("INOTIFY"),
            Some(EventFormatter::Inotify)
        );
        assert_eq!(EventFormatter::parse("bogus"), None);
    }

    #[test]
    fn batch_renders_one_per_line() {
        let evs = vec![
            StandardEvent::new(EventKind::Create, "/r", "a"),
            StandardEvent::new(EventKind::Delete, "/r", "a"),
        ];
        let out = EventFormatter::Inotify.render_batch(&evs);
        assert_eq!(out.lines().count(), 2);
        assert!(out.contains("CREATE"));
        assert!(out.contains("DELETE"));
    }
}
