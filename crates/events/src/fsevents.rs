//! The macOS FSEvents vocabulary.
//!
//! FSEvents delivers *per-path* flag words over a recursive subtree watch
//! (no per-directory watchers — the reason the paper says it "scales well
//! with the number of directories observed", §II-A). Flags can be
//! coalesced: one event may carry `ItemCreated|ItemModified` for a path
//! that was created and then written within the same latency window.

use crate::event::{MonitorSource, StandardEvent};
use crate::kind::EventKind;
use serde::{Deserialize, Serialize};

/// `kFSEventStreamEventFlag*` bits (from `<CoreServices/FSEvents.h>`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FsEventFlags(pub u32);

impl FsEventFlags {
    /// Events were coalesced because the client could not keep up.
    pub const MUST_SCAN_SUBDIRS: u32 = 0x0000_0001;
    /// Item was created.
    pub const ITEM_CREATED: u32 = 0x0000_0100;
    /// Item was removed.
    pub const ITEM_REMOVED: u32 = 0x0000_0200;
    /// Item metadata was modified.
    pub const ITEM_INODE_META_MOD: u32 = 0x0000_0400;
    /// Item was renamed.
    pub const ITEM_RENAMED: u32 = 0x0000_0800;
    /// Item data was modified.
    pub const ITEM_MODIFIED: u32 = 0x0000_1000;
    /// Item ownership changed.
    pub const ITEM_CHANGE_OWNER: u32 = 0x0000_4000;
    /// Item extended attributes changed.
    pub const ITEM_XATTR_MOD: u32 = 0x0000_8000;
    /// Item is a file.
    pub const ITEM_IS_FILE: u32 = 0x0001_0000;
    /// Item is a directory.
    pub const ITEM_IS_DIR: u32 = 0x0002_0000;
    /// Item is a symlink.
    pub const ITEM_IS_SYMLINK: u32 = 0x0004_0000;

    /// Whether `bit` is set.
    pub fn has(self, bit: u32) -> bool {
        self.0 & bit != 0
    }

    /// Render flag names as Apple's headers spell them.
    pub fn render(self) -> String {
        const NAMES: [(u32, &str); 11] = [
            (FsEventFlags::MUST_SCAN_SUBDIRS, "MustScanSubDirs"),
            (FsEventFlags::ITEM_CREATED, "ItemCreated"),
            (FsEventFlags::ITEM_REMOVED, "ItemRemoved"),
            (FsEventFlags::ITEM_INODE_META_MOD, "ItemInodeMetaMod"),
            (FsEventFlags::ITEM_RENAMED, "ItemRenamed"),
            (FsEventFlags::ITEM_MODIFIED, "ItemModified"),
            (FsEventFlags::ITEM_CHANGE_OWNER, "ItemChangeOwner"),
            (FsEventFlags::ITEM_XATTR_MOD, "ItemXattrMod"),
            (FsEventFlags::ITEM_IS_FILE, "ItemIsFile"),
            (FsEventFlags::ITEM_IS_DIR, "ItemIsDir"),
            (FsEventFlags::ITEM_IS_SYMLINK, "ItemIsSymlink"),
        ];
        NAMES
            .iter()
            .filter(|(bit, _)| self.has(*bit))
            .map(|(_, n)| *n)
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// One FSEvents stream callback entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FsEventsEvent {
    /// Monotonic stream event id (`FSEventStreamEventId`).
    pub event_id: u64,
    /// Flag word for this path.
    pub flags: FsEventFlags,
    /// Absolute path of the item.
    pub path: String,
}

impl FsEventsEvent {
    /// Classify into the standardized [`EventKind`].
    ///
    /// Coalesced flag words are classified by precedence: removal wins
    /// over creation (the item is gone), creation over modification.
    pub fn kind(&self) -> EventKind {
        let f = self.flags;
        if f.has(FsEventFlags::MUST_SCAN_SUBDIRS) {
            EventKind::Overflow
        } else if f.has(FsEventFlags::ITEM_REMOVED) {
            EventKind::Delete
        } else if f.has(FsEventFlags::ITEM_RENAMED) {
            // FSEvents does not say which end of the rename this is; the
            // simulated kernel orders MovedFrom before MovedTo, and the
            // resolution layer pairs them by cookie when available.
            EventKind::MovedFrom
        } else if f.has(FsEventFlags::ITEM_CREATED) {
            EventKind::Create
        } else if f.has(FsEventFlags::ITEM_MODIFIED) {
            EventKind::Modify
        } else if f.has(FsEventFlags::ITEM_XATTR_MOD) {
            EventKind::Xattr
        } else if f.has(FsEventFlags::ITEM_INODE_META_MOD) || f.has(FsEventFlags::ITEM_CHANGE_OWNER)
        {
            EventKind::Attrib
        } else {
            EventKind::Unknown
        }
    }

    /// Whether the item is a directory.
    pub fn is_dir(&self) -> bool {
        self.flags.has(FsEventFlags::ITEM_IS_DIR)
    }

    /// Translate to the standardized representation.
    pub fn to_standard(&self, watch_root: &str) -> StandardEvent {
        let rel = self
            .path
            .strip_prefix(watch_root.trim_end_matches('/'))
            .unwrap_or(&self.path);
        let mut ev =
            StandardEvent::new(self.kind(), watch_root, rel).with_source(MonitorSource::FsEvents);
        ev.is_dir = self.is_dir();
        ev
    }
}

/// Translate a standardized event into the FSEvents vocabulary.
pub fn standard_to_fsevents(ev: &StandardEvent, event_id: u64) -> FsEventsEvent {
    let mut flags = match ev.kind {
        EventKind::Create | EventKind::HardLink | EventKind::DeviceNode => {
            FsEventFlags::ITEM_CREATED
        }
        EventKind::SymLink => FsEventFlags::ITEM_CREATED | FsEventFlags::ITEM_IS_SYMLINK,
        EventKind::Modify | EventKind::Truncate | EventKind::Ioctl => FsEventFlags::ITEM_MODIFIED,
        EventKind::Delete | EventKind::ParentDirectoryRemoved => FsEventFlags::ITEM_REMOVED,
        EventKind::MovedFrom | EventKind::MovedTo => FsEventFlags::ITEM_RENAMED,
        EventKind::Attrib => FsEventFlags::ITEM_INODE_META_MOD,
        EventKind::Xattr => FsEventFlags::ITEM_XATTR_MOD,
        EventKind::Overflow => FsEventFlags::MUST_SCAN_SUBDIRS,
        // FSEvents has no open/close notifications at all.
        EventKind::Open
        | EventKind::Close
        | EventKind::CloseWrite
        | EventKind::CloseNoWrite
        | EventKind::Unknown => 0,
    };
    if flags != 0 && flags != FsEventFlags::MUST_SCAN_SUBDIRS {
        flags |= if ev.is_dir {
            FsEventFlags::ITEM_IS_DIR
        } else {
            FsEventFlags::ITEM_IS_FILE
        };
    }
    FsEventsEvent {
        event_id,
        flags: FsEventFlags(flags),
        path: ev.absolute_path(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fse(flags: u32, path: &str) -> FsEventsEvent {
        FsEventsEvent {
            event_id: 1,
            flags: FsEventFlags(flags),
            path: path.to_string(),
        }
    }

    #[test]
    fn classify_created() {
        let e = fse(
            FsEventFlags::ITEM_CREATED | FsEventFlags::ITEM_IS_FILE,
            "/r/f",
        );
        assert_eq!(e.kind(), EventKind::Create);
        assert!(!e.is_dir());
    }

    #[test]
    fn coalesced_remove_beats_create() {
        let e = fse(
            FsEventFlags::ITEM_CREATED | FsEventFlags::ITEM_REMOVED,
            "/r/f",
        );
        assert_eq!(e.kind(), EventKind::Delete);
    }

    #[test]
    fn coalesced_create_beats_modify() {
        let e = fse(
            FsEventFlags::ITEM_CREATED | FsEventFlags::ITEM_MODIFIED,
            "/r/f",
        );
        assert_eq!(e.kind(), EventKind::Create);
    }

    #[test]
    fn must_scan_subdirs_is_overflow() {
        assert_eq!(
            fse(FsEventFlags::MUST_SCAN_SUBDIRS, "/r").kind(),
            EventKind::Overflow
        );
    }

    #[test]
    fn dir_flag_propagates() {
        let e = fse(
            FsEventFlags::ITEM_CREATED | FsEventFlags::ITEM_IS_DIR,
            "/r/d",
        );
        let s = e.to_standard("/r");
        assert!(s.is_dir);
        assert_eq!(s.path, "/d");
    }

    #[test]
    fn render_names() {
        let f = FsEventFlags(FsEventFlags::ITEM_CREATED | FsEventFlags::ITEM_IS_FILE);
        assert_eq!(f.render(), "ItemCreated ItemIsFile");
    }

    #[test]
    fn standard_to_fsevents_sets_item_type() {
        let s = StandardEvent::new(EventKind::Create, "/r", "d").dir();
        let n = standard_to_fsevents(&s, 5);
        assert!(n.flags.has(FsEventFlags::ITEM_IS_DIR));
        assert!(n.flags.has(FsEventFlags::ITEM_CREATED));
        assert_eq!(n.event_id, 5);
    }

    #[test]
    fn open_close_have_no_fsevents_equivalent() {
        let s = StandardEvent::new(EventKind::Open, "/r", "f");
        assert_eq!(standard_to_fsevents(&s, 1).flags.0, 0);
    }
}
