//! The Windows `System.IO.FileSystemWatcher` vocabulary.
//!
//! FileSystemWatcher reports exactly four change types — `Created`,
//! `Changed`, `Deleted`, `Renamed` (paper §II-A) — and can lose events
//! when its byte buffer overflows, which it signals with an `Error`
//! event carrying an `InternalBufferOverflowException`.

use crate::event::{MonitorSource, StandardEvent};
use crate::kind::EventKind;
use serde::{Deserialize, Serialize};

/// The `WatcherChangeTypes` enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FswChangeType {
    /// A file or directory was created.
    Created,
    /// A file or directory was changed (contents or attributes).
    Changed,
    /// A file or directory was deleted.
    Deleted,
    /// A file or directory was renamed.
    Renamed,
    /// The internal buffer overflowed; events were lost.
    Error,
}

impl FswChangeType {
    /// The .NET enum member name.
    pub fn as_str(self) -> &'static str {
        match self {
            FswChangeType::Created => "Created",
            FswChangeType::Changed => "Changed",
            FswChangeType::Deleted => "Deleted",
            FswChangeType::Renamed => "Renamed",
            FswChangeType::Error => "Error",
        }
    }
}

impl std::fmt::Display for FswChangeType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A `FileSystemEventArgs` / `RenamedEventArgs` record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FswEvent {
    /// The change type.
    pub change_type: FswChangeType,
    /// Full path of the affected item.
    pub full_path: String,
    /// For `Renamed`: the previous full path.
    pub old_full_path: Option<String>,
    /// Whether the item is a directory (derived by the monitor — the
    /// .NET API exposes it via `NotifyFilters.DirectoryName` routing).
    pub is_dir: bool,
}

impl FswEvent {
    /// Classify into the standardized [`EventKind`].
    pub fn kind(&self) -> EventKind {
        match self.change_type {
            FswChangeType::Created => EventKind::Create,
            FswChangeType::Changed => EventKind::Modify,
            FswChangeType::Deleted => EventKind::Delete,
            FswChangeType::Renamed => EventKind::MovedTo,
            FswChangeType::Error => EventKind::Overflow,
        }
    }

    /// Translate to the standardized representation.
    pub fn to_standard(&self, watch_root: &str) -> StandardEvent {
        let strip = |p: &str| {
            p.strip_prefix(watch_root.trim_end_matches('/'))
                .unwrap_or(p)
                .to_string()
        };
        let mut ev = StandardEvent::new(self.kind(), watch_root, strip(&self.full_path))
            .with_source(MonitorSource::FileSystemWatcher);
        ev.is_dir = self.is_dir;
        if let Some(old) = &self.old_full_path {
            ev.old_path = Some(normalize_rel(&strip(old)));
        }
        ev
    }
}

fn normalize_rel(p: &str) -> String {
    if p.starts_with('/') {
        p.to_string()
    } else {
        format!("/{p}")
    }
}

/// Translate a standardized event into the FileSystemWatcher vocabulary.
///
/// Kinds outside the four .NET change types fold into the closest one,
/// exactly as a real watcher would report them (`Attrib` surfaces as
/// `Changed`, link creations as `Created`, …).
pub fn standard_to_fsw(ev: &StandardEvent) -> FswEvent {
    let change_type = match ev.kind {
        EventKind::Create | EventKind::HardLink | EventKind::SymLink | EventKind::DeviceNode => {
            FswChangeType::Created
        }
        EventKind::Modify
        | EventKind::Truncate
        | EventKind::Attrib
        | EventKind::Xattr
        | EventKind::Ioctl
        | EventKind::Open
        | EventKind::Close
        | EventKind::CloseWrite
        | EventKind::CloseNoWrite => FswChangeType::Changed,
        EventKind::Delete | EventKind::ParentDirectoryRemoved => FswChangeType::Deleted,
        EventKind::MovedFrom | EventKind::MovedTo => FswChangeType::Renamed,
        EventKind::Overflow | EventKind::Unknown => FswChangeType::Error,
    };
    FswEvent {
        change_type,
        full_path: ev.absolute_path(),
        old_full_path: ev.old_path.as_ref().map(|p| {
            let root = ev.watch_root.trim_end_matches('/');
            format!("{root}{p}")
        }),
        is_dir: ev.is_dir,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_change_types_classify() {
        let mk = |ct| FswEvent {
            change_type: ct,
            full_path: "/w/f".into(),
            old_full_path: None,
            is_dir: false,
        };
        assert_eq!(mk(FswChangeType::Created).kind(), EventKind::Create);
        assert_eq!(mk(FswChangeType::Changed).kind(), EventKind::Modify);
        assert_eq!(mk(FswChangeType::Deleted).kind(), EventKind::Delete);
        assert_eq!(mk(FswChangeType::Renamed).kind(), EventKind::MovedTo);
        assert_eq!(mk(FswChangeType::Error).kind(), EventKind::Overflow);
    }

    #[test]
    fn renamed_carries_old_path() {
        let e = FswEvent {
            change_type: FswChangeType::Renamed,
            full_path: "/w/new.txt".into(),
            old_full_path: Some("/w/old.txt".into()),
            is_dir: false,
        };
        let s = e.to_standard("/w");
        assert_eq!(s.path, "/new.txt");
        assert_eq!(s.old_path.as_deref(), Some("/old.txt"));
    }

    #[test]
    fn standard_to_fsw_folds_attrib_to_changed() {
        let s = StandardEvent::new(EventKind::Attrib, "/w", "f");
        assert_eq!(standard_to_fsw(&s).change_type, FswChangeType::Changed);
    }

    #[test]
    fn standard_to_fsw_rename_reconstructs_old_full_path() {
        let s = StandardEvent::new(EventKind::MovedTo, "/w", "b").with_old_path("/a");
        let f = standard_to_fsw(&s);
        assert_eq!(f.old_full_path.as_deref(), Some("/w/a"));
        assert_eq!(f.full_path, "/w/b");
    }

    #[test]
    fn display_names() {
        assert_eq!(FswChangeType::Created.to_string(), "Created");
        assert_eq!(FswChangeType::Error.to_string(), "Error");
    }
}
