//! The Linux inotify native vocabulary.
//!
//! Models the `inotify_event` structure and the `IN_*` mask bits exactly
//! as the kernel defines them, so the simulated inotify kernel in
//! `fsmon-localfs` and the resolution layer both speak the real dialect.

use crate::event::{MonitorSource, StandardEvent};
use crate::kind::EventKind;
use serde::{Deserialize, Serialize};

/// inotify event mask bits (a faithful subset of `<sys/inotify.h>`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InotifyMask(pub u32);

impl InotifyMask {
    /// File was accessed.
    pub const IN_ACCESS: u32 = 0x0000_0001;
    /// File was modified.
    pub const IN_MODIFY: u32 = 0x0000_0002;
    /// Metadata changed.
    pub const IN_ATTRIB: u32 = 0x0000_0004;
    /// Writable file was closed.
    pub const IN_CLOSE_WRITE: u32 = 0x0000_0008;
    /// Unwritable file was closed.
    pub const IN_CLOSE_NOWRITE: u32 = 0x0000_0010;
    /// File was opened.
    pub const IN_OPEN: u32 = 0x0000_0020;
    /// File was moved from X.
    pub const IN_MOVED_FROM: u32 = 0x0000_0040;
    /// File was moved to Y.
    pub const IN_MOVED_TO: u32 = 0x0000_0080;
    /// Subfile was created.
    pub const IN_CREATE: u32 = 0x0000_0100;
    /// Subfile was deleted.
    pub const IN_DELETE: u32 = 0x0000_0200;
    /// Self was deleted.
    pub const IN_DELETE_SELF: u32 = 0x0000_0400;
    /// Self was moved.
    pub const IN_MOVE_SELF: u32 = 0x0000_0800;
    /// Event queue overflowed.
    pub const IN_Q_OVERFLOW: u32 = 0x0000_4000;
    /// Subject of this event is a directory.
    pub const IN_ISDIR: u32 = 0x4000_0000;
    /// Watch was removed.
    pub const IN_IGNORED: u32 = 0x0000_8000;

    /// The "all events" mask used by `inotifywait` by default.
    pub const IN_ALL_EVENTS: u32 = Self::IN_ACCESS
        | Self::IN_MODIFY
        | Self::IN_ATTRIB
        | Self::IN_CLOSE_WRITE
        | Self::IN_CLOSE_NOWRITE
        | Self::IN_OPEN
        | Self::IN_MOVED_FROM
        | Self::IN_MOVED_TO
        | Self::IN_CREATE
        | Self::IN_DELETE
        | Self::IN_DELETE_SELF
        | Self::IN_MOVE_SELF;

    /// Whether `bit` is set in this mask.
    pub fn has(self, bit: u32) -> bool {
        self.0 & bit != 0
    }

    /// Whether the subject is a directory.
    pub fn is_dir(self) -> bool {
        self.has(Self::IN_ISDIR)
    }

    /// Render the mask the way `inotifywait` prints it:
    /// comma-separated bit names with `ISDIR` appended.
    pub fn render(self) -> String {
        const NAMES: [(u32, &str); 13] = [
            (InotifyMask::IN_ACCESS, "ACCESS"),
            (InotifyMask::IN_MODIFY, "MODIFY"),
            (InotifyMask::IN_ATTRIB, "ATTRIB"),
            (InotifyMask::IN_CLOSE_WRITE, "CLOSE_WRITE"),
            (InotifyMask::IN_CLOSE_NOWRITE, "CLOSE_NOWRITE"),
            (InotifyMask::IN_OPEN, "OPEN"),
            (InotifyMask::IN_MOVED_FROM, "MOVED_FROM"),
            (InotifyMask::IN_MOVED_TO, "MOVED_TO"),
            (InotifyMask::IN_CREATE, "CREATE"),
            (InotifyMask::IN_DELETE, "DELETE"),
            (InotifyMask::IN_DELETE_SELF, "DELETE_SELF"),
            (InotifyMask::IN_MOVE_SELF, "MOVE_SELF"),
            (InotifyMask::IN_Q_OVERFLOW, "Q_OVERFLOW"),
        ];
        let mut parts: Vec<&str> = NAMES
            .iter()
            .filter(|(bit, _)| self.has(*bit))
            .map(|(_, name)| *name)
            .collect();
        if self.is_dir() {
            parts.push("ISDIR");
        }
        parts.join(",")
    }
}

/// A raw inotify event as read from the inotify file descriptor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InotifyEvent {
    /// Watch descriptor the event was delivered on.
    pub wd: i32,
    /// Event mask.
    pub mask: InotifyMask,
    /// Rename-pairing cookie (nonzero only for `IN_MOVED_FROM`/`_TO`).
    pub cookie: u32,
    /// Name of the file inside the watched directory ("" for events on
    /// the watched object itself).
    pub name: String,
}

impl InotifyEvent {
    /// Classify the mask into the standardized [`EventKind`].
    ///
    /// inotify may set several bits; classification follows inotifywait's
    /// precedence (overflow first, then structural events, then IO).
    pub fn kind(&self) -> EventKind {
        let m = self.mask;
        if m.has(InotifyMask::IN_Q_OVERFLOW) {
            EventKind::Overflow
        } else if m.has(InotifyMask::IN_CREATE) {
            EventKind::Create
        } else if m.has(InotifyMask::IN_DELETE) || m.has(InotifyMask::IN_DELETE_SELF) {
            EventKind::Delete
        } else if m.has(InotifyMask::IN_MOVED_FROM) {
            EventKind::MovedFrom
        } else if m.has(InotifyMask::IN_MOVED_TO) {
            EventKind::MovedTo
        } else if m.has(InotifyMask::IN_MODIFY) {
            EventKind::Modify
        } else if m.has(InotifyMask::IN_ATTRIB) {
            EventKind::Attrib
        } else if m.has(InotifyMask::IN_CLOSE_WRITE) {
            EventKind::CloseWrite
        } else if m.has(InotifyMask::IN_CLOSE_NOWRITE) {
            EventKind::CloseNoWrite
        } else if m.has(InotifyMask::IN_OPEN) {
            EventKind::Open
        } else {
            EventKind::Unknown
        }
    }

    /// Translate to the standardized representation, given the path of
    /// the watched directory relative to the watch root.
    pub fn to_standard(&self, watch_root: &str, dir_rel: &str) -> StandardEvent {
        let rel = join_rel(dir_rel, &self.name);
        let mut ev = StandardEvent::new(self.kind(), watch_root, rel)
            .with_source(MonitorSource::Inotify)
            .with_cookie(self.cookie);
        ev.is_dir = self.mask.is_dir();
        ev
    }
}

/// Translate a standardized event back into the inotify vocabulary
/// (the inverse template population the paper's resolution layer offers:
/// "we instead support transformation into any of the commonly defined
/// formats").
pub fn standard_to_inotify(ev: &StandardEvent, wd: i32) -> InotifyEvent {
    let mut mask = match ev.kind {
        EventKind::Create | EventKind::HardLink | EventKind::SymLink | EventKind::DeviceNode => {
            InotifyMask::IN_CREATE
        }
        EventKind::Modify | EventKind::Truncate | EventKind::Ioctl => InotifyMask::IN_MODIFY,
        EventKind::Delete | EventKind::ParentDirectoryRemoved => InotifyMask::IN_DELETE,
        EventKind::Open => InotifyMask::IN_OPEN,
        EventKind::CloseWrite | EventKind::Close => InotifyMask::IN_CLOSE_WRITE,
        EventKind::CloseNoWrite => InotifyMask::IN_CLOSE_NOWRITE,
        EventKind::MovedFrom => InotifyMask::IN_MOVED_FROM,
        EventKind::MovedTo => InotifyMask::IN_MOVED_TO,
        EventKind::Attrib | EventKind::Xattr => InotifyMask::IN_ATTRIB,
        EventKind::Overflow => InotifyMask::IN_Q_OVERFLOW,
        EventKind::Unknown => 0,
    };
    if ev.is_dir {
        mask |= InotifyMask::IN_ISDIR;
    }
    InotifyEvent {
        wd,
        mask: InotifyMask(mask),
        cookie: ev.cookie,
        name: ev.path.trim_start_matches('/').to_string(),
    }
}

/// Join a directory-relative prefix and a file name into a relative path
/// with a leading slash.
fn join_rel(dir_rel: &str, name: &str) -> String {
    let dir = dir_rel.trim_matches('/');
    let name = name.trim_start_matches('/');
    match (dir.is_empty(), name.is_empty()) {
        (true, true) => "/".to_string(),
        (true, false) => format!("/{name}"),
        (false, true) => format!("/{dir}"),
        (false, false) => format!("/{dir}/{name}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(mask: u32, name: &str) -> InotifyEvent {
        InotifyEvent {
            wd: 1,
            mask: InotifyMask(mask),
            cookie: 0,
            name: name.to_string(),
        }
    }

    #[test]
    fn classify_create() {
        assert_eq!(ev(InotifyMask::IN_CREATE, "f").kind(), EventKind::Create);
    }

    #[test]
    fn classify_overflow_wins() {
        let e = ev(InotifyMask::IN_Q_OVERFLOW | InotifyMask::IN_MODIFY, "");
        assert_eq!(e.kind(), EventKind::Overflow);
    }

    #[test]
    fn classify_delete_self() {
        assert_eq!(
            ev(InotifyMask::IN_DELETE_SELF, "").kind(),
            EventKind::Delete
        );
    }

    #[test]
    fn classify_open_close() {
        assert_eq!(ev(InotifyMask::IN_OPEN, "f").kind(), EventKind::Open);
        assert_eq!(
            ev(InotifyMask::IN_CLOSE_WRITE, "f").kind(),
            EventKind::CloseWrite
        );
        assert_eq!(
            ev(InotifyMask::IN_CLOSE_NOWRITE, "f").kind(),
            EventKind::CloseNoWrite
        );
    }

    #[test]
    fn to_standard_includes_subdir_prefix() {
        let e = ev(InotifyMask::IN_CREATE, "hello.txt");
        let s = e.to_standard("/home/arnab/test", "sub");
        assert_eq!(s.path, "/sub/hello.txt");
        assert_eq!(s.source, MonitorSource::Inotify);
    }

    #[test]
    fn to_standard_dir_flag() {
        let e = ev(InotifyMask::IN_CREATE | InotifyMask::IN_ISDIR, "okdir");
        let s = e.to_standard("/r", "");
        assert!(s.is_dir);
        assert_eq!(s.render_table2(), "/r CREATE,ISDIR /okdir");
    }

    #[test]
    fn mask_render_matches_inotifywait_style() {
        let m = InotifyMask(InotifyMask::IN_CREATE | InotifyMask::IN_ISDIR);
        assert_eq!(m.render(), "CREATE,ISDIR");
        let m = InotifyMask(InotifyMask::IN_MOVED_TO);
        assert_eq!(m.render(), "MOVED_TO");
    }

    #[test]
    fn standard_to_inotify_roundtrip_core_kinds() {
        for kind in [
            EventKind::Create,
            EventKind::Modify,
            EventKind::Delete,
            EventKind::MovedFrom,
            EventKind::MovedTo,
            EventKind::Attrib,
            EventKind::Open,
            EventKind::CloseWrite,
            EventKind::CloseNoWrite,
        ] {
            let s = StandardEvent::new(kind, "/r", "f");
            let native = standard_to_inotify(&s, 9);
            assert_eq!(native.kind(), kind, "{kind:?}");
        }
    }

    #[test]
    fn standard_to_inotify_folds_lustre_kinds() {
        let s = StandardEvent::new(EventKind::Truncate, "/r", "f");
        assert_eq!(standard_to_inotify(&s, 1).kind(), EventKind::Modify);
        let s = StandardEvent::new(EventKind::Xattr, "/r", "f");
        assert_eq!(standard_to_inotify(&s, 1).kind(), EventKind::Attrib);
        let s = StandardEvent::new(EventKind::HardLink, "/r", "f");
        assert_eq!(standard_to_inotify(&s, 1).kind(), EventKind::Create);
    }

    #[test]
    fn join_rel_cases() {
        assert_eq!(join_rel("", "f"), "/f");
        assert_eq!(join_rel("d", "f"), "/d/f");
        assert_eq!(join_rel("d", ""), "/d");
        assert_eq!(join_rel("", ""), "/");
    }
}
