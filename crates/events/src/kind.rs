//! The standardized event vocabulary.
//!
//! FSMonitor standardizes every native event to the inotify vocabulary
//! (paper §II Summary: "we standardize all event representations to the
//! inotify format as this is the most widely used"). [`EventKind`] is that
//! vocabulary, extended with the few kinds that only distributed file
//! systems produce (`HardLink`, `DeviceNode`, `Ioctl`,
//! `ParentDirectoryRemoved`) and the `Overflow` control event raised when
//! a native queue drops events.

use serde::{Deserialize, Serialize};

/// A standardized file-system event type.
///
/// The `Display`/`as_str` rendering matches the inotify-style names the
/// paper prints in Table II (`CREATE`, `MODIFY`, `CLOSE`, `MOVED_FROM`,
/// `MOVED_TO`, `DELETE`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EventKind {
    /// A file or directory was created (`IN_CREATE`).
    Create,
    /// File contents were modified (`IN_MODIFY`).
    Modify,
    /// A file or directory was deleted (`IN_DELETE`).
    Delete,
    /// A file or directory was opened (`IN_OPEN`).
    Open,
    /// A file opened for writing was closed (`IN_CLOSE_WRITE`).
    CloseWrite,
    /// A file opened read-only was closed (`IN_CLOSE_NOWRITE`).
    CloseNoWrite,
    /// Generic close: used when the underlying monitor cannot distinguish
    /// write/no-write closes. Rendered as `CLOSE` (Table II).
    Close,
    /// The source half of a rename (`IN_MOVED_FROM`).
    MovedFrom,
    /// The destination half of a rename (`IN_MOVED_TO`).
    MovedTo,
    /// Metadata (permissions, ownership, timestamps) changed (`IN_ATTRIB`).
    Attrib,
    /// Extended attribute changed (Lustre `XATTR`). Standardized alongside
    /// `Attrib` because inotify folds both into `IN_ATTRIB`; kept distinct
    /// so Lustre consumers are not lossy.
    Xattr,
    /// A file was truncated (Lustre `TRUNC`; inotify reports `IN_MODIFY`).
    Truncate,
    /// A hard link was created (Lustre `HLINK`).
    HardLink,
    /// A symbolic link was created (Lustre `SLINK`).
    SymLink,
    /// A device node was created (Lustre `MKNOD`).
    DeviceNode,
    /// An ioctl was issued on the file (Lustre `IOCTL`).
    Ioctl,
    /// A `DELETE` whose target *and* parent FIDs could no longer be
    /// resolved — the paper's `ParentDirectoryRemoved` outcome
    /// (Algorithm 1, line 41).
    ParentDirectoryRemoved,
    /// The native event queue overflowed and events were lost
    /// (`IN_Q_OVERFLOW`, FileSystemWatcher buffer overflow, …).
    Overflow,
    /// An event the source DSI could not classify.
    Unknown,
}

impl EventKind {
    /// All kinds, in a stable order (useful for exhaustive tests and
    /// filter masks).
    pub const ALL: [EventKind; 19] = [
        EventKind::Create,
        EventKind::Modify,
        EventKind::Delete,
        EventKind::Open,
        EventKind::CloseWrite,
        EventKind::CloseNoWrite,
        EventKind::Close,
        EventKind::MovedFrom,
        EventKind::MovedTo,
        EventKind::Attrib,
        EventKind::Xattr,
        EventKind::Truncate,
        EventKind::HardLink,
        EventKind::SymLink,
        EventKind::DeviceNode,
        EventKind::Ioctl,
        EventKind::ParentDirectoryRemoved,
        EventKind::Overflow,
        EventKind::Unknown,
    ];

    /// The inotify-style standardized name (Table II rendering).
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Create => "CREATE",
            EventKind::Modify => "MODIFY",
            EventKind::Delete => "DELETE",
            EventKind::Open => "OPEN",
            EventKind::CloseWrite => "CLOSE_WRITE",
            EventKind::CloseNoWrite => "CLOSE_NOWRITE",
            EventKind::Close => "CLOSE",
            EventKind::MovedFrom => "MOVED_FROM",
            EventKind::MovedTo => "MOVED_TO",
            EventKind::Attrib => "ATTRIB",
            EventKind::Xattr => "XATTR",
            EventKind::Truncate => "TRUNCATE",
            EventKind::HardLink => "HARDLINK",
            EventKind::SymLink => "SYMLINK",
            EventKind::DeviceNode => "MKNOD",
            EventKind::Ioctl => "IOCTL",
            EventKind::ParentDirectoryRemoved => "PARENT_DIR_REMOVED",
            EventKind::Overflow => "Q_OVERFLOW",
            EventKind::Unknown => "UNKNOWN",
        }
    }

    /// Parse a standardized name back to a kind (inverse of [`as_str`]).
    ///
    /// [`as_str`]: EventKind::as_str
    pub fn from_str_name(s: &str) -> Option<EventKind> {
        EventKind::ALL.iter().copied().find(|k| k.as_str() == s)
    }

    /// Stable numeric tag used by the wire codec.
    pub fn wire_tag(self) -> u8 {
        match self {
            EventKind::Create => 0,
            EventKind::Modify => 1,
            EventKind::Delete => 2,
            EventKind::Open => 3,
            EventKind::CloseWrite => 4,
            EventKind::CloseNoWrite => 5,
            EventKind::Close => 6,
            EventKind::MovedFrom => 7,
            EventKind::MovedTo => 8,
            EventKind::Attrib => 9,
            EventKind::Xattr => 10,
            EventKind::Truncate => 11,
            EventKind::HardLink => 12,
            EventKind::SymLink => 13,
            EventKind::DeviceNode => 14,
            EventKind::Ioctl => 15,
            EventKind::ParentDirectoryRemoved => 16,
            EventKind::Overflow => 17,
            EventKind::Unknown => 18,
        }
    }

    /// Inverse of [`wire_tag`]; `None` for tags from a newer peer.
    ///
    /// [`wire_tag`]: EventKind::wire_tag
    pub fn from_wire_tag(tag: u8) -> Option<EventKind> {
        EventKind::ALL.get(tag as usize).copied()
    }

    /// Whether this kind signals loss or degradation rather than a file
    /// operation (overflow / unresolvable parent).
    pub fn is_control(self) -> bool {
        matches!(
            self,
            EventKind::Overflow | EventKind::Unknown | EventKind::ParentDirectoryRemoved
        )
    }

    /// Whether this kind removes the path from the namespace, so a
    /// `fid2path`-style resolution of the *target* will necessarily fail
    /// (Algorithm 1 handles these via the parent FID).
    pub fn is_removal(self) -> bool {
        matches!(self, EventKind::Delete | EventKind::ParentDirectoryRemoved)
    }

    /// Whether this kind is one half of a rename pair.
    pub fn is_move(self) -> bool {
        matches!(self, EventKind::MovedFrom | EventKind::MovedTo)
    }
}

impl std::fmt::Display for EventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A set of [`EventKind`]s, used by consumer-side filters (paper §IV
/// Consumption: "it filters the events and only passes on events related
/// to those files and directories requested").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KindMask(u32);

impl KindMask {
    /// The empty mask: matches nothing.
    pub const NONE: KindMask = KindMask(0);
    /// Matches every kind.
    pub const ALL: KindMask = KindMask(u32::MAX);

    /// A mask containing exactly `kind`.
    pub fn only(kind: EventKind) -> KindMask {
        KindMask(1 << kind.wire_tag())
    }

    /// Build a mask from an iterator of kinds.
    pub fn from_kinds<I: IntoIterator<Item = EventKind>>(kinds: I) -> KindMask {
        kinds.into_iter().fold(KindMask::NONE, |m, k| m.with(k))
    }

    /// This mask plus `kind`.
    #[must_use]
    pub fn with(self, kind: EventKind) -> KindMask {
        KindMask(self.0 | (1 << kind.wire_tag()))
    }

    /// This mask minus `kind`.
    #[must_use]
    pub fn without(self, kind: EventKind) -> KindMask {
        KindMask(self.0 & !(1 << kind.wire_tag()))
    }

    /// Whether `kind` is in the mask.
    pub fn contains(self, kind: EventKind) -> bool {
        self.0 & (1 << kind.wire_tag()) != 0
    }

    /// Number of kinds in the mask (counting only defined kinds).
    pub fn len(self) -> usize {
        EventKind::ALL.iter().filter(|k| self.contains(**k)).count()
    }

    /// Whether the mask matches no kind.
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }
}

impl Default for KindMask {
    fn default() -> Self {
        KindMask::ALL
    }
}

impl FromIterator<EventKind> for KindMask {
    fn from_iter<T: IntoIterator<Item = EventKind>>(iter: T) -> Self {
        KindMask::from_kinds(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn as_str_roundtrips() {
        for k in EventKind::ALL {
            assert_eq!(EventKind::from_str_name(k.as_str()), Some(k), "{k:?}");
        }
    }

    #[test]
    fn wire_tag_roundtrips() {
        for k in EventKind::ALL {
            assert_eq!(EventKind::from_wire_tag(k.wire_tag()), Some(k), "{k:?}");
        }
    }

    #[test]
    fn wire_tags_are_dense_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for k in EventKind::ALL {
            assert!(seen.insert(k.wire_tag()));
            assert!((k.wire_tag() as usize) < EventKind::ALL.len());
        }
    }

    #[test]
    fn unknown_wire_tag_is_none() {
        assert_eq!(EventKind::from_wire_tag(200), None);
    }

    #[test]
    fn control_kinds() {
        assert!(EventKind::Overflow.is_control());
        assert!(EventKind::ParentDirectoryRemoved.is_control());
        assert!(!EventKind::Create.is_control());
    }

    #[test]
    fn removal_kinds() {
        assert!(EventKind::Delete.is_removal());
        assert!(!EventKind::MovedFrom.is_removal());
    }

    #[test]
    fn move_kinds() {
        assert!(EventKind::MovedFrom.is_move());
        assert!(EventKind::MovedTo.is_move());
        assert!(!EventKind::Modify.is_move());
    }

    #[test]
    fn mask_only_contains_single_kind() {
        let m = KindMask::only(EventKind::Create);
        assert!(m.contains(EventKind::Create));
        assert!(!m.contains(EventKind::Delete));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn mask_with_without() {
        let m = KindMask::NONE
            .with(EventKind::Create)
            .with(EventKind::Delete);
        assert_eq!(m.len(), 2);
        let m = m.without(EventKind::Create);
        assert!(!m.contains(EventKind::Create));
        assert!(m.contains(EventKind::Delete));
    }

    #[test]
    fn mask_all_and_none() {
        for k in EventKind::ALL {
            assert!(KindMask::ALL.contains(k));
            assert!(!KindMask::NONE.contains(k));
        }
        assert!(KindMask::NONE.is_empty());
        assert!(!KindMask::ALL.is_empty());
    }

    #[test]
    fn mask_from_iterator() {
        let m: KindMask = [EventKind::Create, EventKind::Modify].into_iter().collect();
        assert_eq!(m.len(), 2);
        assert!(m.contains(EventKind::Modify));
    }
}
