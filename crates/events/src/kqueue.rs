//! The BSD/macOS kqueue `EVFILT_VNODE` vocabulary.
//!
//! kqueue reports changes on *open file descriptors*: the monitor must
//! hold an fd per watched file, which is why the paper notes it is
//! "restricting its application to very large file systems" (§II-A).

use crate::event::{MonitorSource, StandardEvent};
use crate::kind::EventKind;
use serde::{Deserialize, Serialize};

/// `NOTE_*` fflags for `EVFILT_VNODE` (from `<sys/event.h>`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NoteFlags(pub u32);

impl NoteFlags {
    /// Vnode was removed.
    pub const NOTE_DELETE: u32 = 0x0000_0001;
    /// Data contents changed.
    pub const NOTE_WRITE: u32 = 0x0000_0002;
    /// Size increased.
    pub const NOTE_EXTEND: u32 = 0x0000_0004;
    /// Attributes changed.
    pub const NOTE_ATTRIB: u32 = 0x0000_0008;
    /// Link count changed.
    pub const NOTE_LINK: u32 = 0x0000_0010;
    /// Vnode was renamed.
    pub const NOTE_RENAME: u32 = 0x0000_0020;
    /// Vnode access was revoked.
    pub const NOTE_REVOKE: u32 = 0x0000_0040;
    /// Vnode was opened (macOS extension).
    pub const NOTE_OPEN: u32 = 0x0000_0080;
    /// Vnode was closed (macOS extension).
    pub const NOTE_CLOSE: u32 = 0x0000_0100;
    /// Vnode was closed after writing (macOS extension).
    pub const NOTE_CLOSE_WRITE: u32 = 0x0000_0200;

    /// Whether `bit` is set.
    pub fn has(self, bit: u32) -> bool {
        self.0 & bit != 0
    }

    /// Render as the `NOTE_X|NOTE_Y` string used in BSD man pages.
    pub fn render(self) -> String {
        const NAMES: [(u32, &str); 10] = [
            (NoteFlags::NOTE_DELETE, "NOTE_DELETE"),
            (NoteFlags::NOTE_WRITE, "NOTE_WRITE"),
            (NoteFlags::NOTE_EXTEND, "NOTE_EXTEND"),
            (NoteFlags::NOTE_ATTRIB, "NOTE_ATTRIB"),
            (NoteFlags::NOTE_LINK, "NOTE_LINK"),
            (NoteFlags::NOTE_RENAME, "NOTE_RENAME"),
            (NoteFlags::NOTE_REVOKE, "NOTE_REVOKE"),
            (NoteFlags::NOTE_OPEN, "NOTE_OPEN"),
            (NoteFlags::NOTE_CLOSE, "NOTE_CLOSE"),
            (NoteFlags::NOTE_CLOSE_WRITE, "NOTE_CLOSE_WRITE"),
        ];
        NAMES
            .iter()
            .filter(|(bit, _)| self.has(*bit))
            .map(|(_, n)| *n)
            .collect::<Vec<_>>()
            .join("|")
    }
}

/// A kevent delivered on an `EVFILT_VNODE` filter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KqueueEvent {
    /// The file descriptor (ident) the filter was registered on.
    pub ident: u64,
    /// The `NOTE_*` flags that fired.
    pub fflags: NoteFlags,
    /// Path the fd was opened on (tracked by the monitor, since kqueue
    /// itself reports only the fd).
    pub path: String,
    /// Whether the vnode is a directory.
    pub is_dir: bool,
}

impl KqueueEvent {
    /// Classify into the standardized [`EventKind`].
    ///
    /// kqueue has no "create" note on the file itself; creations are
    /// observed as `NOTE_WRITE` on the parent directory, which the
    /// simulated kernel annotates before translation. Here `NOTE_EXTEND`
    /// and `NOTE_WRITE` both map to `Modify` (the paper: "Opening,
    /// creating, and modifying a file results in NOTE_OPEN, NOTE_EXTEND,
    /// NOTE_WRITE, and NOTE_CLOSE events").
    pub fn kind(&self) -> EventKind {
        let f = self.fflags;
        if f.has(NoteFlags::NOTE_DELETE) || f.has(NoteFlags::NOTE_REVOKE) {
            EventKind::Delete
        } else if f.has(NoteFlags::NOTE_RENAME) {
            EventKind::MovedFrom
        } else if f.has(NoteFlags::NOTE_EXTEND) || f.has(NoteFlags::NOTE_WRITE) {
            EventKind::Modify
        } else if f.has(NoteFlags::NOTE_ATTRIB) {
            EventKind::Attrib
        } else if f.has(NoteFlags::NOTE_LINK) {
            EventKind::HardLink
        } else if f.has(NoteFlags::NOTE_CLOSE_WRITE) {
            EventKind::CloseWrite
        } else if f.has(NoteFlags::NOTE_CLOSE) {
            EventKind::CloseNoWrite
        } else if f.has(NoteFlags::NOTE_OPEN) {
            EventKind::Open
        } else {
            EventKind::Unknown
        }
    }

    /// Translate to the standardized representation.
    pub fn to_standard(&self, watch_root: &str) -> StandardEvent {
        let rel = self
            .path
            .strip_prefix(watch_root.trim_end_matches('/'))
            .unwrap_or(&self.path);
        let mut ev =
            StandardEvent::new(self.kind(), watch_root, rel).with_source(MonitorSource::Kqueue);
        ev.is_dir = self.is_dir;
        ev
    }
}

/// Translate a standardized event into the kqueue vocabulary.
pub fn standard_to_kqueue(ev: &StandardEvent, ident: u64) -> KqueueEvent {
    let fflags = match ev.kind {
        EventKind::Create | EventKind::Modify | EventKind::Truncate | EventKind::Ioctl => {
            NoteFlags::NOTE_WRITE
        }
        EventKind::Delete | EventKind::ParentDirectoryRemoved => NoteFlags::NOTE_DELETE,
        EventKind::MovedFrom | EventKind::MovedTo => NoteFlags::NOTE_RENAME,
        EventKind::Attrib | EventKind::Xattr => NoteFlags::NOTE_ATTRIB,
        EventKind::HardLink | EventKind::SymLink | EventKind::DeviceNode => NoteFlags::NOTE_LINK,
        EventKind::Open => NoteFlags::NOTE_OPEN,
        EventKind::CloseWrite | EventKind::Close => NoteFlags::NOTE_CLOSE_WRITE,
        EventKind::CloseNoWrite => NoteFlags::NOTE_CLOSE,
        EventKind::Overflow | EventKind::Unknown => 0,
    };
    KqueueEvent {
        ident,
        fflags: NoteFlags(fflags),
        path: ev.absolute_path(),
        is_dir: ev.is_dir,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kev(fflags: u32, path: &str) -> KqueueEvent {
        KqueueEvent {
            ident: 3,
            fflags: NoteFlags(fflags),
            path: path.to_string(),
            is_dir: false,
        }
    }

    #[test]
    fn classify_write_as_modify() {
        assert_eq!(kev(NoteFlags::NOTE_WRITE, "/r/f").kind(), EventKind::Modify);
        assert_eq!(
            kev(NoteFlags::NOTE_EXTEND, "/r/f").kind(),
            EventKind::Modify
        );
    }

    #[test]
    fn classify_delete_beats_write() {
        let e = kev(NoteFlags::NOTE_DELETE | NoteFlags::NOTE_WRITE, "/r/f");
        assert_eq!(e.kind(), EventKind::Delete);
    }

    #[test]
    fn classify_open_close() {
        assert_eq!(kev(NoteFlags::NOTE_OPEN, "/r/f").kind(), EventKind::Open);
        assert_eq!(
            kev(NoteFlags::NOTE_CLOSE, "/r/f").kind(),
            EventKind::CloseNoWrite
        );
        assert_eq!(
            kev(NoteFlags::NOTE_CLOSE_WRITE, "/r/f").kind(),
            EventKind::CloseWrite
        );
    }

    #[test]
    fn to_standard_strips_root() {
        let e = kev(NoteFlags::NOTE_WRITE, "/watch/dir/f.txt");
        let s = e.to_standard("/watch");
        assert_eq!(s.path, "/dir/f.txt");
        assert_eq!(s.source, MonitorSource::Kqueue);
    }

    #[test]
    fn render_pipes_flag_names() {
        let f = NoteFlags(NoteFlags::NOTE_WRITE | NoteFlags::NOTE_EXTEND);
        assert_eq!(f.render(), "NOTE_WRITE|NOTE_EXTEND");
    }

    #[test]
    fn standard_roundtrip_preserves_classification() {
        for kind in [
            EventKind::Modify,
            EventKind::Delete,
            EventKind::Attrib,
            EventKind::Open,
            EventKind::CloseWrite,
            EventKind::CloseNoWrite,
        ] {
            let s = StandardEvent::new(kind, "/r", "f");
            assert_eq!(standard_to_kqueue(&s, 1).kind(), kind, "{kind:?}");
        }
    }

    #[test]
    fn creates_fold_to_write_on_kqueue() {
        let s = StandardEvent::new(EventKind::Create, "/r", "f");
        let k = standard_to_kqueue(&s, 1);
        assert!(k.fflags.has(NoteFlags::NOTE_WRITE));
    }
}
