#![warn(missing_docs)]

//! # fsmon-events
//!
//! The standard event model shared by every layer of FSMonitor, together
//! with lossless translations to and from the native vocabularies of the
//! monitoring facilities the paper surveys:
//!
//! * Linux **inotify** (`IN_CREATE`, `IN_MODIFY`, …) — the default
//!   standard representation, per the paper (§II Summary).
//! * BSD/macOS **kqueue** (`NOTE_WRITE`, `NOTE_DELETE`, …).
//! * macOS **FSEvents** (`ItemCreated`, `ItemModified`, …).
//! * Windows **FileSystemWatcher** (`Created`, `Changed`, `Deleted`,
//!   `Renamed`).
//! * Lustre **Changelog** record types (`01CREAT`, `17MTIME`, …).
//!
//! The crate also provides the wire codec used by the message-queue layer
//! ([`wire`]) and the human-readable rendering used in the paper's
//! Table II ([`format`]).
//!
//! ```
//! use fsmon_events::{StandardEvent, EventKind};
//!
//! let ev = StandardEvent::new(EventKind::Create, "/home/arnab/test", "hello.txt");
//! assert_eq!(ev.render_table2(), "/home/arnab/test CREATE /hello.txt");
//! ```

pub mod changelog;
pub mod coalesce;
pub mod event;
pub mod format;
pub mod fsevents;
pub mod fswatcher;
pub mod inotify;
pub mod kind;
pub mod kqueue;
pub mod wire;

pub use changelog::{ChangelogKind, ChangelogMask, ChangelogRename};
pub use coalesce::coalesce;
pub use event::{EventId, MonitorSource, StandardEvent};
pub use format::EventFormatter;
pub use fsevents::{FsEventFlags, FsEventsEvent};
pub use fswatcher::{FswChangeType, FswEvent};
pub use inotify::{InotifyEvent, InotifyMask};
pub use kind::EventKind;
pub use kqueue::{KqueueEvent, NoteFlags};
pub use wire::{
    decode_event, decode_event_batch, encode_event, encode_event_batch, encode_event_batch_into,
    encode_event_batch_offsets, patch_event_id, WireError,
};
