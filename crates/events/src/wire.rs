//! Compact binary wire codec for [`StandardEvent`]s.
//!
//! Collectors publish event batches to the aggregator over the message
//! queue (paper §IV Aggregation); this codec defines the frame payload.
//! The format is length-delimited and versioned:
//!
//! ```text
//! event   := u8 version | u64 id | u8 kind | u8 flags | u8 source
//!          | u16 mdt (0xFFFF = none) | u32 cookie | u64 timestamp_ns
//!          | str watch_root | str path | opt_str old_path
//!          | [u64 size, if flags & HAS_SIZE] | [u32 owner, if flags & HAS_OWNER]
//! str     := u32 len | len bytes (UTF-8)
//! opt_str := u8 present | str?
//! batch   := u32 count | count * event
//! ```
//!
//! The trailing metadata fields are flag-gated, so frames produced
//! before the enrichment (flags without those bits) still decode — the
//! fields come back `None` — and unenriched events pay zero bytes.
//! Their introduction bumped the version byte to 2: a version-1
//! decoder fails loudly on enriched frames ([`WireError::BadVersion`])
//! instead of leaving trailing bytes unconsumed, while this decoder
//! still accepts version-1 frames from older producers.

use crate::event::{MonitorSource, StandardEvent};
use crate::kind::EventKind;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Current codec version byte. Version 2 added the flag-gated
/// size/owner metadata tail; see [`MIN_WIRE_VERSION`].
pub const WIRE_VERSION: u8 = 2;

/// Oldest version this decoder still accepts. Version-1 frames never
/// carry the metadata flag bits, so the flag-gated tail reads are
/// vacuous for them.
pub const MIN_WIRE_VERSION: u8 = 1;

const FLAG_IS_DIR: u8 = 0b0000_0001;
const FLAG_HAS_SIZE: u8 = 0b0000_0010;
const FLAG_HAS_OWNER: u8 = 0b0000_0100;

/// Errors produced while decoding a wire frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Frame ended before the structure was complete.
    Truncated,
    /// Unknown codec version byte.
    BadVersion(u8),
    /// Unknown event-kind tag.
    BadKind(u8),
    /// Unknown source tag.
    BadSource(u8),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A declared length exceeds sanity limits.
    LengthOverflow(u64),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::BadVersion(v) => write!(f, "unknown wire version {v}"),
            WireError::BadKind(t) => write!(f, "unknown event kind tag {t}"),
            WireError::BadSource(t) => write!(f, "unknown source tag {t}"),
            WireError::BadUtf8 => write!(f, "string field is not UTF-8"),
            WireError::LengthOverflow(n) => write!(f, "declared length {n} too large"),
        }
    }
}

impl std::error::Error for WireError {}

/// Upper bound on any single string field; protects decoders from
/// hostile or corrupt frames.
const MAX_STR: u32 = 1 << 20;
/// Upper bound on events per batch frame.
const MAX_BATCH: u32 = 1 << 22;

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String, WireError> {
    if buf.remaining() < 4 {
        return Err(WireError::Truncated);
    }
    let len = buf.get_u32();
    if len > MAX_STR {
        return Err(WireError::LengthOverflow(len as u64));
    }
    if buf.remaining() < len as usize {
        return Err(WireError::Truncated);
    }
    // Decode straight from the frame slice: one copy into the String,
    // instead of split_to + to_vec copying the payload twice.
    let s = std::str::from_utf8(&buf.chunk()[..len as usize])
        .map_err(|_| WireError::BadUtf8)?
        .to_string();
    buf.advance(len as usize);
    Ok(s)
}

/// Serialize one event into `buf`.
pub fn encode_event_into(ev: &StandardEvent, buf: &mut BytesMut) {
    buf.put_u8(WIRE_VERSION);
    buf.put_u64(ev.id);
    buf.put_u8(ev.kind.wire_tag());
    let mut flags = 0u8;
    if ev.is_dir {
        flags |= FLAG_IS_DIR;
    }
    if ev.size.is_some() {
        flags |= FLAG_HAS_SIZE;
    }
    if ev.owner.is_some() {
        flags |= FLAG_HAS_OWNER;
    }
    buf.put_u8(flags);
    buf.put_u8(ev.source.wire_tag());
    buf.put_u16(ev.mdt_index.unwrap_or(u16::MAX));
    buf.put_u32(ev.cookie);
    buf.put_u64(ev.timestamp_ns);
    put_str(buf, &ev.watch_root);
    put_str(buf, &ev.path);
    match &ev.old_path {
        Some(p) => {
            buf.put_u8(1);
            put_str(buf, p);
        }
        None => buf.put_u8(0),
    }
    if let Some(size) = ev.size {
        buf.put_u64(size);
    }
    if let Some(owner) = ev.owner {
        buf.put_u32(owner);
    }
}

/// Serialize one event into a standalone frame.
pub fn encode_event(ev: &StandardEvent) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + ev.path.len() + ev.watch_root.len());
    encode_event_into(ev, &mut buf);
    buf.freeze()
}

/// Decode one event, consuming its bytes from `buf`.
pub fn decode_event_from(buf: &mut Bytes) -> Result<StandardEvent, WireError> {
    // Fixed-width header: version(1) id(8) kind(1) flags(1) source(1)
    // mdt(2) cookie(4) timestamp(8) = 26 bytes.
    if buf.remaining() < 26 {
        return Err(WireError::Truncated);
    }
    let version = buf.get_u8();
    if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version) {
        return Err(WireError::BadVersion(version));
    }
    let id = buf.get_u64();
    let kind_tag = buf.get_u8();
    let kind = EventKind::from_wire_tag(kind_tag).ok_or(WireError::BadKind(kind_tag))?;
    let flags = buf.get_u8();
    let source_tag = buf.get_u8();
    let source =
        MonitorSource::from_wire_tag(source_tag).ok_or(WireError::BadSource(source_tag))?;
    let mdt = buf.get_u16();
    let cookie = buf.get_u32();
    let timestamp_ns = buf.get_u64();
    let watch_root = get_str(buf)?;
    let path = get_str(buf)?;
    if buf.remaining() < 1 {
        return Err(WireError::Truncated);
    }
    let old_path = if buf.get_u8() != 0 {
        Some(get_str(buf)?)
    } else {
        None
    };
    let size = if flags & FLAG_HAS_SIZE != 0 {
        if buf.remaining() < 8 {
            return Err(WireError::Truncated);
        }
        Some(buf.get_u64())
    } else {
        None
    };
    let owner = if flags & FLAG_HAS_OWNER != 0 {
        if buf.remaining() < 4 {
            return Err(WireError::Truncated);
        }
        Some(buf.get_u32())
    } else {
        None
    };
    Ok(StandardEvent {
        id,
        kind,
        is_dir: flags & FLAG_IS_DIR != 0,
        watch_root,
        path,
        old_path,
        cookie,
        timestamp_ns,
        source,
        mdt_index: if mdt == u16::MAX { None } else { Some(mdt) },
        size,
        owner,
    })
}

/// Decode one standalone event frame.
pub fn decode_event(frame: &Bytes) -> Result<StandardEvent, WireError> {
    let mut buf = frame.clone();
    decode_event_from(&mut buf)
}

/// Byte offset of the `u64 id` field inside one encoded event record:
/// it sits immediately after the version byte.
pub const EVENT_ID_OFFSET: usize = 1;

/// Serialize a batch of events into a single frame (the aggregator's
/// batching granularity, paper §III-A2).
pub fn encode_event_batch(events: &[StandardEvent]) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + events.len() * 96);
    encode_event_batch_into(events, &mut buf);
    buf.split_frozen()
}

/// Serialize a batch into a caller-owned buffer (cleared first), so a
/// hot publish lane reuses one grown allocation instead of allocating
/// per frame. Freeze the result with [`BytesMut::split_frozen`] to
/// keep the buffer's capacity for the next batch.
pub fn encode_event_batch_into(events: &[StandardEvent], buf: &mut BytesMut) {
    buf.clear();
    buf.put_u32(events.len() as u32);
    for ev in events {
        encode_event_into(ev, buf);
    }
}

/// Like [`encode_event_batch_into`], additionally recording into
/// `id_offsets` the byte offset of each event's `id` field within the
/// frame, so a downstream sequencer can stamp ids in place with
/// [`patch_event_id`] after encode (ids are not known until the single
/// sequencer stage assigns them).
pub fn encode_event_batch_offsets(
    events: &[StandardEvent],
    buf: &mut BytesMut,
    id_offsets: &mut Vec<usize>,
) {
    buf.clear();
    id_offsets.clear();
    buf.put_u32(events.len() as u32);
    for ev in events {
        id_offsets.push(buf.len() + EVENT_ID_OFFSET);
        encode_event_into(ev, buf);
    }
}

/// Overwrite the big-endian `id` field at `id_offset` (as recorded by
/// [`encode_event_batch_offsets`]) in an encoded frame.
pub fn patch_event_id(buf: &mut BytesMut, id_offset: usize, id: u64) {
    buf[id_offset..id_offset + 8].copy_from_slice(&id.to_be_bytes());
}

/// Upper bound on one meta TLV section's payload.
const MAX_TLV: u32 = 1 << 22;

/// TLV tag for a trace section: back-to-back fixed-width trace
/// records (see `fsmon-telemetry::trace`). The payload is opaque to
/// this codec.
pub const TLV_TRACE: u8 = 1;

/// Append one TLV section (`u8 tag | u32 len | payload`) to a meta
/// frame. Sections concatenate, so meta extensions never disturb
/// existing readers: an untraced batch simply carries no trace
/// section and pays zero bytes.
pub fn append_tlv(buf: &mut BytesMut, tag: u8, payload: &[u8]) {
    buf.put_u8(tag);
    buf.put_u32(payload.len() as u32);
    buf.put_slice(payload);
}

/// Encode a single TLV section as a standalone frame.
pub fn encode_tlv(tag: u8, payload: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(5 + payload.len());
    append_tlv(&mut buf, tag, payload);
    buf.freeze()
}

/// Find the first section with `tag` in a TLV frame. Returns the
/// payload slice, `Ok(None)` when absent (including an empty frame).
pub fn find_tlv(frame: &[u8], tag: u8) -> Result<Option<&[u8]>, WireError> {
    let mut rest = frame;
    while !rest.is_empty() {
        if rest.len() < 5 {
            return Err(WireError::Truncated);
        }
        let section_tag = rest[0];
        let len = u32::from_be_bytes([rest[1], rest[2], rest[3], rest[4]]);
        if len > MAX_TLV {
            return Err(WireError::LengthOverflow(len as u64));
        }
        let end = 5 + len as usize;
        if rest.len() < end {
            return Err(WireError::Truncated);
        }
        if section_tag == tag {
            return Ok(Some(&rest[5..end]));
        }
        rest = &rest[end..];
    }
    Ok(None)
}

/// Decode a batch frame.
pub fn decode_event_batch(frame: &Bytes) -> Result<Vec<StandardEvent>, WireError> {
    let mut buf = frame.clone();
    if buf.remaining() < 4 {
        return Err(WireError::Truncated);
    }
    let count = buf.get_u32();
    if count > MAX_BATCH {
        return Err(WireError::LengthOverflow(count as u64));
    }
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        out.push(decode_event_from(&mut buf)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StandardEvent {
        let mut ev = StandardEvent::new(EventKind::MovedTo, "/mnt/lustre", "okdir/hi.txt")
            .with_old_path("/hi.txt")
            .with_cookie(0xDEAD)
            .with_timestamp(123_456_789)
            .with_mdt(2)
            .with_source(MonitorSource::LustreChangelog);
        ev.id = 42;
        ev.is_dir = false;
        ev
    }

    #[test]
    fn roundtrip_single() {
        let ev = sample();
        let frame = encode_event(&ev);
        assert_eq!(decode_event(&frame).unwrap(), ev);
    }

    #[test]
    fn roundtrip_no_optionals() {
        let ev = StandardEvent::new(EventKind::Create, "/r", "f").dir();
        let frame = encode_event(&ev);
        let d = decode_event(&frame).unwrap();
        assert_eq!(d, ev);
        assert!(d.is_dir);
        assert_eq!(d.mdt_index, None);
        assert_eq!(d.old_path, None);
    }

    #[test]
    fn roundtrip_size_and_owner() {
        let ev = sample().with_size(1 << 30).with_owner(4242);
        let frame = encode_event(&ev);
        let d = decode_event(&frame).unwrap();
        assert_eq!(d, ev);
        assert_eq!(d.size, Some(1 << 30));
        assert_eq!(d.owner, Some(4242));
        // Each metadata field stands alone behind its own flag bit.
        let only_size = sample().with_size(7);
        assert_eq!(decode_event(&encode_event(&only_size)).unwrap(), only_size);
        let only_owner = sample().with_owner(0);
        assert_eq!(
            decode_event(&encode_event(&only_owner)).unwrap().owner,
            Some(0)
        );
    }

    #[test]
    fn pre_enrichment_frame_decodes_with_no_metadata() {
        // What an older producer emits: a version-1 frame whose flags
        // carry no HAS_SIZE/HAS_OWNER bits. It decodes cleanly to
        // `None` metadata.
        let mut raw = encode_event(&sample()).to_vec();
        raw[0] = MIN_WIRE_VERSION;
        let d = decode_event(&Bytes::from(raw)).unwrap();
        assert_eq!(d, sample());
        assert_eq!(d.size, None);
        assert_eq!(d.owner, None);
    }

    #[test]
    fn enriched_frames_carry_the_bumped_version() {
        // A version-1 decoder must reject enriched frames outright
        // (unknown version) rather than misparse the metadata tail, so
        // the current encoder always stamps the bumped version.
        let frame = encode_event(&sample().with_size(9).with_owner(1));
        assert_eq!(frame[0], 2);
        assert_eq!(WIRE_VERSION, 2);
    }

    #[test]
    fn truncated_metadata_tail_errors() {
        let frame = encode_event(&sample().with_size(9).with_owner(1));
        for cut in [frame.len() - 1, frame.len() - 5, frame.len() - 11] {
            assert!(decode_event(&frame.slice(..cut)).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn roundtrip_batch() {
        let evs: Vec<_> = (0..17)
            .map(|i| {
                let mut e = sample();
                e.id = i;
                e.path = format!("/file-{i}");
                e
            })
            .collect();
        let frame = encode_event_batch(&evs);
        assert_eq!(decode_event_batch(&frame).unwrap(), evs);
    }

    #[test]
    fn offsets_encode_then_patch_stamps_ids() {
        let evs: Vec<_> = (0..5)
            .map(|i| {
                let mut e = sample();
                e.id = 0; // unstamped at encode time
                e.path = format!("/f{i}");
                e
            })
            .collect();
        let mut buf = BytesMut::new();
        let mut offsets = Vec::new();
        encode_event_batch_offsets(&evs, &mut buf, &mut offsets);
        assert_eq!(offsets.len(), evs.len());
        for (i, off) in offsets.iter().enumerate() {
            patch_event_id(&mut buf, *off, 100 + i as u64);
        }
        let decoded = decode_event_batch(&buf.split_frozen()).unwrap();
        let ids: Vec<u64> = decoded.iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![100, 101, 102, 103, 104]);
        assert_eq!(decoded[3].path, "/f3");
    }

    #[test]
    fn reusable_buffer_matches_fresh_encoding() {
        let evs: Vec<_> = (0..3).map(|_| sample()).collect();
        let mut buf = BytesMut::new();
        encode_event_batch_into(&evs, &mut buf);
        let reused = buf.split_frozen();
        assert_eq!(reused, encode_event_batch(&evs));
        // Second use of the same buffer starts clean.
        encode_event_batch_into(&evs[..1], &mut buf);
        assert_eq!(buf.split_frozen(), encode_event_batch(&evs[..1]));
    }

    #[test]
    fn tlv_sections_concatenate_and_lookup_by_tag() {
        let mut buf = BytesMut::new();
        append_tlv(&mut buf, 9, b"other");
        append_tlv(&mut buf, TLV_TRACE, b"trace-bytes");
        let frame = buf.freeze();
        assert_eq!(
            find_tlv(&frame, TLV_TRACE).unwrap(),
            Some(&b"trace-bytes"[..])
        );
        assert_eq!(find_tlv(&frame, 9).unwrap(), Some(&b"other"[..]));
        assert_eq!(find_tlv(&frame, 3).unwrap(), None);
        assert_eq!(find_tlv(&[], TLV_TRACE).unwrap(), None);
    }

    #[test]
    fn tlv_rejects_truncation_and_overflow() {
        let frame = encode_tlv(TLV_TRACE, b"payload");
        assert!(matches!(
            find_tlv(&frame[..frame.len() - 1], TLV_TRACE),
            Err(WireError::Truncated)
        ));
        assert!(matches!(
            find_tlv(&frame[..3], TLV_TRACE),
            Err(WireError::Truncated)
        ));
        let mut raw = frame.to_vec();
        raw[1..5].copy_from_slice(&(MAX_TLV + 1).to_be_bytes());
        assert!(matches!(
            find_tlv(&raw, TLV_TRACE),
            Err(WireError::LengthOverflow(_))
        ));
    }

    #[test]
    fn empty_batch() {
        let frame = encode_event_batch(&[]);
        assert!(decode_event_batch(&frame).unwrap().is_empty());
    }

    #[test]
    fn truncated_frame_errors() {
        let frame = encode_event(&sample());
        for cut in [0usize, 5, 25, frame.len() - 1] {
            let sliced = frame.slice(..cut);
            assert!(decode_event(&sliced).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn bad_version_rejected() {
        let frame = encode_event(&sample());
        let mut raw = frame.to_vec();
        raw[0] = 99;
        assert_eq!(
            decode_event(&Bytes::from(raw.clone())),
            Err(WireError::BadVersion(99))
        );
        raw[0] = 0;
        assert_eq!(
            decode_event(&Bytes::from(raw)),
            Err(WireError::BadVersion(0))
        );
    }

    #[test]
    fn bad_kind_rejected() {
        let frame = encode_event(&sample());
        let mut raw = frame.to_vec();
        raw[9] = 250; // kind tag position: version(1)+id(8)
        assert_eq!(
            decode_event(&Bytes::from(raw)),
            Err(WireError::BadKind(250))
        );
    }

    #[test]
    fn oversized_string_rejected() {
        // Header + a string length declaring 2 MiB.
        let ev = sample();
        let frame = encode_event(&ev);
        let mut raw = frame.to_vec();
        // watch_root length is at offset 26.
        raw[26..30].copy_from_slice(&(MAX_STR + 1).to_be_bytes());
        assert!(matches!(
            decode_event(&Bytes::from(raw)),
            Err(WireError::LengthOverflow(_))
        ));
    }

    #[test]
    fn non_utf8_rejected() {
        let ev = StandardEvent::new(EventKind::Create, "ab", "f");
        let frame = encode_event(&ev);
        let mut raw = frame.to_vec();
        // Corrupt the first byte of the watch_root payload (offset 30).
        raw[30] = 0xFF;
        raw[31] = 0xFE;
        assert_eq!(decode_event(&Bytes::from(raw)), Err(WireError::BadUtf8));
    }
}
