//! Property tests for event coalescing: the compressed stream must
//! leave a state-tracking consumer in exactly the same final state as
//! the raw stream.

use fsmon_events::{coalesce, EventKind, StandardEvent};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A catch-up consumer's view: path → exists (ignoring content).
fn apply(events: &[StandardEvent]) -> BTreeMap<String, bool> {
    let mut state = BTreeMap::new();
    for ev in events {
        match ev.kind {
            EventKind::Create => {
                state.insert(ev.path.clone(), true);
            }
            EventKind::Delete | EventKind::ParentDirectoryRemoved => {
                state.remove(&ev.path);
            }
            EventKind::MovedFrom => {
                state.remove(&ev.path);
            }
            EventKind::MovedTo => {
                state.insert(ev.path.clone(), true);
            }
            // A mutation implies the path exists at that moment (a
            // Modify can stand in for Delete+Create of an existing
            // path, which is exactly the transition coalescing emits).
            _ => {
                state.insert(ev.path.clone(), true);
            }
        }
    }
    state
}

/// Generate *valid* event histories: per path, the sequence must be
/// realizable from some prior state (no Create of an existing path, no
/// Modify/Delete of a known-absent one). Coalescing documents its input
/// as a real monitor stream, which always satisfies this.
fn arb_events() -> impl Strategy<Value = Vec<StandardEvent>> {
    let paths = ["/a", "/b", "/c", "/d/e"];
    prop::collection::vec((0usize..4, any::<u8>()), 0..40).prop_map(move |picks| {
        use std::collections::HashMap;
        // None = prior state unknown; Some(exists).
        let mut state: HashMap<usize, bool> = HashMap::new();
        let mut out = Vec::new();
        for (p, r) in picks {
            let exists = state.get(&p).copied();
            let kind = match exists {
                Some(false) => EventKind::Create,
                Some(true) => match r % 5 {
                    0 => EventKind::Delete,
                    1 => EventKind::Attrib,
                    2 => EventKind::Truncate,
                    3 => EventKind::Xattr,
                    _ => EventKind::Modify,
                },
                None => match r % 6 {
                    0 => EventKind::Create, // prior: absent
                    1 => EventKind::Delete, // prior: present
                    2 => EventKind::Attrib,
                    3 => EventKind::Truncate,
                    4 => EventKind::Xattr,
                    _ => EventKind::Modify,
                },
            };
            state.insert(p, kind != EventKind::Delete);
            out.push(StandardEvent::new(kind, "/root", paths[p]));
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Coalescing never grows the stream and never changes the final
    /// namespace a consumer reconstructs.
    #[test]
    fn coalesce_preserves_final_state(events in arb_events()) {
        let out = coalesce(&events);
        prop_assert!(out.len() <= events.len());
        prop_assert_eq!(apply(&out), apply(&events));
    }

    /// Coalescing is idempotent: a second pass changes nothing.
    #[test]
    fn coalesce_idempotent(events in arb_events()) {
        let once = coalesce(&events);
        let twice = coalesce(&once);
        prop_assert_eq!(once, twice);
    }

    /// Every output event appeared in the input with the same path —
    /// except Delete+Create merging into Modify, the one synthesized
    /// transition.
    #[test]
    fn coalesce_invents_no_paths(events in arb_events()) {
        let input_paths: std::collections::HashSet<&str> =
            events.iter().map(|e| e.path.as_str()).collect();
        for ev in coalesce(&events) {
            prop_assert!(input_paths.contains(ev.path.as_str()), "{}", ev.path);
        }
    }
}
