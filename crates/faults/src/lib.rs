#![warn(missing_docs)]

//! # fsmon-faults
//!
//! A deterministic, seed-driven fault-injection plane for the FSMonitor
//! pipeline, plus the shared [`Retry`] policy every recovery path uses.
//!
//! The model: a [`FaultPlan`] names the faults to inject — a
//! probability, an optional warm-up skip, and an injection budget per
//! [`FaultPoint`] — and a seed. Arming the plan yields a cheap,
//! cloneable [`Faults`] handle that components consult at their fault
//! points via [`Faults::inject`]. When unarmed (the default
//! everywhere), `inject` is a single `Option` check — production code
//! pays nothing.
//!
//! Determinism: every fault point owns its own SplitMix64 stream,
//! seeded from `(plan seed, point name)`. Whether a fault fires depends
//! only on the seed and how many times *that point* has been consulted,
//! never on thread interleaving across points — so a chaos run with a
//! given seed injects a reproducible fault schedule per site.
//!
//! Every injection increments `fsmon_faults_injected_total{point=…}` so
//! chaos verdicts can show what was actually thrown at the pipeline.
//!
//! ```
//! use fsmon_faults::{FaultPlan, FaultPoint, FaultRule};
//!
//! let faults = FaultPlan::new(7)
//!     .with(FaultPoint::StoreAppend, FaultRule::percent(50))
//!     .arm();
//! let fired = (0..100)
//!     .filter(|_| faults.inject(FaultPoint::StoreAppend).is_some())
//!     .count();
//! assert!(fired > 10 && fired < 90);
//! // Same seed, same schedule.
//! let again = FaultPlan::new(7)
//!     .with(FaultPoint::StoreAppend, FaultRule::percent(50))
//!     .arm();
//! let fired2 = (0..100)
//!     .filter(|_| again.inject(FaultPoint::StoreAppend).is_some())
//!     .count();
//! assert_eq!(fired, fired2);
//! ```

mod retry;

pub use retry::{Backoff, Retry};

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A place in the pipeline where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultPoint {
    /// `fid2path` returns a transient error.
    Fid2Path = 0,
    /// `fid2path` stalls for the rule's delay before answering.
    Fid2PathDelay = 1,
    /// Reading a changelog batch fails transiently.
    ChangelogRead = 2,
    /// Clearing (purging) consumed changelog records fails.
    ChangelogPurge = 3,
    /// A pub/sub link drops: TCP connection reset, inproc peer lost.
    MqDisconnect = 4,
    /// The publisher's high-water mark saturates and a send is dropped.
    MqHwm = 5,
    /// A store append fails with an I/O error before any bytes land.
    StoreAppend = 6,
    /// A store append tears mid-frame, leaving a torn tail on disk.
    StoreTornTail = 7,
    /// A collector lane thread crashes at a loop boundary.
    CollectorCrash = 8,
    /// The aggregator's publish lane crashes at a loop boundary.
    AggregatorPublishCrash = 9,
    /// The aggregator's store lane crashes at a loop boundary.
    AggregatorStoreCrash = 10,
    /// The history REQ/REP service fails a request with an error
    /// reply (the client's retry path must heal it).
    HistoryRequest = 11,
    /// A Spectrum Scale audit-log poll fails transiently.
    SpectrumScan = 12,
    /// A collector lane stalls for the rule's delay at a loop
    /// boundary — the lane stays alive but stops draining, growing
    /// ingest lag (the breach-injection point for SLO tests).
    CollectorStall = 13,
}

/// Number of distinct fault points.
const POINTS: usize = 14;

impl FaultPoint {
    /// Every fault point, in declaration order.
    pub const ALL: [FaultPoint; POINTS] = [
        FaultPoint::Fid2Path,
        FaultPoint::Fid2PathDelay,
        FaultPoint::ChangelogRead,
        FaultPoint::ChangelogPurge,
        FaultPoint::MqDisconnect,
        FaultPoint::MqHwm,
        FaultPoint::StoreAppend,
        FaultPoint::StoreTornTail,
        FaultPoint::CollectorCrash,
        FaultPoint::AggregatorPublishCrash,
        FaultPoint::AggregatorStoreCrash,
        FaultPoint::HistoryRequest,
        FaultPoint::SpectrumScan,
        FaultPoint::CollectorStall,
    ];

    /// Stable label used for seeding and telemetry.
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::Fid2Path => "fid2path",
            FaultPoint::Fid2PathDelay => "fid2path_delay",
            FaultPoint::ChangelogRead => "changelog_read",
            FaultPoint::ChangelogPurge => "changelog_purge",
            FaultPoint::MqDisconnect => "mq_disconnect",
            FaultPoint::MqHwm => "mq_hwm",
            FaultPoint::StoreAppend => "store_append",
            FaultPoint::StoreTornTail => "store_torn_tail",
            FaultPoint::CollectorCrash => "collector_crash",
            FaultPoint::AggregatorPublishCrash => "aggregator_publish_crash",
            FaultPoint::AggregatorStoreCrash => "aggregator_store_crash",
            FaultPoint::HistoryRequest => "history_request",
            FaultPoint::SpectrumScan => "spectrum_scan",
            FaultPoint::CollectorStall => "collector_stall",
        }
    }
}

/// What the consulted component should do about an injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail the operation (return the point's transient error).
    Fail,
    /// Stall for the given duration, then proceed normally.
    Delay(Duration),
    /// Crash: the lane should exit its loop as if the thread died.
    Crash,
}

/// When and how often one fault point fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRule {
    /// Firing probability per consultation, in parts per 10 000.
    pub per_10k: u32,
    /// Injection budget; 0 means unlimited.
    pub max: u64,
    /// Skip the first `after` consultations (warm-up grace).
    pub after: u64,
    /// Stall length for delay points; ignored elsewhere.
    pub delay: Duration,
}

impl FaultRule {
    /// Fire with probability `pct`% per consultation, no budget cap.
    pub fn percent(pct: u32) -> FaultRule {
        FaultRule {
            per_10k: pct.saturating_mul(100).min(10_000),
            max: 0,
            after: 0,
            delay: Duration::from_millis(5),
        }
    }

    /// Fire with probability `per_10k`/10000 per consultation.
    pub fn per_10k(per_10k: u32) -> FaultRule {
        FaultRule {
            per_10k: per_10k.min(10_000),
            max: 0,
            after: 0,
            delay: Duration::from_millis(5),
        }
    }

    /// Cap the total number of injections at this point.
    pub fn limit(mut self, max: u64) -> FaultRule {
        self.max = max;
        self
    }

    /// Skip the first `after` consultations before rolling the dice.
    pub fn after(mut self, after: u64) -> FaultRule {
        self.after = after;
        self
    }

    /// Set the stall length used by delay points.
    pub fn delay(mut self, delay: Duration) -> FaultRule {
        self.delay = delay;
        self
    }
}

/// A seeded schedule of injectable faults. Build one, then [`arm`]
/// it into the [`Faults`] handle the pipeline consults.
///
/// [`arm`]: FaultPlan::arm
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<(FaultPoint, FaultRule)>,
}

impl FaultPlan {
    /// An empty plan (injects nothing until rules are added).
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Add (or replace) the rule for one fault point.
    pub fn with(mut self, point: FaultPoint, rule: FaultRule) -> FaultPlan {
        self.rules.retain(|(p, _)| *p != point);
        self.rules.push((point, rule));
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Look up a named plan: `none`, `basic`, or `storm`.
    ///
    /// * `none` — injects nothing; a control run.
    /// * `basic` — the acceptance trio: mq disconnects, store append
    ///   I/O errors, and collector crashes.
    /// * `storm` — everything at once, including torn tails, HWM
    ///   saturation, fid2path errors/latency, changelog read/purge
    ///   failures, and aggregator lane crashes.
    pub fn named(name: &str, seed: u64) -> Option<FaultPlan> {
        match name {
            "none" => Some(FaultPlan::new(seed)),
            "basic" => Some(
                FaultPlan::new(seed)
                    .with(FaultPoint::MqDisconnect, FaultRule::per_10k(40).limit(8))
                    .with(FaultPoint::StoreAppend, FaultRule::per_10k(200).limit(64))
                    .with(
                        FaultPoint::CollectorCrash,
                        FaultRule::per_10k(150).after(20).limit(6),
                    ),
            ),
            "storm" => Some(
                FaultPlan::new(seed)
                    .with(FaultPoint::Fid2Path, FaultRule::per_10k(100).limit(200))
                    .with(
                        FaultPoint::Fid2PathDelay,
                        FaultRule::per_10k(50)
                            .limit(50)
                            .delay(Duration::from_millis(2)),
                    )
                    .with(FaultPoint::ChangelogRead, FaultRule::per_10k(200).limit(64))
                    .with(
                        FaultPoint::ChangelogPurge,
                        FaultRule::per_10k(200).limit(64),
                    )
                    .with(FaultPoint::MqDisconnect, FaultRule::per_10k(60).limit(10))
                    .with(FaultPoint::MqHwm, FaultRule::per_10k(80).limit(200))
                    .with(FaultPoint::StoreAppend, FaultRule::per_10k(250).limit(64))
                    .with(FaultPoint::StoreTornTail, FaultRule::per_10k(120).limit(16))
                    .with(
                        FaultPoint::CollectorCrash,
                        FaultRule::per_10k(120).after(20).limit(6),
                    )
                    .with(
                        FaultPoint::AggregatorPublishCrash,
                        FaultRule::per_10k(30).after(50).limit(3),
                    )
                    .with(
                        FaultPoint::AggregatorStoreCrash,
                        FaultRule::per_10k(30).after(50).limit(3),
                    )
                    .with(
                        FaultPoint::HistoryRequest,
                        FaultRule::per_10k(2000).limit(16),
                    )
                    .with(FaultPoint::SpectrumScan, FaultRule::per_10k(200).limit(32)),
            ),
            _ => None,
        }
    }

    /// Names accepted by [`FaultPlan::named`].
    pub const NAMED: [&'static str; 3] = ["none", "basic", "storm"];

    /// Arm the plan: build the runtime plane the pipeline consults.
    pub fn arm(&self) -> Faults {
        Faults(Some(Arc::new(FaultPlane::new(self))))
    }
}

/// Per-point runtime state: its RNG stream and its counters.
struct Site {
    rule: FaultRule,
    rng: u64,
    consults: u64,
    injected: u64,
    counter: Arc<fsmon_telemetry::metrics::Counter>,
}

/// The armed runtime behind a [`Faults`] handle.
pub struct FaultPlane {
    sites: [Mutex<Option<Site>>; POINTS],
    injected_total: AtomicU64,
}

impl FaultPlane {
    fn new(plan: &FaultPlan) -> FaultPlane {
        let scope = fsmon_telemetry::root().scope("faults");
        let sites: [Mutex<Option<Site>>; POINTS] = Default::default();
        for (point, rule) in &plan.rules {
            // Independent deterministic stream per site: mix the plan
            // seed with the point's name so adding a rule for one point
            // never shifts another point's schedule.
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in point.name().bytes() {
                h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
            }
            let counter = scope
                .with_label("point", point.name())
                .counter("injected_total");
            *sites[*point as usize].lock() = Some(Site {
                rule: *rule,
                rng: plan.seed ^ h,
                consults: 0,
                injected: 0,
                counter,
            });
        }
        FaultPlane {
            sites,
            injected_total: AtomicU64::new(0),
        }
    }

    fn inject(&self, point: FaultPoint) -> Option<FaultAction> {
        let mut slot = self.sites[point as usize].lock();
        let site = slot.as_mut()?;
        site.consults += 1;
        if site.consults <= site.rule.after {
            return None;
        }
        if site.rule.max != 0 && site.injected >= site.rule.max {
            return None;
        }
        if splitmix64(&mut site.rng) % 10_000 >= site.rule.per_10k as u64 {
            return None;
        }
        site.injected += 1;
        site.counter.inc();
        self.injected_total.fetch_add(1, Ordering::Relaxed);
        Some(match point {
            FaultPoint::Fid2PathDelay | FaultPoint::CollectorStall => {
                FaultAction::Delay(site.rule.delay)
            }
            FaultPoint::CollectorCrash
            | FaultPoint::AggregatorPublishCrash
            | FaultPoint::AggregatorStoreCrash => FaultAction::Crash,
            _ => FaultAction::Fail,
        })
    }
}

/// A cheap, cloneable handle components consult at their fault points.
///
/// The default handle is unarmed and injects nothing; production code
/// paths carry one at zero cost.
#[derive(Clone, Default)]
pub struct Faults(Option<Arc<FaultPlane>>);

impl Faults {
    /// The unarmed handle: never injects.
    pub fn none() -> Faults {
        Faults(None)
    }

    /// Whether a plan is armed behind this handle.
    pub fn armed(&self) -> bool {
        self.0.is_some()
    }

    /// Consult the plane at `point`. `None` means proceed normally.
    #[inline]
    pub fn inject(&self, point: FaultPoint) -> Option<FaultAction> {
        self.0.as_ref()?.inject(point)
    }

    /// Consult `point` and, for points that can stall, serve the stall
    /// here. Returns `true` when the operation should fail.
    pub fn inject_or_delay(&self, point: FaultPoint) -> bool {
        match self.inject(point) {
            None => false,
            Some(FaultAction::Delay(d)) => {
                std::thread::sleep(d);
                false
            }
            Some(_) => true,
        }
    }

    /// Total faults injected through this handle so far.
    pub fn injected_total(&self) -> u64 {
        self.0
            .as_ref()
            .map(|p| p.injected_total.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

impl std::fmt::Debug for Faults {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Faults")
            .field("armed", &self.armed())
            .field("injected_total", &self.injected_total())
            .finish()
    }
}

/// SplitMix64 step: advances `state` and returns the next output.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(plan: &FaultPlan, point: FaultPoint, n: usize) -> Vec<bool> {
        let faults = plan.arm();
        (0..n).map(|_| faults.inject(point).is_some()).collect()
    }

    #[test]
    fn unarmed_handle_never_injects() {
        let faults = Faults::none();
        for point in FaultPoint::ALL {
            assert_eq!(faults.inject(point), None);
        }
        assert!(!faults.armed());
        assert_eq!(faults.injected_total(), 0);
    }

    #[test]
    fn same_seed_same_schedule() {
        let plan = FaultPlan::new(42).with(FaultPoint::StoreAppend, FaultRule::per_10k(3000));
        assert_eq!(
            schedule(&plan, FaultPoint::StoreAppend, 500),
            schedule(&plan, FaultPoint::StoreAppend, 500)
        );
    }

    #[test]
    fn different_seeds_diverge() {
        let a = FaultPlan::new(1).with(FaultPoint::StoreAppend, FaultRule::per_10k(3000));
        let b = FaultPlan::new(2).with(FaultPoint::StoreAppend, FaultRule::per_10k(3000));
        assert_ne!(
            schedule(&a, FaultPoint::StoreAppend, 500),
            schedule(&b, FaultPoint::StoreAppend, 500)
        );
    }

    #[test]
    fn sites_are_independent_streams() {
        // Adding a rule for another point must not shift this point's
        // schedule.
        let solo = FaultPlan::new(9).with(FaultPoint::MqHwm, FaultRule::per_10k(2500));
        let duo = FaultPlan::new(9)
            .with(FaultPoint::MqHwm, FaultRule::per_10k(2500))
            .with(FaultPoint::Fid2Path, FaultRule::per_10k(2500));
        let want = schedule(&solo, FaultPoint::MqHwm, 300);
        let faults = duo.arm();
        let got: Vec<bool> = (0..300)
            .map(|_| {
                // Interleave consultations of the other site.
                let _ = faults.inject(FaultPoint::Fid2Path);
                faults.inject(FaultPoint::MqHwm).is_some()
            })
            .collect();
        assert_eq!(want, got);
    }

    #[test]
    fn budget_and_warmup_are_enforced() {
        let faults = FaultPlan::new(5)
            .with(
                FaultPoint::CollectorCrash,
                FaultRule::per_10k(10_000).after(10).limit(3),
            )
            .arm();
        let fired = (0..50)
            .filter(|_| faults.inject(FaultPoint::CollectorCrash).is_some())
            .count();
        assert_eq!(fired, 3, "budget caps injections");
        assert_eq!(faults.injected_total(), 3);
        // None fired during warm-up: re-run and index consultations.
        let again = FaultPlan::new(5)
            .with(
                FaultPoint::CollectorCrash,
                FaultRule::per_10k(10_000).after(10).limit(3),
            )
            .arm();
        for i in 0..10 {
            assert!(
                again.inject(FaultPoint::CollectorCrash).is_none(),
                "warm-up consultation {i} must not fire"
            );
        }
        assert!(again.inject(FaultPoint::CollectorCrash).is_some());
    }

    #[test]
    fn actions_match_points() {
        let faults = FaultPlan::new(3)
            .with(FaultPoint::Fid2PathDelay, FaultRule::per_10k(10_000))
            .with(FaultPoint::CollectorCrash, FaultRule::per_10k(10_000))
            .with(FaultPoint::StoreAppend, FaultRule::per_10k(10_000))
            .arm();
        assert!(matches!(
            faults.inject(FaultPoint::Fid2PathDelay),
            Some(FaultAction::Delay(_))
        ));
        assert_eq!(
            faults.inject(FaultPoint::CollectorCrash),
            Some(FaultAction::Crash)
        );
        assert_eq!(
            faults.inject(FaultPoint::StoreAppend),
            Some(FaultAction::Fail)
        );
    }

    #[test]
    fn named_plans_resolve() {
        for name in FaultPlan::NAMED {
            assert!(FaultPlan::named(name, 7).is_some(), "{name}");
        }
        assert!(FaultPlan::named("bogus", 7).is_none());
        // `none` injects nothing even at high consultation volume.
        let none = FaultPlan::named("none", 7).unwrap().arm();
        assert!((0..1000).all(|_| none.inject(FaultPoint::StoreAppend).is_none()));
    }

    #[test]
    fn injections_visible_in_telemetry() {
        let before = fsmon_telemetry::global().snapshot();
        let faults = FaultPlan::new(11)
            .with(
                FaultPoint::MqDisconnect,
                FaultRule::per_10k(10_000).limit(4),
            )
            .arm();
        for _ in 0..10 {
            let _ = faults.inject(FaultPoint::MqDisconnect);
        }
        let delta = fsmon_telemetry::global().snapshot().delta_from(&before);
        assert_eq!(delta.counter("fsmon_faults_injected_total"), 4);
    }
}
