//! The shared retry policy: bounded exponential backoff with
//! decorrelated jitter and an overall deadline.
//!
//! One policy type serves every recovery path in the pipeline —
//! collectors retrying `fid2path` and changelog reads, consumers
//! re-dialing the mq, the aggregator's store lane riding out transient
//! append failures — so backoff behaviour is tuned in one place.

use std::time::{Duration, Instant};

/// A bounded exponential backoff policy with decorrelated jitter.
///
/// `run` retries a fallible closure; `backoff` hands out an iterator of
/// sleep durations for callers that need to drive the loop themselves
/// (e.g. to check a stop flag between attempts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retry {
    /// First (and minimum) sleep between attempts.
    pub base: Duration,
    /// Upper bound on any single sleep.
    pub cap: Duration,
    /// Maximum number of attempts (including the first); 0 acts as 1.
    pub max_attempts: u32,
    /// Overall budget across all attempts and sleeps.
    pub deadline: Duration,
    /// Seed for the jitter stream (deterministic per seed).
    pub seed: u64,
}

impl Default for Retry {
    fn default() -> Retry {
        Retry {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(50),
            max_attempts: 8,
            deadline: Duration::from_secs(5),
            seed: 0x5eed,
        }
    }
}

impl Retry {
    /// A policy tuned for in-process transients: tiny sleeps, a handful
    /// of attempts, five-second budget.
    pub fn fast() -> Retry {
        Retry::default()
    }

    /// A patient policy for link-level recovery (mq reconnects).
    pub fn patient() -> Retry {
        Retry {
            base: Duration::from_millis(5),
            cap: Duration::from_millis(250),
            max_attempts: 20,
            deadline: Duration::from_secs(30),
            ..Retry::default()
        }
    }

    /// Override the jitter seed (chaos runs derive it from the plan).
    pub fn with_seed(mut self, seed: u64) -> Retry {
        self.seed = seed;
        self
    }

    /// The sleep schedule as an iterator. Yields at most
    /// `max_attempts - 1` sleeps and stops once the deadline would be
    /// exceeded; an exhausted iterator means "give up".
    pub fn backoff(&self) -> Backoff {
        Backoff {
            rng: self.seed | 1,
            prev: self.base,
            base: self.base,
            cap: self.cap,
            left: self.max_attempts.saturating_sub(1),
            deadline: Instant::now() + self.deadline,
        }
    }

    /// Run `op` until it succeeds or the policy is exhausted. The
    /// closure receives the attempt number (0-based); the last error is
    /// returned on exhaustion.
    pub fn run<T, E>(&self, mut op: impl FnMut(u32) -> Result<T, E>) -> Result<T, E> {
        let mut backoff = self.backoff();
        let mut attempt = 0;
        loop {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) => match backoff.next() {
                    Some(sleep) => {
                        std::thread::sleep(sleep);
                        attempt += 1;
                    }
                    None => return Err(e),
                },
            }
        }
    }
}

/// Iterator of backoff sleeps produced by [`Retry::backoff`].
#[derive(Debug, Clone)]
pub struct Backoff {
    rng: u64,
    prev: Duration,
    base: Duration,
    cap: Duration,
    left: u32,
    deadline: Instant,
}

impl Iterator for Backoff {
    type Item = Duration;

    fn next(&mut self) -> Option<Duration> {
        if self.left == 0 || Instant::now() >= self.deadline {
            return None;
        }
        self.left -= 1;
        // Decorrelated jitter: uniform in [base, prev * 3], capped.
        let lo = self.base.as_nanos() as u64;
        let hi = (self.prev.as_nanos() as u64).saturating_mul(3).max(lo + 1);
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let pick = lo + z % (hi - lo);
        let sleep = Duration::from_nanos(pick).min(self.cap);
        // Never sleep past the deadline.
        let remaining = self.deadline.saturating_duration_since(Instant::now());
        let sleep = sleep.min(remaining);
        self.prev = sleep.max(self.base);
        Some(sleep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn succeeds_first_try_without_sleeping() {
        let t0 = Instant::now();
        let out: Result<u32, ()> = Retry::fast().run(|_| Ok(7));
        assert_eq!(out, Ok(7));
        assert!(t0.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn retries_until_success() {
        let mut calls = 0;
        let out: Result<u32, &str> = Retry::fast().run(|attempt| {
            calls += 1;
            if attempt < 3 {
                Err("transient")
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out, Ok(3));
        assert_eq!(calls, 4);
    }

    #[test]
    fn gives_up_after_max_attempts_with_last_error() {
        let mut calls = 0;
        let policy = Retry {
            max_attempts: 4,
            ..Retry::fast()
        };
        let out: Result<(), u32> = policy.run(|attempt| {
            calls += 1;
            Err(attempt)
        });
        assert_eq!(out, Err(3), "last error surfaces");
        assert_eq!(calls, 4);
    }

    #[test]
    fn backoff_respects_bounds_and_budget() {
        let policy = Retry {
            base: Duration::from_millis(2),
            cap: Duration::from_millis(10),
            max_attempts: 6,
            deadline: Duration::from_secs(60),
            seed: 99,
        };
        let sleeps: Vec<Duration> = policy.backoff().collect();
        assert_eq!(sleeps.len(), 5);
        for s in &sleeps {
            assert!(*s >= policy.base && *s <= policy.cap, "{s:?}");
        }
    }

    #[test]
    fn deadline_stops_the_schedule() {
        let policy = Retry {
            base: Duration::from_millis(20),
            cap: Duration::from_millis(20),
            max_attempts: 1000,
            deadline: Duration::from_millis(60),
            ..Retry::fast()
        };
        let t0 = Instant::now();
        let out: Result<(), ()> = policy.run(|_| Err(()));
        assert!(out.is_err());
        assert!(t0.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let policy = Retry::fast().with_seed(1234);
        let a: Vec<Duration> = policy.backoff().collect();
        let b: Vec<Duration> = policy.backoff().collect();
        assert_eq!(a, b);
    }
}
