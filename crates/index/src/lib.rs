#![warn(missing_docs)]

//! # fsmon-index
//!
//! A materialized metadata index folded from FSMonitor's stamped event
//! stream — the consumer the paper's lineage points at: Robinhood
//! replaces namespace scans with a database folded from Lustre
//! changelogs, and Icicle extends the same idea into real-time metadata
//! indexing. This crate turns the monitor from a pipe into a
//! storage-intelligence system:
//!
//! * [`state`] — [`NamespaceIndex`]: `path → {size, owner, mtime,
//!   kind, mdt}` entries plus per-directory rollups (entry count, total
//!   bytes, last activity, recent-activity rate), maintained
//!   incrementally on every CREAT/UNLNK/RENME/CLOSE/SATTR. The fold is
//!   a deterministic pure function of the stamped sequence, so
//!   incremental apply and full replay converge on identical state.
//! * [`policy`] — an incremental [`PolicyEngine`] reusing the `rules`
//!   crate's predicate machinery: purge candidates older than N, hot
//!   directories by recent-activity rate, orphan detection — evaluated
//!   against the index, counted as events arrive, never by scanning
//!   storage.
//! * [`service`] — [`IndexService`]: the durable wrapper. Snapshots
//!   (CRC-guarded, atomically replaced) double as the applied-seq
//!   cursor, so a restarted index resumes from its cursor and catches
//!   up point-in-time via the store's `get_since` replay API.
//!
//! ```
//! use fsmon_index::{NamespaceIndex, FindQuery};
//! use fsmon_events::{EventKind, StandardEvent};
//!
//! let mut index = NamespaceIndex::new();
//! let mut ev = StandardEvent::new(EventKind::Create, "/r", "/proj/a.h5").with_size(4096);
//! ev.id = 1;
//! index.apply(&ev);
//! let hits = index.find(&FindQuery::default().pattern("/proj/*.h5"), 0);
//! assert_eq!(hits.len(), 1);
//! assert_eq!(index.applied_seq(), 1);
//! ```

pub mod policy;
pub mod service;
pub mod state;

pub use policy::{PolicyEngine, PolicyReport, PolicySpec};
pub use service::IndexService;
pub use state::{DirRollup, DuRow, EntryKind, FindQuery, IndexEntry, NamespaceIndex};
