//! The incremental policy engine: rules evaluated against the
//! materialized index as events arrive, never by scanning storage.
//!
//! Each policy couples a `rules`-crate predicate ([`Rule`]: path
//! pattern + kind mask) — counted live against the event stream — with
//! an index-side evaluation ([`PolicySpec`]) that names current
//! candidates: purge candidates older than N, hot directories by
//! recent-activity rate, orphaned entries. This is the Robinhood shape:
//! policy runs read the index the changelog fold maintains, so their
//! cost is independent of namespace size on storage.

use crate::state::{EntryKind, NamespaceIndex};
use fsmon_events::kind::KindMask;
use fsmon_events::{EventKind, StandardEvent};
use fsmon_rules::Rule;
use std::sync::Arc;

/// How many candidate paths a [`PolicyReport`] carries as a sample.
const SAMPLE: usize = 5;

/// The index-side evaluation a policy performs.
#[derive(Debug, Clone)]
pub enum PolicySpec {
    /// Files whose mtime is at least this old: purge/tiering
    /// candidates.
    PurgeAge {
        /// Minimum age relative to evaluation time.
        older_than_ns: u64,
    },
    /// Directories ranked by recent-activity rate (events/second over
    /// the index's activity window).
    HotDirs {
        /// Minimum rate to qualify as hot.
        min_rate: f64,
    },
    /// Entries whose parent directory is unknown to the index —
    /// stream anomalies worth an operator's look.
    Orphans,
}

/// One policy: a live event predicate plus an index evaluation.
pub struct Policy {
    rule: Rule,
    spec: PolicySpec,
    matched: u64,
    t_matches: Arc<fsmon_telemetry::Counter>,
}

/// Evaluation result for one policy.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyReport {
    /// Policy name.
    pub name: String,
    /// Events that matched the live predicate since attach.
    pub matched_events: u64,
    /// Entries/directories currently named by the evaluation.
    pub candidates: u64,
    /// Up to a handful of example candidates.
    pub sample: Vec<String>,
}

/// A set of policies folded alongside the index.
pub struct PolicyEngine {
    policies: Vec<Policy>,
}

impl PolicyEngine {
    /// An engine with no policies.
    pub fn empty() -> PolicyEngine {
        PolicyEngine {
            policies: Vec::new(),
        }
    }

    /// The standard operator set: `purge-age` (files under `pattern`
    /// older than `purge_age_ns`), `hot-dirs` (rate above `min_rate`),
    /// and `orphans`.
    pub fn standard(pattern: &str, purge_age_ns: u64, min_rate: f64) -> PolicyEngine {
        let mut engine = PolicyEngine::empty();
        engine.add(
            Rule::new("purge-age", pattern, KindMask::ALL),
            PolicySpec::PurgeAge {
                older_than_ns: purge_age_ns,
            },
        );
        engine.add(
            Rule::new("hot-dirs", "/**", KindMask::ALL),
            PolicySpec::HotDirs { min_rate },
        );
        engine.add(
            Rule::new(
                "orphans",
                "/**",
                KindMask::from_kinds([EventKind::ParentDirectoryRemoved]),
            ),
            PolicySpec::Orphans,
        );
        engine
    }

    /// Attach a policy. The rule's predicate is counted per event; the
    /// spec is evaluated against the index on demand.
    pub fn add(&mut self, rule: Rule, spec: PolicySpec) -> &mut PolicyEngine {
        let t_matches = fsmon_telemetry::root()
            .scope("index")
            .with_label("rule", rule.name())
            .counter("rule_matches_total");
        self.policies.push(Policy {
            rule,
            spec,
            matched: 0,
            t_matches,
        });
        self
    }

    /// Number of attached policies.
    pub fn len(&self) -> usize {
        self.policies.len()
    }

    /// Whether no policies are attached.
    pub fn is_empty(&self) -> bool {
        self.policies.is_empty()
    }

    /// Total predicate matches across all policies since attach.
    pub fn total_matched(&self) -> u64 {
        self.policies.iter().map(|p| p.matched).sum()
    }

    /// Count one incoming event against every policy's predicate.
    pub fn observe(&mut self, ev: &StandardEvent) {
        for p in &mut self.policies {
            if p.rule.matches(ev) {
                p.matched += 1;
                p.t_matches.inc();
            }
        }
    }

    /// Evaluate every policy against the index as of `now_ns`.
    pub fn evaluate(&self, index: &NamespaceIndex, now_ns: u64) -> Vec<PolicyReport> {
        self.policies
            .iter()
            .map(|p| {
                let (candidates, sample) = match &p.spec {
                    PolicySpec::PurgeAge { older_than_ns } => {
                        let mut n = 0u64;
                        let mut sample = Vec::new();
                        for (path, entry) in index.entries() {
                            if entry.kind == EntryKind::Directory {
                                continue;
                            }
                            if entry.mtime_ns.saturating_add(*older_than_ns) <= now_ns
                                && p.rule.matches_path(path)
                            {
                                n += 1;
                                if sample.len() < SAMPLE {
                                    sample.push(path.clone());
                                }
                            }
                        }
                        (n, sample)
                    }
                    PolicySpec::HotDirs { min_rate } => {
                        let mut hot: Vec<(f64, &String)> = index
                            .rollups()
                            .filter_map(|(dir, r)| {
                                let rate = r.recent_rate(now_ns);
                                (rate >= *min_rate && rate > 0.0).then_some((rate, dir))
                            })
                            .collect();
                        hot.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(b.1)));
                        let sample = hot
                            .iter()
                            .take(SAMPLE)
                            .map(|(rate, dir)| format!("{dir} ({rate:.1} ev/s)"))
                            .collect();
                        (hot.len() as u64, sample)
                    }
                    PolicySpec::Orphans => {
                        let mut n = 0u64;
                        let mut sample = Vec::new();
                        for (path, _) in index.entries() {
                            let parent = match path.rfind('/') {
                                Some(0) | None => continue, // root children have a parent
                                Some(i) => &path[..i],
                            };
                            if index.get(parent).is_none() {
                                n += 1;
                                if sample.len() < SAMPLE {
                                    sample.push(path.clone());
                                }
                            }
                        }
                        (n, sample)
                    }
                };
                PolicyReport {
                    name: p.rule.name().to_string(),
                    matched_events: p.matched,
                    candidates,
                    sample,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ACTIVITY_BUCKET_NS;

    fn ev(id: u64, kind: EventKind, path: &str, ts: u64) -> StandardEvent {
        let mut e = StandardEvent::new(kind, "/r", path).with_timestamp(ts);
        e.id = id;
        e
    }

    #[test]
    fn purge_age_names_old_files_only() {
        let mut idx = NamespaceIndex::new();
        idx.apply(&ev(1, EventKind::Create, "/old.dat", 1_000));
        idx.apply(&ev(2, EventKind::Create, "/new.dat", 950_000_000_000));
        let engine = PolicyEngine::standard("/**/*.dat", 100_000_000_000, 1.0);
        let now = 1_000_000_000_000;
        let reports = engine.evaluate(&idx, now);
        let purge = reports.iter().find(|r| r.name == "purge-age").unwrap();
        assert_eq!(purge.candidates, 1);
        assert_eq!(purge.sample, vec!["/old.dat".to_string()]);
    }

    #[test]
    fn purge_age_evaluation_ignores_the_kind_mask() {
        // The kind mask gates the live-stream counter only; the
        // index-side evaluation consults just the path pattern, so a
        // rule scoped to e.g. deletions still names purge candidates.
        let mut idx = NamespaceIndex::new();
        idx.apply(&ev(1, EventKind::Create, "/old.dat", 1_000));
        let mut engine = PolicyEngine::empty();
        engine.add(
            Rule::new("purge-age", "/**/*.dat", KindMask::only(EventKind::Delete)),
            PolicySpec::PurgeAge {
                older_than_ns: 100_000,
            },
        );
        let reports = engine.evaluate(&idx, 1_000_000_000);
        assert_eq!(reports[0].candidates, 1);
        assert_eq!(reports[0].sample, vec!["/old.dat".to_string()]);
    }

    #[test]
    fn hot_dirs_ranked_by_rate() {
        let mut idx = NamespaceIndex::new();
        let base = 10 * ACTIVITY_BUCKET_NS;
        for i in 0..20 {
            idx.apply(&ev(i + 1, EventKind::Modify, "/hot/f", base + i * 1_000));
        }
        idx.apply(&ev(100, EventKind::Modify, "/cold/f", 1_000));
        let engine = PolicyEngine::standard("/**", u64::MAX, 0.5);
        let reports = engine.evaluate(&idx, base + ACTIVITY_BUCKET_NS / 2);
        let hot = reports.iter().find(|r| r.name == "hot-dirs").unwrap();
        assert_eq!(hot.candidates, 1, "only /hot is active in the window");
        assert!(hot.sample[0].starts_with("/hot "), "{:?}", hot.sample);
    }

    #[test]
    fn orphans_flag_entries_with_unknown_parent() {
        let mut idx = NamespaceIndex::new();
        // A mid-history backfill: a MODIFY on a path whose parent dir
        // was never seen.
        idx.apply(&ev(1, EventKind::Modify, "/ghost/f", 1));
        let mut mk = ev(2, EventKind::Create, "/seen", 2);
        mk.is_dir = true;
        idx.apply(&mk);
        idx.apply(&ev(3, EventKind::Create, "/seen/g", 3));
        let engine = PolicyEngine::standard("/**", u64::MAX, 1.0);
        let reports = engine.evaluate(&idx, 10);
        let orphans = reports.iter().find(|r| r.name == "orphans").unwrap();
        assert_eq!(orphans.candidates, 1);
        assert_eq!(orphans.sample, vec!["/ghost/f".to_string()]);
    }

    #[test]
    fn observe_counts_predicate_matches() {
        let mut engine = PolicyEngine::empty();
        engine.add(
            Rule::new("h5", "/**/*.h5", KindMask::only(EventKind::Create)),
            PolicySpec::Orphans,
        );
        engine.observe(&ev(1, EventKind::Create, "/a/x.h5", 1));
        engine.observe(&ev(2, EventKind::Create, "/a/x.txt", 2));
        engine.observe(&ev(3, EventKind::Modify, "/a/y.h5", 3));
        assert_eq!(engine.total_matched(), 1);
    }
}
