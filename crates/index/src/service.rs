//! The durable index service: fold + policies + snapshot cursor.
//!
//! [`IndexService`] wraps a [`NamespaceIndex`] and a [`PolicyEngine`]
//! behind the lifecycle the monitor needs: load the last snapshot on
//! open (the snapshot *is* the applied-seq cursor), fold batches as a
//! subscriber delivers them, catch up point-in-time from the store's
//! `get_since` replay API after a gap or restart, and atomically
//! replace the snapshot on save. Everything reports under the
//! `fsmon_index_*` telemetry namespace.

use crate::policy::{PolicyEngine, PolicyReport};
use crate::state::{DuRow, FindQuery, IndexEntry, NamespaceIndex};
use fsmon_events::StandardEvent;
use fsmon_store::{EventStore, StoreError};
use fsmon_telemetry::{Counter, Gauge, Histogram};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Batch size for [`IndexService::catch_up`] replay pulls.
const CATCH_UP_BATCH: usize = 4096;

/// A [`NamespaceIndex`] with durability, policies, and telemetry.
pub struct IndexService {
    index: NamespaceIndex,
    policies: PolicyEngine,
    snapshot_path: Option<PathBuf>,
    /// Stamped events that arrived ahead of the fold cursor. The live
    /// stream is exactly-once but only *eventually* ordered — a gap
    /// healed from the store can surface after later ids — so the fold
    /// stages out-of-order arrivals here and applies strictly
    /// `applied_seq + 1, +2, …`, keeping incremental state identical
    /// to a linear replay.
    pending: std::collections::BTreeMap<u64, StandardEvent>,
    t_applied: Arc<Counter>,
    t_snapshots: Arc<Counter>,
    t_rebuilds: Arc<Counter>,
    t_fold_ns: Arc<Histogram>,
    t_query_ns: Arc<Histogram>,
    t_applied_seq: Arc<Gauge>,
    t_entries: Arc<Gauge>,
    t_resident: Arc<Gauge>,
    t_lag: Arc<Gauge>,
    t_pending: Arc<Gauge>,
}

impl std::fmt::Debug for IndexService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndexService")
            .field("applied_seq", &self.index.applied_seq())
            .field("entries", &self.index.len())
            .field("policies", &self.policies.len())
            .field("snapshot_path", &self.snapshot_path)
            .finish_non_exhaustive()
    }
}

impl IndexService {
    /// An in-memory service (no snapshot file) with the given policies.
    pub fn new(policies: PolicyEngine) -> IndexService {
        IndexService::with_index(NamespaceIndex::new(), None, policies)
    }

    /// Open a service backed by a snapshot file. A readable,
    /// CRC-valid snapshot resumes the index from its applied-seq
    /// cursor; a missing or corrupt one starts empty (the store replay
    /// rebuilds state, so corruption costs time, not correctness).
    pub fn open(path: impl Into<PathBuf>, policies: PolicyEngine) -> IndexService {
        let path = path.into();
        let index = std::fs::read(&path)
            .ok()
            .and_then(|raw| NamespaceIndex::decode_snapshot(&raw))
            .unwrap_or_default();
        IndexService::with_index(index, Some(path), policies)
    }

    fn with_index(
        index: NamespaceIndex,
        snapshot_path: Option<PathBuf>,
        policies: PolicyEngine,
    ) -> IndexService {
        let scope = fsmon_telemetry::root().scope("index");
        let svc = IndexService {
            index,
            policies,
            snapshot_path,
            pending: std::collections::BTreeMap::new(),
            t_applied: scope.counter("events_applied_total"),
            t_snapshots: scope.counter("snapshots_total"),
            t_rebuilds: scope.counter("rebuilds_total"),
            t_fold_ns: scope.histogram("fold_ns"),
            t_query_ns: scope.histogram("query_ns"),
            t_applied_seq: scope.gauge("applied_seq"),
            t_entries: scope.gauge("entries"),
            t_resident: scope.gauge("resident_bytes"),
            t_lag: scope.gauge("ingest_lag"),
            t_pending: scope.gauge("reorder_pending"),
        };
        svc.publish_gauges();
        svc
    }

    /// The materialized state.
    pub fn index(&self) -> &NamespaceIndex {
        &self.index
    }

    /// The attached policy engine.
    pub fn policies(&self) -> &PolicyEngine {
        &self.policies
    }

    /// Where snapshots go, if durable.
    pub fn snapshot_path(&self) -> Option<&Path> {
        self.snapshot_path.as_deref()
    }

    /// Fold a delivered batch into the index and count it against the
    /// policy predicates. Returns how many events actually advanced
    /// state: duplicates and stale redeliveries fold to zero, and
    /// events ahead of the cursor wait in the reorder stage until the
    /// sequence below them completes (live redelivery or
    /// [`catch_up`](IndexService::catch_up) both fill holes).
    pub fn ingest(&mut self, events: &[StandardEvent]) -> usize {
        let start = Instant::now();
        let mut applied = 0;
        for ev in events {
            let next = self.index.applied_seq() + 1;
            if ev.id < next {
                continue;
            }
            if ev.id == next {
                applied += self.apply_one(ev);
                applied += self.drain_pending();
            } else {
                self.pending.insert(ev.id, ev.clone());
            }
        }
        self.t_fold_ns.record(start.elapsed().as_nanos() as u64);
        self.t_applied.add(applied as u64);
        self.publish_gauges();
        applied
    }

    /// Events staged ahead of the fold cursor.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    fn apply_one(&mut self, ev: &StandardEvent) -> usize {
        if self.index.apply(ev) {
            self.policies.observe(ev);
            1
        } else {
            0
        }
    }

    /// Apply every staged event that is now contiguous with the
    /// cursor, dropping entries the cursor has already passed.
    fn drain_pending(&mut self) -> usize {
        let mut applied = 0;
        loop {
            let next = self.index.applied_seq() + 1;
            match self.pending.first_key_value() {
                Some((&id, _)) if id < next => {
                    self.pending.pop_first();
                }
                Some((&id, _)) if id == next => {
                    let (_, ev) = self.pending.pop_first().expect("checked non-empty");
                    applied += self.apply_one(&ev);
                }
                _ => break,
            }
        }
        applied
    }

    /// Pull everything past the applied-seq cursor from the store, in
    /// stream order, until the store is drained. This is the
    /// point-in-time catch-up path: after open (resume from snapshot)
    /// or after the live subscription lapses. Returns the number of
    /// events applied.
    ///
    /// If the store has purged past the cursor (its `get_since` clamps
    /// to the purge floor), the intervening events are unrecoverable:
    /// folding the surviving suffix onto the stale state would silently
    /// miss deletes and renames. The index is instead rebuilt from
    /// scratch at the floor — exactly the state a full replay of the
    /// surviving store produces — and `fsmon_index_rebuilds_total`
    /// counts the reset.
    pub fn catch_up(&mut self, store: &dyn EventStore) -> Result<usize, StoreError> {
        let mut applied = 0;
        loop {
            let cursor = self.index.applied_seq();
            let chunk = store.get_since(cursor, CATCH_UP_BATCH)?;
            if chunk.is_empty() {
                break;
            }
            // Sequences are dense, so a first id past `cursor + 1`
            // means the store purged the events in between. Without
            // this reset every event in the chunk stages in `pending`,
            // the cursor never advances, and the loop spins forever.
            if chunk[0].id > cursor + 1 {
                self.index = NamespaceIndex::starting_at(chunk[0].id - 1);
                self.pending.clear();
                self.t_rebuilds.inc();
            }
            applied += self.ingest(&chunk);
        }
        self.record_lag(store);
        Ok(applied)
    }

    /// Events the store has stamped that the index has not yet folded.
    pub fn lag(&self, store: &dyn EventStore) -> u64 {
        store
            .stats()
            .last_seq
            .saturating_sub(self.index.applied_seq())
    }

    /// Publish the current lag to the `fsmon_index_ingest_lag` gauge.
    pub fn record_lag(&self, store: &dyn EventStore) {
        self.t_lag.set(self.lag(store) as i64);
    }

    /// Atomically replace the snapshot (write-temp, flush, rename —
    /// the cursor-file idiom, so a crash leaves either the old or the
    /// new snapshot, never a torn one). No-op without a snapshot path.
    pub fn save(&self) -> std::io::Result<()> {
        let Some(path) = &self.snapshot_path else {
            return Ok(());
        };
        let tmp = path.with_extension("tmp");
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&self.index.encode_snapshot())?;
        f.sync_data()?;
        drop(f);
        std::fs::rename(&tmp, path)?;
        self.t_snapshots.inc();
        Ok(())
    }

    /// Timed [`NamespaceIndex::find`] returning owned rows; records
    /// `fsmon_index_query_ns`.
    pub fn find(&self, query: &FindQuery, now_ns: u64) -> Vec<(String, IndexEntry)> {
        let start = Instant::now();
        let rows = self
            .index
            .find(query, now_ns)
            .into_iter()
            .map(|(p, e)| (p.clone(), *e))
            .collect();
        self.t_query_ns.record(start.elapsed().as_nanos() as u64);
        rows
    }

    /// Timed [`NamespaceIndex::du`]; records `fsmon_index_query_ns`.
    pub fn du(&self, prefix: &str, depth: usize) -> Vec<DuRow> {
        let start = Instant::now();
        let rows = self.index.du(prefix, depth);
        self.t_query_ns.record(start.elapsed().as_nanos() as u64);
        rows
    }

    /// Timed policy evaluation; records `fsmon_index_query_ns`.
    pub fn evaluate(&self, now_ns: u64) -> Vec<PolicyReport> {
        let start = Instant::now();
        let reports = self.policies.evaluate(&self.index, now_ns);
        self.t_query_ns.record(start.elapsed().as_nanos() as u64);
        reports
    }

    fn publish_gauges(&self) {
        self.t_applied_seq.set(self.index.applied_seq() as i64);
        self.t_entries.set(self.index.len() as i64);
        self.t_resident.set(self.index.resident_bytes() as i64);
        self.t_pending.set(self.pending.len() as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmon_events::{EventKind, StandardEvent};
    use fsmon_store::MemStore;

    fn ev(kind: EventKind, path: &str) -> StandardEvent {
        StandardEvent::new(kind, "/r", path).with_size(100)
    }

    fn seed_store() -> MemStore {
        let store = MemStore::new();
        for i in 0..10 {
            store
                .append(&ev(EventKind::Create, &format!("/d/f{i}")))
                .unwrap();
        }
        store
    }

    #[test]
    fn catch_up_drains_store_and_clears_lag() {
        let store = seed_store();
        let mut svc = IndexService::new(PolicyEngine::empty());
        assert_eq!(svc.lag(&store), 10);
        let applied = svc.catch_up(&store).unwrap();
        assert_eq!(applied, 10);
        assert_eq!(svc.lag(&store), 0);
        assert_eq!(svc.index().len(), 10);
        // A second catch-up is a no-op: the cursor already points at
        // the store head.
        assert_eq!(svc.catch_up(&store).unwrap(), 0);
    }

    #[test]
    fn catch_up_rebuilds_when_cursor_is_below_purge_floor() {
        let store = seed_store();
        let mut svc = IndexService::new(PolicyEngine::empty());
        // Fold a prefix, as a resumed snapshot would have.
        let prefix = store.get_since(0, 3).unwrap();
        svc.ingest(&prefix);
        assert_eq!(svc.index().applied_seq(), 3);
        // The store purges past the cursor: events 4..=6 are gone.
        store.mark_reported(6).unwrap();
        store.purge_reported().unwrap();
        let applied = svc.catch_up(&store).unwrap();
        assert_eq!(applied, 4, "only the surviving suffix folds");
        assert_eq!(svc.index().applied_seq(), 10);
        assert_eq!(svc.pending_len(), 0);
        assert_eq!(
            svc.index().len(),
            4,
            "stale pre-floor state is discarded, not merged"
        );
        // The rebuilt state equals a full replay of the surviving
        // store — including from a fresh index, which must terminate
        // rather than livelock on the floor gap.
        let mut fresh = IndexService::new(PolicyEngine::empty());
        assert_eq!(fresh.catch_up(&store).unwrap(), 4);
        assert_eq!(svc.index(), fresh.index());
    }

    #[test]
    fn snapshot_resumes_from_cursor() {
        let dir = std::env::temp_dir().join(format!("fsmon-index-svc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("index.snap");
        let store = seed_store();

        let mut svc = IndexService::open(&snap, PolicyEngine::empty());
        svc.catch_up(&store).unwrap();
        svc.save().unwrap();
        let folded = svc.index().clone();

        // New events land after the snapshot.
        store.append(&ev(EventKind::Delete, "/d/f0")).unwrap();

        // Reopen: resumes at seq 10, folds only the one new event.
        let mut svc2 = IndexService::open(&snap, PolicyEngine::empty());
        assert_eq!(svc2.index(), &folded);
        assert_eq!(svc2.catch_up(&store).unwrap(), 1);
        assert_eq!(svc2.index().applied_seq(), 11);
        assert!(svc2.index().get("/d/f0").is_none());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_full_replay() {
        let dir = std::env::temp_dir().join(format!("fsmon-index-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("index.snap");
        std::fs::write(&snap, b"not a snapshot").unwrap();

        let store = seed_store();
        let mut svc = IndexService::open(&snap, PolicyEngine::empty());
        assert_eq!(svc.index().applied_seq(), 0, "corrupt snapshot ignored");
        assert_eq!(svc.catch_up(&store).unwrap(), 10);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn out_of_order_live_stream_folds_to_linear_state() {
        let evs: Vec<StandardEvent> = (1..=6)
            .map(|i| {
                let mut e = ev(EventKind::Create, &format!("/f{i}"));
                e.id = i;
                e
            })
            .collect();
        let mut svc = IndexService::new(PolicyEngine::empty());
        // A gap-heal delivered late: 3 and 4 arrive after 5 and 6.
        svc.ingest(&[
            evs[0].clone(),
            evs[1].clone(),
            evs[4].clone(),
            evs[5].clone(),
        ]);
        assert_eq!(svc.index().applied_seq(), 2);
        assert_eq!(svc.pending_len(), 2);
        svc.ingest(&[evs[2].clone(), evs[3].clone()]);
        assert_eq!(svc.index().applied_seq(), 6);
        assert_eq!(svc.pending_len(), 0);
        let mut linear = crate::state::NamespaceIndex::new();
        for e in &evs {
            linear.apply(e);
        }
        assert_eq!(svc.index(), &linear);
    }

    #[test]
    fn ingest_skips_duplicates_and_counts_policies() {
        let mut svc = IndexService::new(PolicyEngine::standard("/**", u64::MAX, 1.0));
        let mut e = ev(EventKind::Create, "/a");
        e.id = 1;
        assert_eq!(svc.ingest(&[e.clone(), e.clone()]), 1);
        assert_eq!(svc.ingest(&[e]), 0, "redelivery folds to zero");
        assert!(svc.policies().total_matched() >= 1);
    }
}
