//! The materialized namespace state and its fold rules.
//!
//! [`NamespaceIndex`] is a deterministic left fold over the stamped
//! event stream: `state' = apply(state, event)`, with duplicate
//! suppression on the dense sequence (`id <= applied_seq` is a re-seen
//! event and changes nothing). Determinism is the load-bearing
//! property — it is what makes an incrementally maintained index
//! provably equal to a full replay fold of the same store segment, the
//! invariant the chaos harness checks across crashes.

use fsmon_events::{EventKind, StandardEvent};
use std::collections::BTreeMap;
use std::ops::Bound;

/// Width of the recent-activity buckets backing per-directory rates.
pub const ACTIVITY_BUCKET_NS: u64 = 1_000_000_000;

/// What an indexed entry is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// Regular file.
    File,
    /// Directory.
    Directory,
    /// Symbolic link.
    Symlink,
    /// Device node.
    Device,
}

impl EntryKind {
    /// Stable tag for the snapshot codec.
    pub(crate) fn tag(self) -> u8 {
        match self {
            EntryKind::File => 0,
            EntryKind::Directory => 1,
            EntryKind::Symlink => 2,
            EntryKind::Device => 3,
        }
    }

    pub(crate) fn from_tag(tag: u8) -> Option<EntryKind> {
        Some(match tag {
            0 => EntryKind::File,
            1 => EntryKind::Directory,
            2 => EntryKind::Symlink,
            3 => EntryKind::Device,
            _ => return None,
        })
    }

    /// Short label for query output (`file`, `dir`, …).
    pub fn label(self) -> &'static str {
        match self {
            EntryKind::File => "file",
            EntryKind::Directory => "dir",
            EntryKind::Symlink => "symlink",
            EntryKind::Device => "device",
        }
    }
}

/// Materialized metadata for one namespace entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexEntry {
    /// Entry type.
    pub kind: EntryKind,
    /// Last known size in bytes (0 when never observed).
    pub size: u64,
    /// Last known owner uid (0 when never observed).
    pub owner: u32,
    /// Timestamp of the last event touching this entry.
    pub mtime_ns: u64,
    /// MDT that recorded the last event (`None` for local sources).
    pub mdt: Option<u16>,
}

/// Per-directory rollup aggregates over *direct* children.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DirRollup {
    /// Direct child entries currently present.
    pub entries: u64,
    /// Sum of direct children's last known sizes.
    pub total_bytes: u64,
    /// Timestamp of the last event under this directory.
    pub last_activity_ns: u64,
    /// Events ever folded under this directory.
    pub events: u64,
    /// Recent-activity window: bucket index of `cur`.
    bucket: u64,
    /// Events in the current activity bucket.
    cur: u64,
    /// Events in the previous activity bucket.
    prev: u64,
}

impl DirRollup {
    fn bump(&mut self, ts: u64) {
        self.events += 1;
        self.last_activity_ns = self.last_activity_ns.max(ts);
        let b = ts / ACTIVITY_BUCKET_NS;
        if b == self.bucket {
            self.cur += 1;
        } else if b == self.bucket + 1 {
            self.prev = self.cur;
            self.cur = 1;
            self.bucket = b;
        } else if b > self.bucket {
            self.prev = 0;
            self.cur = 1;
            self.bucket = b;
        } else {
            // Out-of-order timestamp (cross-MDT skew): count it into
            // the current bucket so the fold stays deterministic.
            self.cur += 1;
        }
    }

    /// Approximate events/second over the last two activity buckets as
    /// of `now_ns`. Directories idle past the window rate at zero.
    pub fn recent_rate(&self, now_ns: u64) -> f64 {
        let now_bucket = now_ns / ACTIVITY_BUCKET_NS;
        let secs = ACTIVITY_BUCKET_NS as f64 / 1e9;
        if now_bucket == self.bucket {
            (self.cur + self.prev) as f64 / (2.0 * secs)
        } else if now_bucket == self.bucket + 1 {
            self.cur as f64 / (2.0 * secs)
        } else {
            0.0
        }
    }

    pub(crate) fn to_parts(self) -> [u64; 7] {
        [
            self.entries,
            self.total_bytes,
            self.last_activity_ns,
            self.events,
            self.bucket,
            self.cur,
            self.prev,
        ]
    }

    pub(crate) fn from_parts(p: [u64; 7]) -> DirRollup {
        DirRollup {
            entries: p[0],
            total_bytes: p[1],
            last_activity_ns: p[2],
            events: p[3],
            bucket: p[4],
            cur: p[5],
            prev: p[6],
        }
    }
}

/// Predicate for [`NamespaceIndex::find`]: all set conditions must
/// hold. The default matches every entry.
#[derive(Debug, Clone, Default)]
pub struct FindQuery {
    pattern: Option<fsmon_rules::PathPattern>,
    older_than_ns: Option<u64>,
    min_size: Option<u64>,
    owner: Option<u32>,
    kind: Option<EntryKind>,
}

impl FindQuery {
    /// Restrict to paths matching a `rules`-crate glob pattern.
    #[must_use]
    pub fn pattern(mut self, pattern: &str) -> Self {
        self.pattern = Some(fsmon_rules::PathPattern::new(pattern));
        self
    }

    /// Restrict to entries whose mtime is at least this old relative
    /// to the query's `now_ns`.
    #[must_use]
    pub fn older_than_ns(mut self, age_ns: u64) -> Self {
        self.older_than_ns = Some(age_ns);
        self
    }

    /// Restrict to entries at least this large.
    #[must_use]
    pub fn min_size(mut self, bytes: u64) -> Self {
        self.min_size = Some(bytes);
        self
    }

    /// Restrict to entries owned by this uid.
    #[must_use]
    pub fn owner(mut self, uid: u32) -> Self {
        self.owner = Some(uid);
        self
    }

    /// Restrict to one entry kind.
    #[must_use]
    pub fn kind(mut self, kind: EntryKind) -> Self {
        self.kind = Some(kind);
        self
    }

    /// Whether `(path, entry)` satisfies every set condition.
    pub fn matches(&self, path: &str, entry: &IndexEntry, now_ns: u64) -> bool {
        if let Some(p) = &self.pattern {
            if !p.matches(path) {
                return false;
            }
        }
        if let Some(age) = self.older_than_ns {
            if entry.mtime_ns.saturating_add(age) > now_ns {
                return false;
            }
        }
        if let Some(min) = self.min_size {
            if entry.size < min {
                return false;
            }
        }
        if let Some(uid) = self.owner {
            if entry.owner != uid {
                return false;
            }
        }
        if let Some(kind) = self.kind {
            if entry.kind != kind {
                return false;
            }
        }
        true
    }
}

/// One row of a [`NamespaceIndex::du`] aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct DuRow {
    /// Directory path (aggregation group).
    pub path: String,
    /// Entries in the subtree.
    pub entries: u64,
    /// Bytes in the subtree.
    pub bytes: u64,
    /// Most recent activity anywhere in the subtree.
    pub last_activity_ns: u64,
}

/// The materialized namespace: queryable state folded from events.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct NamespaceIndex {
    applied_seq: u64,
    entries: BTreeMap<String, IndexEntry>,
    rollups: BTreeMap<String, DirRollup>,
}

fn parent_of(path: &str) -> &str {
    match path.rfind('/') {
        Some(0) | None => "/",
        Some(i) => &path[..i],
    }
}

fn entry_kind_of(ev: &StandardEvent) -> EntryKind {
    if ev.is_dir {
        EntryKind::Directory
    } else {
        match ev.kind {
            EventKind::SymLink => EntryKind::Symlink,
            EventKind::DeviceNode => EntryKind::Device,
            _ => EntryKind::File,
        }
    }
}

impl NamespaceIndex {
    /// An empty index (applied sequence 0).
    pub fn new() -> NamespaceIndex {
        NamespaceIndex::default()
    }

    /// An empty index whose replay cursor starts at `applied_seq` —
    /// the rebuild entry point when the events below the cursor are
    /// gone (the store purged past it), so state can only be folded
    /// from the surviving suffix.
    pub fn starting_at(applied_seq: u64) -> NamespaceIndex {
        NamespaceIndex {
            applied_seq,
            ..NamespaceIndex::default()
        }
    }

    /// Highest event id folded in; the replay cursor (`get_since`
    /// argument) for catch-up.
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of directories carrying rollup state.
    pub fn rollup_count(&self) -> usize {
        self.rollups.len()
    }

    /// Look up one entry.
    pub fn get(&self, path: &str) -> Option<&IndexEntry> {
        self.entries.get(path)
    }

    /// Look up one directory rollup.
    pub fn rollup(&self, dir: &str) -> Option<&DirRollup> {
        self.rollups.get(dir)
    }

    /// Iterate all entries in path order.
    pub fn entries(&self) -> impl Iterator<Item = (&String, &IndexEntry)> {
        self.entries.iter()
    }

    /// Iterate all rollups in path order.
    pub fn rollups(&self) -> impl Iterator<Item = (&String, &DirRollup)> {
        self.rollups.iter()
    }

    /// Approximate bytes of process memory the index holds.
    pub fn resident_bytes(&self) -> u64 {
        // Key bytes plus value struct plus BTreeMap node overhead
        // (amortized estimate, same spirit as StoreStats).
        let entry_overhead = std::mem::size_of::<IndexEntry>() + 48;
        let rollup_overhead = std::mem::size_of::<DirRollup>() + 48;
        let e: usize = self.entries.keys().map(|k| k.len() + entry_overhead).sum();
        let r: usize = self.rollups.keys().map(|k| k.len() + rollup_overhead).sum();
        (e + r) as u64
    }

    /// Fold one stamped event into the state. Returns `false` for
    /// duplicates (`id <= applied_seq`), which change nothing — the
    /// dedup that makes redelivered batches idempotent.
    pub fn apply(&mut self, ev: &StandardEvent) -> bool {
        if ev.id <= self.applied_seq {
            return false;
        }
        self.applied_seq = ev.id;
        match ev.kind {
            EventKind::Create
            | EventKind::HardLink
            | EventKind::SymLink
            | EventKind::DeviceNode => self.upsert(ev, true),
            EventKind::Modify
            | EventKind::CloseWrite
            | EventKind::Close
            | EventKind::Truncate
            | EventKind::Attrib
            | EventKind::Xattr
            | EventKind::Ioctl => self.upsert(ev, false),
            EventKind::MovedTo => self.rename(ev),
            // MovedFrom's information is carried by its MovedTo twin
            // (old_path); folding it too would double-remove.
            EventKind::MovedFrom => {}
            EventKind::Delete | EventKind::ParentDirectoryRemoved => {
                self.remove(&ev.path, ev.timestamp_ns)
            }
            // Control/no-op kinds carry no namespace change.
            EventKind::Open
            | EventKind::CloseNoWrite
            | EventKind::Overflow
            | EventKind::Unknown => {}
        }
        true
    }

    /// Insert or update `ev.path`. `creating` marks kinds that define
    /// the entry's type; content/metadata kinds backfill unknown paths
    /// as files (the store segment may start mid-history).
    fn upsert(&mut self, ev: &StandardEvent, creating: bool) {
        let ts = ev.timestamp_ns;
        let parent = parent_of(&ev.path).to_string();
        let old_size = self.entries.get(&ev.path).map(|e| e.size);
        let entry = self
            .entries
            .entry(ev.path.clone())
            .or_insert_with(|| IndexEntry {
                kind: entry_kind_of(ev),
                size: 0,
                owner: 0,
                mtime_ns: ts,
                mdt: ev.mdt_index,
            });
        if creating {
            entry.kind = entry_kind_of(ev);
        }
        if let Some(size) = ev.size {
            entry.size = size;
        }
        if let Some(owner) = ev.owner {
            entry.owner = owner;
        }
        entry.mtime_ns = ts;
        entry.mdt = ev.mdt_index;
        let new_size = entry.size;
        let rollup = self.rollups.entry(parent).or_default();
        if old_size.is_none() {
            rollup.entries += 1;
            rollup.total_bytes += new_size;
        } else {
            rollup.total_bytes = rollup
                .total_bytes
                .saturating_sub(old_size.unwrap_or(0))
                .saturating_add(new_size);
        }
        rollup.bump(ts);
    }

    /// Remove `path` (and its subtree when it is a directory).
    fn remove(&mut self, path: &str, ts: u64) {
        let removed = self.entries.remove(path);
        if let Some(entry) = &removed {
            let parent = parent_of(path).to_string();
            let rollup = self.rollups.entry(parent).or_default();
            rollup.entries = rollup.entries.saturating_sub(1);
            rollup.total_bytes = rollup.total_bytes.saturating_sub(entry.size);
            rollup.bump(ts);
            if entry.kind == EntryKind::Directory {
                self.remove_subtree(path);
            }
        } else {
            // Unknown path (mid-history segment): still record the
            // activity so the parent's rollup reflects the event.
            let parent = parent_of(path).to_string();
            self.rollups.entry(parent).or_default().bump(ts);
        }
    }

    /// Drop every entry and rollup strictly beneath `dir`, plus `dir`'s
    /// own rollup. Subtree members' parents are inside the subtree, so
    /// no surviving rollup needs adjustment.
    fn remove_subtree(&mut self, dir: &str) {
        let prefix = format!("{dir}/");
        let doomed: Vec<String> = self
            .entries
            .range::<String, _>((Bound::Included(prefix.clone()), Bound::Unbounded))
            .take_while(|(k, _)| k.starts_with(&prefix))
            .map(|(k, _)| k.clone())
            .collect();
        for k in doomed {
            self.entries.remove(&k);
        }
        let doomed: Vec<String> = self
            .rollups
            .range::<String, _>((Bound::Included(dir.to_string()), Bound::Unbounded))
            .take_while(|(k, _)| *k == dir || k.starts_with(&prefix))
            .map(|(k, _)| k.clone())
            .collect();
        for k in doomed {
            self.rollups.remove(&k);
        }
    }

    /// Apply a `MovedTo`: re-key `old_path` to `path`, carrying the
    /// entry (and, for directories, the whole subtree) across.
    fn rename(&mut self, ev: &StandardEvent) {
        let ts = ev.timestamp_ns;
        let Some(old_path) = ev.old_path.clone() else {
            // No source information: treat as an upsert at the new
            // path, the best deterministic reading of the event.
            self.upsert(ev, true);
            return;
        };
        if old_path == ev.path {
            self.upsert(ev, false);
            return;
        }
        // Rename-over: the displaced target leaves the namespace first.
        if self.entries.contains_key(&ev.path) {
            self.remove(&ev.path, ts);
        }
        let Some(mut entry) = self.entries.remove(&old_path) else {
            // Unknown source (mid-history): backfill at the destination.
            self.upsert(ev, true);
            return;
        };
        // Source side: the old parent loses the entry.
        {
            let rollup = self
                .rollups
                .entry(parent_of(&old_path).to_string())
                .or_default();
            rollup.entries = rollup.entries.saturating_sub(1);
            rollup.total_bytes = rollup.total_bytes.saturating_sub(entry.size);
            rollup.bump(ts);
        }
        if let Some(size) = ev.size {
            entry.size = size;
        }
        if let Some(owner) = ev.owner {
            entry.owner = owner;
        }
        entry.mtime_ns = ts;
        entry.mdt = ev.mdt_index;
        let moved_size = entry.size;
        let is_dir = entry.kind == EntryKind::Directory;
        self.entries.insert(ev.path.clone(), entry);
        {
            let rollup = self
                .rollups
                .entry(parent_of(&ev.path).to_string())
                .or_default();
            rollup.entries += 1;
            rollup.total_bytes += moved_size;
            rollup.bump(ts);
        }
        if is_dir {
            self.rekey_subtree(&old_path, &ev.path);
        }
    }

    /// Move every entry and rollup under `old` to the same relative
    /// position under `new`. Aggregates travel unchanged.
    fn rekey_subtree(&mut self, old: &str, new: &str) {
        let old_prefix = format!("{old}/");
        let moved: Vec<(String, IndexEntry)> = self
            .entries
            .range::<String, _>((Bound::Included(old_prefix.clone()), Bound::Unbounded))
            .take_while(|(k, _)| k.starts_with(&old_prefix))
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        for (k, v) in moved {
            self.entries.remove(&k);
            self.entries.insert(format!("{new}{}", &k[old.len()..]), v);
        }
        let moved: Vec<(String, DirRollup)> = self
            .rollups
            .range::<String, _>((Bound::Included(old.to_string()), Bound::Unbounded))
            .take_while(|(k, _)| *k == old || k.starts_with(&old_prefix))
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        for (k, v) in moved {
            self.rollups.remove(&k);
            let suffix = &k[old.len()..];
            self.rollups.insert(format!("{new}{suffix}"), v);
        }
    }

    // ----- queries -----

    /// Predicate query over the materialized entries (no store access).
    pub fn find(&self, query: &FindQuery, now_ns: u64) -> Vec<(&String, &IndexEntry)> {
        self.entries
            .iter()
            .filter(|(path, entry)| query.matches(path, entry, now_ns))
            .collect()
    }

    /// Subtree aggregation: group every rollup under `prefix` by its
    /// first `depth` components below the prefix and sum. `depth` 0
    /// collapses everything under `prefix` into one row.
    pub fn du(&self, prefix: &str, depth: usize) -> Vec<DuRow> {
        let prefix = if prefix == "/" { "" } else { prefix };
        let mut groups: BTreeMap<String, DuRow> = BTreeMap::new();
        for (dir, rollup) in &self.rollups {
            let rel = match dir.strip_prefix(prefix) {
                Some(r) if r.is_empty() || r.starts_with('/') || prefix.is_empty() => r,
                _ => continue,
            };
            let group = if depth == 0 {
                String::new()
            } else {
                rel.split('/').filter(|c| !c.is_empty()).take(depth).fold(
                    String::new(),
                    |mut acc, c| {
                        acc.push('/');
                        acc.push_str(c);
                        acc
                    },
                )
            };
            let key = format!("{}{}", if prefix.is_empty() { "" } else { prefix }, group);
            let key = if key.is_empty() { "/".to_string() } else { key };
            let row = groups.entry(key.clone()).or_insert_with(|| DuRow {
                path: key,
                entries: 0,
                bytes: 0,
                last_activity_ns: 0,
            });
            row.entries += rollup.entries;
            row.bytes += rollup.total_bytes;
            row.last_activity_ns = row.last_activity_ns.max(rollup.last_activity_ns);
        }
        groups.into_values().collect()
    }

    // ----- snapshot codec -----

    /// Serialize the full state (entries + rollups + applied seq) into
    /// a CRC-guarded binary snapshot.
    pub fn encode_snapshot(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + self.entries.len() * 64);
        buf.extend_from_slice(SNAP_MAGIC);
        buf.push(SNAP_VERSION);
        put_u64(&mut buf, self.applied_seq);
        put_u64(&mut buf, self.entries.len() as u64);
        for (path, e) in &self.entries {
            put_str(&mut buf, path);
            buf.push(e.kind.tag());
            put_u64(&mut buf, e.size);
            put_u32(&mut buf, e.owner);
            put_u64(&mut buf, e.mtime_ns);
            put_u16(&mut buf, e.mdt.unwrap_or(u16::MAX));
        }
        put_u64(&mut buf, self.rollups.len() as u64);
        for (dir, r) in &self.rollups {
            put_str(&mut buf, dir);
            for part in r.to_parts() {
                put_u64(&mut buf, part);
            }
        }
        let crc = fsmon_store::crc::crc32(&buf);
        put_u32(&mut buf, crc);
        buf
    }

    /// Decode a snapshot produced by
    /// [`encode_snapshot`](NamespaceIndex::encode_snapshot). Returns
    /// `None` on any framing or CRC mismatch (the caller falls back to
    /// an empty index and a full replay).
    pub fn decode_snapshot(raw: &[u8]) -> Option<NamespaceIndex> {
        if raw.len() < SNAP_MAGIC.len() + 1 + 8 + 8 + 8 + 4 {
            return None;
        }
        let (body, crc_bytes) = raw.split_at(raw.len() - 4);
        let crc = u32::from_be_bytes(crc_bytes.try_into().ok()?);
        if fsmon_store::crc::crc32(body) != crc {
            return None;
        }
        let mut cur = Cursor { raw: body, pos: 0 };
        if cur.take(SNAP_MAGIC.len())? != SNAP_MAGIC {
            return None;
        }
        if cur.u8()? != SNAP_VERSION {
            return None;
        }
        let applied_seq = cur.u64()?;
        let n_entries = cur.u64()?;
        let mut entries = BTreeMap::new();
        for _ in 0..n_entries {
            let path = cur.str()?;
            let kind = EntryKind::from_tag(cur.u8()?)?;
            let size = cur.u64()?;
            let owner = cur.u32()?;
            let mtime_ns = cur.u64()?;
            let mdt = match cur.u16()? {
                u16::MAX => None,
                m => Some(m),
            };
            entries.insert(
                path,
                IndexEntry {
                    kind,
                    size,
                    owner,
                    mtime_ns,
                    mdt,
                },
            );
        }
        let n_rollups = cur.u64()?;
        let mut rollups = BTreeMap::new();
        for _ in 0..n_rollups {
            let dir = cur.str()?;
            let mut parts = [0u64; 7];
            for p in &mut parts {
                *p = cur.u64()?;
            }
            rollups.insert(dir, DirRollup::from_parts(parts));
        }
        if cur.pos != body.len() {
            return None;
        }
        Some(NamespaceIndex {
            applied_seq,
            entries,
            rollups,
        })
    }
}

const SNAP_MAGIC: &[u8] = b"FSMIDX";
const SNAP_VERSION: u8 = 1;

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    raw: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.raw.len() - self.pos < n {
            return None;
        }
        let out = &self.raw[self.pos..self.pos + n];
        self.pos += n;
        Some(out)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2)
            .map(|b| u16::from_be_bytes(b.try_into().unwrap()))
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_be_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_be_bytes(b.try_into().unwrap()))
    }

    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmon_events::EventKind;

    fn ev(id: u64, kind: EventKind, path: &str) -> StandardEvent {
        let mut e = StandardEvent::new(kind, "/r", path).with_timestamp(id * 1_000_000);
        e.id = id;
        e
    }

    #[test]
    fn create_modify_delete_lifecycle() {
        let mut idx = NamespaceIndex::new();
        assert!(idx.apply(&ev(1, EventKind::Create, "/a/f").with_size(10).with_owner(7)));
        assert!(idx.apply(&ev(2, EventKind::Modify, "/a/f").with_size(100)));
        let e = idx.get("/a/f").unwrap();
        assert_eq!(e.size, 100);
        assert_eq!(e.owner, 7);
        let r = idx.rollup("/a").unwrap();
        assert_eq!(r.entries, 1);
        assert_eq!(r.total_bytes, 100);
        assert_eq!(r.events, 2);
        idx.apply(&ev(3, EventKind::Delete, "/a/f"));
        assert!(idx.get("/a/f").is_none());
        let r = idx.rollup("/a").unwrap();
        assert_eq!(r.entries, 0);
        assert_eq!(r.total_bytes, 0);
        assert_eq!(idx.applied_seq(), 3);
    }

    #[test]
    fn duplicates_are_idempotent() {
        let mut idx = NamespaceIndex::new();
        let create = ev(1, EventKind::Create, "/f").with_size(5);
        assert!(idx.apply(&create));
        let before = idx.clone();
        assert!(!idx.apply(&create), "redelivery is a no-op");
        assert_eq!(idx, before);
    }

    #[test]
    fn rename_rekeys_file_and_updates_rollups() {
        let mut idx = NamespaceIndex::new();
        idx.apply(&ev(1, EventKind::Create, "/a/f").with_size(40));
        idx.apply(&ev(2, EventKind::MovedTo, "/b/g").with_old_path("/a/f"));
        assert!(idx.get("/a/f").is_none());
        assert_eq!(idx.get("/b/g").unwrap().size, 40);
        assert_eq!(idx.rollup("/a").unwrap().entries, 0);
        assert_eq!(idx.rollup("/b").unwrap().total_bytes, 40);
    }

    #[test]
    fn directory_rename_carries_subtree() {
        let mut idx = NamespaceIndex::new();
        let mut mk = ev(1, EventKind::Create, "/old");
        mk.is_dir = true;
        idx.apply(&mk);
        idx.apply(&ev(2, EventKind::Create, "/old/x").with_size(1));
        idx.apply(&ev(3, EventKind::Create, "/old/sub/y").with_size(2));
        let mut mv = ev(4, EventKind::MovedTo, "/new").with_old_path("/old");
        mv.is_dir = true;
        idx.apply(&mv);
        assert!(idx.get("/old/x").is_none());
        assert_eq!(idx.get("/new/x").unwrap().size, 1);
        assert_eq!(idx.get("/new/sub/y").unwrap().size, 2);
        assert_eq!(idx.rollup("/new").unwrap().entries, 1);
        assert_eq!(idx.rollup("/new/sub").unwrap().total_bytes, 2);
    }

    #[test]
    fn directory_delete_removes_subtree() {
        let mut idx = NamespaceIndex::new();
        let mut mk = ev(1, EventKind::Create, "/d");
        mk.is_dir = true;
        idx.apply(&mk);
        idx.apply(&ev(2, EventKind::Create, "/d/f").with_size(9));
        idx.apply(&ev(3, EventKind::Create, "/d/s/g").with_size(9));
        let mut rm = ev(4, EventKind::Delete, "/d");
        rm.is_dir = true;
        idx.apply(&rm);
        assert!(idx.get("/d/f").is_none());
        assert!(idx.get("/d/s/g").is_none());
        assert!(idx.rollup("/d").is_none());
        assert!(idx.rollup("/d/s").is_none());
        assert_eq!(idx.rollup("/").unwrap().entries, 0);
    }

    #[test]
    fn find_filters_compose() {
        let mut idx = NamespaceIndex::new();
        idx.apply(
            &ev(1, EventKind::Create, "/p/a.h5")
                .with_size(100)
                .with_owner(1),
        );
        idx.apply(
            &ev(2, EventKind::Create, "/p/b.txt")
                .with_size(5)
                .with_owner(1),
        );
        idx.apply(
            &ev(3, EventKind::Create, "/q/c.h5")
                .with_size(100)
                .with_owner(2),
        );
        let now = 10_000_000_000;
        let q = FindQuery::default()
            .pattern("/**/*.h5")
            .min_size(50)
            .owner(1);
        let hits = idx.find(&q, now);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, "/p/a.h5");
        let q = FindQuery::default().older_than_ns(now);
        assert!(idx.find(&q, now).is_empty(), "nothing is that old");
    }

    #[test]
    fn du_groups_by_depth() {
        let mut idx = NamespaceIndex::new();
        idx.apply(&ev(1, EventKind::Create, "/a/x/f1").with_size(10));
        idx.apply(&ev(2, EventKind::Create, "/a/y/f2").with_size(20));
        idx.apply(&ev(3, EventKind::Create, "/b/f3").with_size(30));
        let rows = idx.du("/", 1);
        let a = rows.iter().find(|r| r.path == "/a").unwrap();
        assert_eq!(a.bytes, 30);
        assert_eq!(a.entries, 2);
        let b = rows.iter().find(|r| r.path == "/b").unwrap();
        assert_eq!(b.bytes, 30);
        let total = idx.du("/", 0);
        assert_eq!(total.len(), 1);
        assert_eq!(total[0].bytes, 60);
        let under_a = idx.du("/a", 1);
        assert_eq!(under_a.len(), 2);
    }

    #[test]
    fn snapshot_roundtrip_and_crc_guard() {
        let mut idx = NamespaceIndex::new();
        for i in 1..=50 {
            idx.apply(&ev(i, EventKind::Create, &format!("/d{}/f{i}", i % 5)).with_size(i));
        }
        idx.apply(&ev(51, EventKind::Delete, "/d1/f1"));
        let raw = idx.encode_snapshot();
        let back = NamespaceIndex::decode_snapshot(&raw).unwrap();
        assert_eq!(back, idx);
        assert_eq!(back.applied_seq(), 51);
        // Any bit flip is rejected.
        let mut bad = raw.clone();
        bad[raw.len() / 2] ^= 0xFF;
        assert!(NamespaceIndex::decode_snapshot(&bad).is_none());
        assert!(NamespaceIndex::decode_snapshot(&raw[..raw.len() - 1]).is_none());
    }

    #[test]
    fn recent_rate_decays_when_idle() {
        let mut idx = NamespaceIndex::new();
        for i in 1..=10 {
            let mut e = ev(i, EventKind::Modify, "/hot/f");
            e.timestamp_ns = i * 90_000_000; // all within bucket 0
            idx.apply(&e);
        }
        let r = idx.rollup("/hot").unwrap();
        assert!(r.recent_rate(900_000_000) > 0.0);
        assert_eq!(
            r.recent_rate(10 * ACTIVITY_BUCKET_NS),
            0.0,
            "idle dirs cool off"
        );
    }
}
