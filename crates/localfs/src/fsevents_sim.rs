//! Simulated macOS FSEvents.
//!
//! FSEvents watches a *subtree* recursively with a single stream — "the
//! FSEvents monitor is not limited by requiring unique watchers and thus
//! scales well with the number of directories observed" (§II-A). The
//! daemon coalesces per-path flags within a latency window; when its
//! buffer saturates it degrades to `MustScanSubDirs` (the client must
//! rescan — events were merged beyond recovery).

use crate::simfs::{RawListener, RawOp, RawOpKind, SimFs};
use fsmon_events::fsevents::{FsEventFlags, FsEventsEvent};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// A simulated FSEvents stream.
pub struct FsEventsSim {
    inner: Mutex<Inner>,
    /// Ops covered by one coalescing window (a latency proxy: flags for
    /// the same path within the window merge into one event).
    window: usize,
    /// Pending-event cap before the stream degrades to MustScanSubDirs.
    buffer_cap: usize,
}

struct Inner {
    roots: Vec<String>,
    queue: VecDeque<FsEventsEvent>,
    next_event_id: u64,
    window_left: usize,
    degraded: bool,
}

impl FsEventsSim {
    /// Create a stream attached to `fs`. `window` is the coalescing
    /// window in operations; `buffer_cap` the pending-event cap.
    pub fn attach(fs: &Arc<SimFs>, window: usize, buffer_cap: usize) -> Arc<FsEventsSim> {
        let sim = Arc::new(FsEventsSim {
            inner: Mutex::new(Inner {
                roots: Vec::new(),
                queue: VecDeque::new(),
                next_event_id: 1,
                window_left: window,
                degraded: false,
            }),
            window,
            buffer_cap,
        });
        fs.attach(sim.clone() as Arc<dyn RawListener>);
        sim
    }

    /// Start watching a subtree (`FSEventStreamCreate` with one path).
    pub fn watch_subtree(&self, root: &str) {
        self.inner.lock().roots.push(root.to_string());
    }

    /// Drain pending events (the stream callback).
    pub fn drain(&self) -> Vec<FsEventsEvent> {
        let mut inner = self.inner.lock();
        inner.degraded = false;
        inner.window_left = self.window;
        inner.queue.drain(..).collect()
    }

    /// Pending event count.
    pub fn queued(&self) -> usize {
        self.inner.lock().queue.len()
    }

    fn covered(inner: &Inner, path: &str) -> bool {
        inner
            .roots
            .iter()
            .any(|r| r == "/" || path == r.as_str() || path.starts_with(&format!("{r}/")))
    }

    fn push(&self, inner: &mut Inner, path: &str, flags: u32) {
        if inner.degraded {
            return; // everything until the next drain is folded into the scan marker
        }
        if inner.queue.len() >= self.buffer_cap {
            inner.degraded = true;
            let id = inner.next_event_id;
            inner.next_event_id += 1;
            inner.queue.push_back(FsEventsEvent {
                event_id: id,
                flags: FsEventFlags(FsEventFlags::MUST_SCAN_SUBDIRS),
                path: inner.roots.first().cloned().unwrap_or_else(|| "/".into()),
            });
            return;
        }
        // Coalesce: same path within the window merges flag words.
        if inner.window_left > 0 {
            inner.window_left -= 1;
            if let Some(last) = inner.queue.iter_mut().rev().find(|e| e.path == path) {
                last.flags = FsEventFlags(last.flags.0 | flags);
                return;
            }
        } else {
            inner.window_left = self.window;
        }
        let id = inner.next_event_id;
        inner.next_event_id += 1;
        inner.queue.push_back(FsEventsEvent {
            event_id: id,
            flags: FsEventFlags(flags),
            path: path.to_string(),
        });
    }
}

impl RawListener for FsEventsSim {
    fn on_op(&self, op: &RawOp) {
        let mut inner = self.inner.lock();
        if !Self::covered(&inner, &op.path) {
            return;
        }
        let item = if op.is_dir {
            FsEventFlags::ITEM_IS_DIR
        } else {
            FsEventFlags::ITEM_IS_FILE
        };
        match op.kind {
            RawOpKind::Create => {
                self.push(
                    &mut inner,
                    &op.path.clone(),
                    FsEventFlags::ITEM_CREATED | item,
                );
            }
            RawOpKind::Modify => {
                self.push(
                    &mut inner,
                    &op.path.clone(),
                    FsEventFlags::ITEM_MODIFIED | item,
                );
            }
            RawOpKind::Attrib => {
                self.push(
                    &mut inner,
                    &op.path.clone(),
                    FsEventFlags::ITEM_INODE_META_MOD | item,
                );
            }
            RawOpKind::Delete => {
                self.push(
                    &mut inner,
                    &op.path.clone(),
                    FsEventFlags::ITEM_REMOVED | item,
                );
            }
            RawOpKind::Rename => {
                self.push(
                    &mut inner,
                    &op.path.clone(),
                    FsEventFlags::ITEM_RENAMED | item,
                );
                if let Some(dest) = op.dest.clone() {
                    if Self::covered(&inner, &dest) {
                        self.push(&mut inner, &dest, FsEventFlags::ITEM_RENAMED | item);
                    }
                }
            }
            // FSEvents does not report opens/closes at all.
            RawOpKind::Open | RawOpKind::Close { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmon_events::EventKind;

    fn setup(window: usize, cap: usize) -> (Arc<SimFs>, Arc<FsEventsSim>) {
        let fs = SimFs::new();
        let fse = FsEventsSim::attach(&fs, window, cap);
        (fs, fse)
    }

    #[test]
    fn subtree_watch_is_recursive_without_extra_watchers() {
        let (fs, fse) = setup(0, 1000);
        fse.watch_subtree("/");
        fs.mkdir("/a");
        fs.mkdir("/a/b");
        fs.create("/a/b/deep.txt");
        let evs = fse.drain();
        assert!(evs.iter().any(|e| e.path == "/a/b/deep.txt"));
    }

    #[test]
    fn paths_outside_root_invisible() {
        let (fs, fse) = setup(0, 1000);
        fs.mkdir("/watched");
        fs.mkdir("/other");
        fse.watch_subtree("/watched");
        fs.create("/watched/in.txt");
        fs.create("/other/out.txt");
        let evs = fse.drain();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].path, "/watched/in.txt");
    }

    #[test]
    fn coalescing_merges_same_path_flags() {
        let (fs, fse) = setup(16, 1000);
        fse.watch_subtree("/");
        fs.create("/f");
        fs.modify("/f");
        let evs = fse.drain();
        assert_eq!(evs.len(), 1, "created+modified coalesce within window");
        assert!(evs[0].flags.has(FsEventFlags::ITEM_CREATED));
        assert!(evs[0].flags.has(FsEventFlags::ITEM_MODIFIED));
        assert_eq!(evs[0].kind(), EventKind::Create, "create wins precedence");
    }

    #[test]
    fn no_coalescing_with_zero_window() {
        let (fs, fse) = setup(0, 1000);
        fse.watch_subtree("/");
        fs.create("/f");
        fs.modify("/f");
        assert_eq!(fse.drain().len(), 2);
    }

    #[test]
    fn overflow_degrades_to_must_scan_subdirs() {
        let (fs, fse) = setup(0, 3);
        fse.watch_subtree("/");
        for i in 0..10 {
            fs.create(&format!("/f{i}"));
        }
        let evs = fse.drain();
        assert_eq!(evs.len(), 4, "3 events + scan marker");
        assert!(evs[3].flags.has(FsEventFlags::MUST_SCAN_SUBDIRS));
        assert_eq!(evs[3].kind(), EventKind::Overflow);
        // After drain the stream recovers.
        fs.create("/after");
        assert_eq!(fse.drain().len(), 1);
    }

    #[test]
    fn rename_reports_both_paths() {
        let (fs, fse) = setup(0, 100);
        fse.watch_subtree("/");
        fs.create("/a");
        fs.rename("/a", "/b");
        let evs = fse.drain();
        let renamed: Vec<&str> = evs
            .iter()
            .filter(|e| e.flags.has(FsEventFlags::ITEM_RENAMED))
            .map(|e| e.path.as_str())
            .collect();
        assert_eq!(renamed, vec!["/a", "/b"]);
    }

    #[test]
    fn event_ids_increase() {
        let (fs, fse) = setup(0, 100);
        fse.watch_subtree("/");
        fs.create("/a");
        fs.create("/b");
        let evs = fse.drain();
        assert!(evs[0].event_id < evs[1].event_id);
    }
}
