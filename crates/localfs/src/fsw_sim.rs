//! Simulated Windows FileSystemWatcher.
//!
//! The OS writes change reports into a caller-supplied byte buffer; when
//! "many file system changes occur in a short period of time" the buffer
//! overflows and events are lost (§II-A). Each report costs
//! `16 + 2 × path_len` bytes (the real `FILE_NOTIFY_INFORMATION` layout
//! with UTF-16 names). Only directories can be watched; watching a
//! directory covers its children (and the whole subtree with
//! `IncludeSubdirectories`).

use crate::simfs::{RawListener, RawOp, RawOpKind, SimFs};
use fsmon_events::fswatcher::{FswChangeType, FswEvent};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default internal buffer size (the .NET default, 8 KB).
pub const DEFAULT_BUFFER: usize = 8192;

/// A simulated FileSystemWatcher.
pub struct FswSim {
    inner: Mutex<Inner>,
    buffer_size: usize,
    include_subdirectories: bool,
    /// Events lost to buffer overflow.
    pub lost: AtomicU64,
}

struct Inner {
    root: Option<String>,
    queue: VecDeque<FswEvent>,
    buffered_bytes: usize,
    error_pending: bool,
}

fn report_cost(path: &str) -> usize {
    16 + 2 * path.len()
}

impl FswSim {
    /// Create a watcher attached to `fs`.
    pub fn attach(
        fs: &Arc<SimFs>,
        buffer_size: usize,
        include_subdirectories: bool,
    ) -> Arc<FswSim> {
        let sim = Arc::new(FswSim {
            inner: Mutex::new(Inner {
                root: None,
                queue: VecDeque::new(),
                buffered_bytes: 0,
                error_pending: false,
            }),
            buffer_size,
            include_subdirectories,
            lost: AtomicU64::new(0),
        });
        fs.attach(sim.clone() as Arc<dyn RawListener>);
        sim
    }

    /// Set the watched directory (`FileSystemWatcher.Path`). Fails on
    /// files — "the monitor can only establish a watch to monitor
    /// directories, not files" (§II-A).
    pub fn set_path(&self, fs: &SimFs, dir: &str) -> bool {
        if !fs.is_dir(dir) {
            return false;
        }
        self.inner.lock().root = Some(dir.to_string());
        true
    }

    /// Drain pending events (the consumer reading the buffer).
    pub fn drain(&self) -> Vec<FswEvent> {
        let mut inner = self.inner.lock();
        inner.buffered_bytes = 0;
        inner.error_pending = false;
        inner.queue.drain(..).collect()
    }

    fn covers(&self, inner: &Inner, path: &str) -> bool {
        let Some(root) = &inner.root else {
            return false;
        };
        let prefix = if root == "/" {
            "/".to_string()
        } else {
            format!("{root}/")
        };
        if !path.starts_with(&prefix) {
            return false;
        }
        if self.include_subdirectories {
            true
        } else {
            // Only direct children.
            !path[prefix.len()..].contains('/')
        }
    }

    fn push(&self, inner: &mut Inner, ev: FswEvent) {
        let cost = report_cost(&ev.full_path) + ev.old_full_path.as_deref().map_or(0, report_cost);
        if inner.buffered_bytes + cost > self.buffer_size {
            self.lost.fetch_add(1, Ordering::Relaxed);
            if !inner.error_pending {
                inner.error_pending = true;
                inner.queue.push_back(FswEvent {
                    change_type: FswChangeType::Error,
                    full_path: inner.root.clone().unwrap_or_default(),
                    old_full_path: None,
                    is_dir: true,
                });
            }
            return;
        }
        inner.buffered_bytes += cost;
        inner.queue.push_back(ev);
    }
}

impl RawListener for FswSim {
    fn on_op(&self, op: &RawOp) {
        let mut inner = self.inner.lock();
        if !self.covers(&inner, &op.path)
            && !op.dest.as_deref().is_some_and(|d| self.covers(&inner, d))
        {
            return;
        }
        let ev = match op.kind {
            RawOpKind::Create => FswEvent {
                change_type: FswChangeType::Created,
                full_path: op.path.clone(),
                old_full_path: None,
                is_dir: op.is_dir,
            },
            RawOpKind::Modify | RawOpKind::Attrib => FswEvent {
                change_type: FswChangeType::Changed,
                full_path: op.path.clone(),
                old_full_path: None,
                is_dir: op.is_dir,
            },
            RawOpKind::Delete => FswEvent {
                change_type: FswChangeType::Deleted,
                full_path: op.path.clone(),
                old_full_path: None,
                is_dir: op.is_dir,
            },
            RawOpKind::Rename => FswEvent {
                change_type: FswChangeType::Renamed,
                full_path: op.dest.clone().unwrap_or_default(),
                old_full_path: Some(op.path.clone()),
                is_dir: op.is_dir,
            },
            // FileSystemWatcher has no open/close notifications.
            RawOpKind::Open | RawOpKind::Close { .. } => return,
        };
        self.push(&mut inner, ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(buffer: usize, recurse: bool) -> (Arc<SimFs>, Arc<FswSim>) {
        let fs = SimFs::new();
        let fsw = FswSim::attach(&fs, buffer, recurse);
        (fs, fsw)
    }

    #[test]
    fn four_event_types_reported() {
        let (fs, fsw) = setup(DEFAULT_BUFFER, false);
        fsw.set_path(&fs, "/");
        fs.create("/f");
        fs.modify("/f");
        fs.rename("/f", "/g");
        fs.delete("/g");
        let evs = fsw.drain();
        let types: Vec<FswChangeType> = evs.iter().map(|e| e.change_type).collect();
        assert_eq!(
            types,
            vec![
                FswChangeType::Created,
                FswChangeType::Changed,
                FswChangeType::Renamed,
                FswChangeType::Deleted
            ]
        );
        assert_eq!(evs[2].old_full_path.as_deref(), Some("/f"));
    }

    #[test]
    fn cannot_watch_a_file() {
        let (fs, fsw) = setup(DEFAULT_BUFFER, false);
        fs.create("/f");
        assert!(!fsw.set_path(&fs, "/f"));
        assert!(fsw.set_path(&fs, "/"));
    }

    #[test]
    fn non_recursive_sees_only_direct_children() {
        let (fs, fsw) = setup(DEFAULT_BUFFER, false);
        fs.mkdir("/w");
        fs.mkdir("/w/sub");
        fsw.set_path(&fs, "/w");
        fs.create("/w/direct");
        fs.create("/w/sub/nested");
        let evs = fsw.drain();
        let paths: Vec<&str> = evs.iter().map(|e| e.full_path.as_str()).collect();
        assert!(paths.contains(&"/w/direct"));
        assert!(!paths.contains(&"/w/sub/nested"));
    }

    #[test]
    fn include_subdirectories_sees_subtree() {
        let (fs, fsw) = setup(DEFAULT_BUFFER, true);
        fs.mkdir("/w");
        fs.mkdir("/w/sub");
        fsw.set_path(&fs, "/w");
        fs.create("/w/sub/nested");
        let evs = fsw.drain();
        assert!(evs.iter().any(|e| e.full_path == "/w/sub/nested"));
    }

    #[test]
    fn buffer_overflow_raises_error_and_loses_events() {
        // Each "/fNN" report costs 16 + 2*4 = 24 bytes; a 100-byte
        // buffer holds 4.
        let (fs, fsw) = setup(100, false);
        fsw.set_path(&fs, "/");
        for i in 0..10 {
            fs.create(&format!("/f{i:02}"));
        }
        let evs = fsw.drain();
        let errors: Vec<_> = evs
            .iter()
            .filter(|e| e.change_type == FswChangeType::Error)
            .collect();
        assert_eq!(errors.len(), 1);
        assert!(fsw.lost.load(Ordering::Relaxed) > 0);
        assert!(evs.len() < 11);
        // Drain resets the buffer.
        fs.create("/after");
        assert_eq!(fsw.drain().len(), 1);
    }

    #[test]
    fn unwatched_fs_produces_nothing() {
        let (fs, fsw) = setup(DEFAULT_BUFFER, true);
        fs.create("/f");
        assert!(fsw.drain().is_empty());
    }
}
