//! Simulated inotify.
//!
//! Reproduces the real facility's behaviour as the paper describes it
//! (§II-A): per-directory watches (no recursion — "a key limitation of
//! inotify is that it does not support recursive monitoring, requiring a
//! unique watcher to be placed on each directory of interest"), a
//! per-instance watch limit (`max_user_watches`), and a bounded event
//! queue that raises `IN_Q_OVERFLOW` and drops events when readers fall
//! behind.

use crate::simfs::{name_of, parent_of, RawListener, RawOp, RawOpKind, SimFs};
use fsmon_events::inotify::{InotifyEvent, InotifyMask};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// A simulated inotify instance.
pub struct InotifySim {
    inner: Mutex<Inner>,
    max_watches: usize,
    max_queued: usize,
    cookie: AtomicU32,
    /// Events lost to queue overflow.
    pub overflows: AtomicU64,
}

struct Inner {
    /// Watched directory path → watch descriptor.
    watches: HashMap<String, i32>,
    next_wd: i32,
    queue: VecDeque<InotifyEvent>,
    overflow_pending: bool,
}

impl InotifySim {
    /// Create an instance and attach it to `fs`. `max_watches` models
    /// `fs.inotify.max_user_watches`, `max_queued` models
    /// `max_queued_events` (default 16384 in Linux).
    pub fn attach(fs: &Arc<SimFs>, max_watches: usize, max_queued: usize) -> Arc<InotifySim> {
        let sim = Arc::new(InotifySim {
            inner: Mutex::new(Inner {
                watches: HashMap::new(),
                next_wd: 1,
                queue: VecDeque::new(),
                overflow_pending: false,
            }),
            max_watches,
            max_queued,
            cookie: AtomicU32::new(1),
            overflows: AtomicU64::new(0),
        });
        fs.attach(sim.clone() as Arc<dyn RawListener>);
        sim
    }

    /// Add a watch on a directory. Returns the watch descriptor, or
    /// `None` when the watch limit is reached (`ENOSPC` in the real
    /// API).
    pub fn add_watch(&self, dir: &str) -> Option<i32> {
        let mut inner = self.inner.lock();
        if let Some(wd) = inner.watches.get(dir) {
            return Some(*wd);
        }
        if inner.watches.len() >= self.max_watches {
            return None;
        }
        let wd = inner.next_wd;
        inner.next_wd += 1;
        inner.watches.insert(dir.to_string(), wd);
        Some(wd)
    }

    /// Recursively watch `root` and every directory beneath it — the
    /// crawl a recursive `inotifywait -r` must perform.
    /// Returns the number of watches placed (stops at the limit).
    pub fn add_watch_recursive(&self, fs: &SimFs, root: &str) -> usize {
        let mut placed = 0;
        for dir in fs.all_dirs() {
            let under = dir == root
                || (root == "/" && dir.starts_with('/'))
                || dir.starts_with(&format!("{root}/"));
            if under && self.add_watch(&dir).is_some() {
                placed += 1;
            }
        }
        placed
    }

    /// Remove a watch by directory path.
    pub fn rm_watch(&self, dir: &str) -> bool {
        self.inner.lock().watches.remove(dir).is_some()
    }

    /// Number of active watches (1 KB of kernel memory each, per the
    /// paper).
    pub fn watch_count(&self) -> usize {
        self.inner.lock().watches.len()
    }

    /// Estimated kernel memory for watches, bytes (1 KB per watch).
    pub fn watch_memory_bytes(&self) -> usize {
        self.watch_count() * 1024
    }

    /// Drain all queued events.
    pub fn drain(&self) -> Vec<InotifyEvent> {
        let mut inner = self.inner.lock();
        inner.queue.drain(..).collect()
    }

    /// Read up to `max` queued events.
    pub fn read(&self, max: usize) -> Vec<InotifyEvent> {
        let mut inner = self.inner.lock();
        let n = inner.queue.len().min(max);
        inner.queue.drain(..n).collect()
    }

    /// Queued event count.
    pub fn queued(&self) -> usize {
        self.inner.lock().queue.len()
    }

    fn enqueue(&self, inner: &mut Inner, ev: InotifyEvent) {
        if inner.queue.len() >= self.max_queued {
            self.overflows.fetch_add(1, Ordering::Relaxed);
            if !inner.overflow_pending {
                inner.overflow_pending = true;
                // The kernel queues a single IN_Q_OVERFLOW marker.
                inner.queue.push_back(InotifyEvent {
                    wd: -1,
                    mask: InotifyMask(InotifyMask::IN_Q_OVERFLOW),
                    cookie: 0,
                    name: String::new(),
                });
            }
            return;
        }
        inner.overflow_pending = false;
        inner.queue.push_back(ev);
    }

    fn event_for(
        &self,
        inner: &mut Inner,
        dir: &str,
        mask: u32,
        cookie: u32,
        name: &str,
        is_dir: bool,
    ) {
        let Some(&wd) = inner.watches.get(dir) else {
            return; // directory not watched: event invisible (no recursion)
        };
        let mask = if is_dir {
            mask | InotifyMask::IN_ISDIR
        } else {
            mask
        };
        self.enqueue(
            inner,
            InotifyEvent {
                wd,
                mask: InotifyMask(mask),
                cookie,
                name: name.to_string(),
            },
        );
    }

    /// Look up the path a watch descriptor points at (the userspace
    /// bookkeeping every inotify consumer maintains).
    pub fn wd_path(&self, wd: i32) -> Option<String> {
        self.inner
            .lock()
            .watches
            .iter()
            .find(|(_, w)| **w == wd)
            .map(|(p, _)| p.clone())
    }
}

impl RawListener for InotifySim {
    fn on_op(&self, op: &RawOp) {
        let mut inner = self.inner.lock();
        let parent = op.parent();
        let name = name_of(&op.path);
        match op.kind {
            RawOpKind::Create => {
                self.event_for(
                    &mut inner,
                    &parent,
                    InotifyMask::IN_CREATE,
                    0,
                    name,
                    op.is_dir,
                );
            }
            RawOpKind::Modify => {
                self.event_for(
                    &mut inner,
                    &parent,
                    InotifyMask::IN_MODIFY,
                    0,
                    name,
                    op.is_dir,
                );
            }
            RawOpKind::Attrib => {
                self.event_for(
                    &mut inner,
                    &parent,
                    InotifyMask::IN_ATTRIB,
                    0,
                    name,
                    op.is_dir,
                );
            }
            RawOpKind::Open => {
                self.event_for(
                    &mut inner,
                    &parent,
                    InotifyMask::IN_OPEN,
                    0,
                    name,
                    op.is_dir,
                );
            }
            RawOpKind::Close { wrote } => {
                let mask = if wrote {
                    InotifyMask::IN_CLOSE_WRITE
                } else {
                    InotifyMask::IN_CLOSE_NOWRITE
                };
                self.event_for(&mut inner, &parent, mask, 0, name, op.is_dir);
            }
            RawOpKind::Delete => {
                self.event_for(
                    &mut inner,
                    &parent,
                    InotifyMask::IN_DELETE,
                    0,
                    name,
                    op.is_dir,
                );
                // A watched directory that is removed reports
                // IN_DELETE_SELF on its own wd and the watch dies.
                if op.is_dir && inner.watches.contains_key(&op.path) {
                    let wd = inner.watches[&op.path];
                    self.enqueue(
                        &mut inner,
                        InotifyEvent {
                            wd,
                            mask: InotifyMask(InotifyMask::IN_DELETE_SELF),
                            cookie: 0,
                            name: String::new(),
                        },
                    );
                    inner.watches.remove(&op.path);
                }
            }
            RawOpKind::Rename => {
                let dest = op.dest.clone().unwrap_or_default();
                let cookie = self.cookie.fetch_add(1, Ordering::Relaxed);
                self.event_for(
                    &mut inner,
                    &parent,
                    InotifyMask::IN_MOVED_FROM,
                    cookie,
                    name,
                    op.is_dir,
                );
                let dest_parent = parent_of(&dest);
                self.event_for(
                    &mut inner,
                    &dest_parent,
                    InotifyMask::IN_MOVED_TO,
                    cookie,
                    name_of(&dest),
                    op.is_dir,
                );
                // Watches follow renamed directories (kernel re-keys the
                // path internally; userspace bookkeeping must be
                // updated to keep wd→path maps accurate).
                if op.is_dir {
                    let moved: Vec<(String, i32)> = inner
                        .watches
                        .iter()
                        .filter(|(p, _)| **p == op.path || p.starts_with(&format!("{}/", op.path)))
                        .map(|(p, w)| (p.clone(), *w))
                        .collect();
                    for (p, w) in moved {
                        inner.watches.remove(&p);
                        let suffix = &p[op.path.len()..];
                        inner.watches.insert(format!("{dest}{suffix}"), w);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmon_events::EventKind;

    fn setup(max_watches: usize, max_queue: usize) -> (Arc<SimFs>, Arc<InotifySim>) {
        let fs = SimFs::new();
        let ino = InotifySim::attach(&fs, max_watches, max_queue);
        (fs, ino)
    }

    #[test]
    fn events_only_from_watched_dirs() {
        let (fs, ino) = setup(100, 100);
        ino.add_watch("/");
        fs.mkdir("/sub");
        fs.create("/sub/hidden.txt"); // /sub not watched
        fs.create("/visible.txt");
        let evs = ino.drain();
        let names: Vec<&str> = evs.iter().map(|e| e.name.as_str()).collect();
        assert!(names.contains(&"visible.txt"));
        assert!(!names.contains(&"hidden.txt"), "no recursion in inotify");
        assert!(names.contains(&"sub"));
    }

    #[test]
    fn recursive_watch_crawls_all_dirs() {
        let (fs, ino) = setup(100, 1000);
        fs.mkdir("/a");
        fs.mkdir("/a/b");
        fs.mkdir("/c");
        let placed = ino.add_watch_recursive(&fs, "/");
        assert_eq!(placed, 4); // /, /a, /a/b, /c
        fs.create("/a/b/deep.txt");
        let evs = ino.drain();
        assert!(evs.iter().any(|e| e.name == "deep.txt"));
    }

    #[test]
    fn watch_limit_enforced() {
        let (fs, ino) = setup(2, 100);
        fs.mkdir("/a");
        fs.mkdir("/b");
        assert!(ino.add_watch("/").is_some());
        assert!(ino.add_watch("/a").is_some());
        assert!(ino.add_watch("/b").is_none(), "limit of 2");
        assert_eq!(ino.watch_count(), 2);
        assert_eq!(ino.watch_memory_bytes(), 2048);
    }

    #[test]
    fn duplicate_watch_returns_same_wd() {
        let (_fs, ino) = setup(10, 10);
        let a = ino.add_watch("/").unwrap();
        let b = ino.add_watch("/").unwrap();
        assert_eq!(a, b);
        assert_eq!(ino.watch_count(), 1);
    }

    #[test]
    fn queue_overflow_raises_single_marker_and_drops() {
        let (fs, ino) = setup(10, 5);
        ino.add_watch("/");
        for i in 0..20 {
            fs.create(&format!("/f{i}"));
        }
        let evs = ino.drain();
        // 5 real events + 1 overflow marker.
        assert_eq!(evs.len(), 6);
        assert!(evs[5].mask.has(InotifyMask::IN_Q_OVERFLOW));
        assert_eq!(evs[5].kind(), EventKind::Overflow);
        assert_eq!(ino.overflows.load(Ordering::Relaxed), 15);
    }

    #[test]
    fn rename_pairs_share_cookie() {
        let (fs, ino) = setup(10, 100);
        ino.add_watch("/");
        fs.create("/hello.txt");
        fs.rename("/hello.txt", "/hi.txt");
        let evs = ino.drain();
        let from = evs
            .iter()
            .find(|e| e.mask.has(InotifyMask::IN_MOVED_FROM))
            .unwrap();
        let to = evs
            .iter()
            .find(|e| e.mask.has(InotifyMask::IN_MOVED_TO))
            .unwrap();
        assert_eq!(from.cookie, to.cookie);
        assert_ne!(from.cookie, 0);
        assert_eq!(from.name, "hello.txt");
        assert_eq!(to.name, "hi.txt");
    }

    #[test]
    fn deleted_watched_dir_reports_delete_self_and_unwatches() {
        let (fs, ino) = setup(10, 100);
        fs.mkdir("/d");
        ino.add_watch("/");
        ino.add_watch("/d");
        fs.delete("/d");
        let evs = ino.drain();
        assert!(evs.iter().any(|e| e.mask.has(InotifyMask::IN_DELETE)));
        assert!(evs.iter().any(|e| e.mask.has(InotifyMask::IN_DELETE_SELF)));
        assert_eq!(ino.watch_count(), 1);
    }

    #[test]
    fn watches_follow_renamed_directories() {
        let (fs, ino) = setup(10, 100);
        fs.mkdir("/d");
        ino.add_watch("/d");
        fs.rename("/d", "/e");
        fs.create("/e/inside.txt");
        let evs = ino.drain();
        assert!(evs.iter().any(|e| e.name == "inside.txt"));
        assert_eq!(ino.wd_path(1).as_deref(), Some("/e"));
    }

    #[test]
    fn close_events_distinguish_write() {
        let (fs, ino) = setup(10, 100);
        ino.add_watch("/");
        fs.create("/f");
        fs.close("/f", true);
        fs.close("/f", false);
        let evs = ino.drain();
        assert!(evs.iter().any(|e| e.kind() == EventKind::CloseWrite));
        assert!(evs.iter().any(|e| e.kind() == EventKind::CloseNoWrite));
    }
}
