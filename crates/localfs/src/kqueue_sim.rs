//! Simulated kqueue (`EVFILT_VNODE`).
//!
//! kqueue watches *open file descriptors*, so the monitor must hold an
//! fd per watched file — the scalability limit the paper calls out:
//! "the kqueue monitor requires a file descriptor to be opened for
//! every file being watched, restricting its application to very large
//! file systems" (§II-A). The fd budget here models `RLIMIT_NOFILE`.

use crate::simfs::{parent_of, RawListener, RawOp, RawOpKind, SimFs};
use fsmon_events::kqueue::{KqueueEvent, NoteFlags};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// A simulated kqueue instance.
pub struct KqueueSim {
    inner: Mutex<Inner>,
    fd_limit: usize,
}

struct Inner {
    /// path → (fd, is_dir). An fd pins the vnode like a real open fd.
    fds: HashMap<String, (u64, bool)>,
    next_fd: u64,
    queue: VecDeque<KqueueEvent>,
}

impl KqueueSim {
    /// Create an instance attached to `fs` with an fd budget.
    pub fn attach(fs: &Arc<SimFs>, fd_limit: usize) -> Arc<KqueueSim> {
        let sim = Arc::new(KqueueSim {
            inner: Mutex::new(Inner {
                fds: HashMap::new(),
                next_fd: 3,
                queue: VecDeque::new(),
            }),
            fd_limit,
        });
        fs.attach(sim.clone() as Arc<dyn RawListener>);
        sim
    }

    /// Open + register a vnode watch (`EV_SET` on an opened fd).
    /// Returns the fd, or `None` at the fd limit (`EMFILE`).
    pub fn watch(&self, fs: &SimFs, path: &str) -> Option<u64> {
        if !fs.exists(path) {
            return None;
        }
        let mut inner = self.inner.lock();
        if let Some((fd, _)) = inner.fds.get(path) {
            return Some(*fd);
        }
        if inner.fds.len() >= self.fd_limit {
            return None;
        }
        let fd = inner.next_fd;
        inner.next_fd += 1;
        inner.fds.insert(path.to_string(), (fd, fs.is_dir(path)));
        Some(fd)
    }

    /// Watch a directory and every existing entry beneath it (the crawl
    /// a kqueue-based recursive monitor performs). Returns fds placed.
    pub fn watch_tree(&self, fs: &SimFs, root: &str) -> usize {
        let mut placed = 0;
        let mut stack = vec![root.to_string()];
        while let Some(dir) = stack.pop() {
            if self.watch(fs, &dir).is_some() {
                placed += 1;
            }
            for child in fs.children(&dir) {
                if fs.is_dir(&child) {
                    stack.push(child);
                } else if self.watch(fs, &child).is_some() {
                    placed += 1;
                }
            }
        }
        placed
    }

    /// Close a watch.
    pub fn unwatch(&self, path: &str) -> bool {
        self.inner.lock().fds.remove(path).is_some()
    }

    /// Open fd count.
    pub fn fd_count(&self) -> usize {
        self.inner.lock().fds.len()
    }

    /// Drain pending kevents.
    pub fn drain(&self) -> Vec<KqueueEvent> {
        let mut inner = self.inner.lock();
        inner.queue.drain(..).collect()
    }

    fn raise(inner: &mut Inner, path: &str, fflags: u32) {
        if let Some((fd, is_dir)) = inner.fds.get(path).copied() {
            inner.queue.push_back(KqueueEvent {
                ident: fd,
                fflags: NoteFlags(fflags),
                path: path.to_string(),
                is_dir,
            });
        }
    }
}

impl RawListener for KqueueSim {
    fn on_op(&self, op: &RawOp) {
        let mut inner = self.inner.lock();
        let parent = op.parent();
        match op.kind {
            // kqueue sees child creation/removal as NOTE_WRITE on the
            // watched *directory*; the file itself has no fd yet.
            RawOpKind::Create => {
                Self::raise(&mut inner, &parent, NoteFlags::NOTE_WRITE);
            }
            RawOpKind::Modify => {
                Self::raise(
                    &mut inner,
                    &op.path,
                    NoteFlags::NOTE_WRITE | NoteFlags::NOTE_EXTEND,
                );
            }
            RawOpKind::Attrib => {
                Self::raise(&mut inner, &op.path, NoteFlags::NOTE_ATTRIB);
            }
            RawOpKind::Open => {
                Self::raise(&mut inner, &op.path, NoteFlags::NOTE_OPEN);
            }
            RawOpKind::Close { wrote } => {
                let flag = if wrote {
                    NoteFlags::NOTE_CLOSE_WRITE
                } else {
                    NoteFlags::NOTE_CLOSE
                };
                Self::raise(&mut inner, &op.path, flag);
            }
            RawOpKind::Delete => {
                Self::raise(&mut inner, &op.path, NoteFlags::NOTE_DELETE);
                Self::raise(&mut inner, &parent, NoteFlags::NOTE_WRITE);
                // The fd outlives the unlink (vnode pinned) but no
                // further events arrive; drop the watch like a real
                // monitor would on NOTE_DELETE.
                inner.fds.remove(&op.path);
            }
            RawOpKind::Rename => {
                Self::raise(&mut inner, &op.path, NoteFlags::NOTE_RENAME);
                Self::raise(&mut inner, &parent, NoteFlags::NOTE_WRITE);
                if let Some(dest) = &op.dest {
                    // The fd follows the vnode across the rename.
                    if let Some(entry) = inner.fds.remove(&op.path) {
                        inner.fds.insert(dest.clone(), entry);
                    }
                    let dest_parent = parent_of(dest);
                    if dest_parent != parent {
                        Self::raise(&mut inner, &dest_parent, NoteFlags::NOTE_WRITE);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmon_events::EventKind;

    fn setup(limit: usize) -> (Arc<SimFs>, Arc<KqueueSim>) {
        let fs = SimFs::new();
        let kq = KqueueSim::attach(&fs, limit);
        (fs, kq)
    }

    #[test]
    fn child_create_raises_write_on_watched_dir() {
        let (fs, kq) = setup(10);
        kq.watch(&fs, "/").unwrap();
        fs.create("/f");
        let evs = kq.drain();
        assert_eq!(evs.len(), 1);
        assert!(evs[0].fflags.has(NoteFlags::NOTE_WRITE));
        assert_eq!(evs[0].path, "/");
        assert!(evs[0].is_dir);
    }

    #[test]
    fn modify_needs_file_fd() {
        let (fs, kq) = setup(10);
        fs.create("/f");
        fs.modify("/f"); // unwatched: invisible
        assert!(kq.drain().is_empty());
        kq.watch(&fs, "/f").unwrap();
        fs.modify("/f");
        let evs = kq.drain();
        assert_eq!(evs[0].kind(), EventKind::Modify);
    }

    #[test]
    fn fd_limit_enforced() {
        let (fs, kq) = setup(2);
        fs.create("/a");
        fs.create("/b");
        fs.create("/c");
        assert!(kq.watch(&fs, "/a").is_some());
        assert!(kq.watch(&fs, "/b").is_some());
        assert!(kq.watch(&fs, "/c").is_none(), "EMFILE at limit");
        assert_eq!(kq.fd_count(), 2);
    }

    #[test]
    fn watch_tree_opens_fd_per_entry() {
        let (fs, kq) = setup(100);
        fs.mkdir("/d");
        fs.create("/d/f1");
        fs.create("/d/f2");
        fs.mkdir("/d/sub");
        fs.create("/d/sub/f3");
        let placed = kq.watch_tree(&fs, "/d");
        assert_eq!(placed, 5, "/d, f1, f2, sub, f3");
    }

    #[test]
    fn delete_raises_note_delete_and_drops_fd() {
        let (fs, kq) = setup(10);
        fs.create("/f");
        kq.watch(&fs, "/f").unwrap();
        fs.delete("/f");
        let evs = kq.drain();
        assert!(evs.iter().any(|e| e.fflags.has(NoteFlags::NOTE_DELETE)));
        assert_eq!(kq.fd_count(), 0);
    }

    #[test]
    fn rename_emits_note_rename_and_fd_follows() {
        let (fs, kq) = setup(10);
        fs.create("/a");
        kq.watch(&fs, "/a").unwrap();
        fs.rename("/a", "/b");
        let evs = kq.drain();
        assert!(evs.iter().any(|e| e.fflags.has(NoteFlags::NOTE_RENAME)));
        // Modify via the new name is still visible on the same fd.
        fs.modify("/b");
        let evs = kq.drain();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].path, "/b");
    }

    #[test]
    fn watch_missing_path_fails() {
        let (fs, kq) = setup(10);
        assert!(kq.watch(&fs, "/nope").is_none());
    }
}
