#![warn(missing_docs)]

//! # fsmon-localfs
//!
//! Local file-system monitoring substrates. Two halves:
//!
//! 1. **Simulated kernels** — an in-memory local file system
//!    ([`SimFs`]) that dispatches raw operations to attached monitor
//!    backends, each reproducing the semantics *and the limits* of one
//!    real facility the paper surveys (§II-A):
//!    * [`InotifySim`] — per-directory watches, a watch-count limit,
//!      a bounded event queue that raises `IN_Q_OVERFLOW`, and no
//!      recursion (each subdirectory needs its own watch).
//!    * [`KqueueSim`] — an open file descriptor per watched vnode, an
//!      fd limit, `NOTE_*` events; directory writes signal child
//!      creation/deletion.
//!    * [`FsEventsSim`] — recursive subtree streams, per-path flag
//!      coalescing within a latency window, `MustScanSubDirs` on
//!      overload.
//!    * [`FswSim`] — Windows FileSystemWatcher: one watch per directory
//!      tree, a byte buffer sized in the real API's units, buffer
//!      overflow producing an `Error` event and loss.
//! 2. **A real watcher** — [`PollWatcher`], a portable snapshot-diff
//!    monitor over the actual on-disk file system, so FSMonitor is
//!    genuinely usable on the machine running it.
//!
//! ```
//! use fsmon_localfs::{SimFs, InotifySim};
//!
//! let fs = SimFs::new();
//! let ino = InotifySim::attach(&fs, 128, 1024);
//! ino.add_watch("/");
//! fs.create("/hello.txt");
//! let events = ino.drain();
//! assert_eq!(events.len(), 1);
//! assert_eq!(events[0].name, "hello.txt");
//! ```

pub mod fsevents_sim;
pub mod fsw_sim;
pub mod inotify_sim;
pub mod kqueue_sim;
pub mod poll;
pub mod simfs;

pub use fsevents_sim::FsEventsSim;
pub use fsw_sim::FswSim;
pub use inotify_sim::InotifySim;
pub use kqueue_sim::KqueueSim;
pub use poll::PollWatcher;
pub use simfs::{RawOp, RawOpKind, SimFs};
