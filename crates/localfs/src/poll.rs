//! A real, portable polling watcher over the host file system.
//!
//! Snapshot-diff monitoring: scan the watched tree, compare with the
//! previous snapshot, and emit standardized events for every difference.
//! This is the fallback DSI that works on any storage a path can reach —
//! the "arbitrary storage systems" floor of the paper's title — at the
//! cost of latency proportional to the poll interval and tree size.

use fsmon_events::{EventKind, MonitorSource, StandardEvent};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::SystemTime;

/// Snapshot entry for one live path.
#[derive(Debug, Clone, PartialEq)]
struct Entry {
    is_dir: bool,
    len: u64,
    mtime: SystemTime,
}

/// A snapshot-diff watcher over a real directory tree.
pub struct PollWatcher {
    root: PathBuf,
    snapshot: HashMap<PathBuf, Entry>,
    primed: bool,
}

impl PollWatcher {
    /// Watch `root` (captures no baseline until the first poll).
    pub fn new(root: impl Into<PathBuf>) -> PollWatcher {
        PollWatcher {
            root: root.into(),
            snapshot: HashMap::new(),
            primed: false,
        }
    }

    /// The watched root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Entries currently tracked.
    pub fn tracked(&self) -> usize {
        self.snapshot.len()
    }

    fn scan(&self) -> HashMap<PathBuf, Entry> {
        let mut out = HashMap::new();
        let mut stack = vec![self.root.clone()];
        while let Some(dir) = stack.pop() {
            let Ok(entries) = std::fs::read_dir(&dir) else {
                continue;
            };
            for entry in entries.flatten() {
                let Ok(meta) = entry.metadata() else { continue };
                let path = entry.path();
                let e = Entry {
                    is_dir: meta.is_dir(),
                    len: meta.len(),
                    mtime: meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
                };
                if e.is_dir {
                    stack.push(path.clone());
                }
                out.insert(path, e);
            }
        }
        out
    }

    fn rel(&self, path: &Path) -> String {
        let rel = path.strip_prefix(&self.root).unwrap_or(path);
        format!("/{}", rel.to_string_lossy())
    }

    /// Poll once: diff the tree against the previous snapshot and
    /// return standardized events. The first poll primes the baseline
    /// and returns nothing.
    pub fn poll(&mut self) -> Vec<StandardEvent> {
        let current = self.scan();
        if !self.primed {
            self.snapshot = current;
            self.primed = true;
            return Vec::new();
        }
        let root_str = self.root.to_string_lossy().to_string();
        let mut events = Vec::new();
        // Creations and modifications.
        for (path, entry) in &current {
            match self.snapshot.get(path) {
                None => {
                    let mut ev =
                        StandardEvent::new(EventKind::Create, root_str.clone(), self.rel(path))
                            .with_source(MonitorSource::Polling);
                    ev.is_dir = entry.is_dir;
                    events.push(ev);
                }
                Some(prev) if prev != entry => {
                    let mut ev =
                        StandardEvent::new(EventKind::Modify, root_str.clone(), self.rel(path))
                            .with_source(MonitorSource::Polling);
                    ev.is_dir = entry.is_dir;
                    events.push(ev);
                }
                _ => {}
            }
        }
        // Deletions.
        for (path, entry) in &self.snapshot {
            if !current.contains_key(path) {
                let mut ev =
                    StandardEvent::new(EventKind::Delete, root_str.clone(), self.rel(path))
                        .with_source(MonitorSource::Polling);
                ev.is_dir = entry.is_dir;
                events.push(ev);
            }
        }
        // Deterministic ordering: parents before children, creates
        // before deletes at equal depth.
        events.sort_by(|a, b| {
            a.path
                .matches('/')
                .count()
                .cmp(&b.path.matches('/').count())
                .then(a.path.cmp(&b.path))
        });
        self.snapshot = current;
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fsmon-poll-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn first_poll_primes_silently() {
        let dir = tmpdir("prime");
        std::fs::write(dir.join("existing.txt"), b"x").unwrap();
        let mut w = PollWatcher::new(&dir);
        assert!(w.poll().is_empty());
        assert_eq!(w.tracked(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn detects_create_modify_delete() {
        let dir = tmpdir("cmd");
        let mut w = PollWatcher::new(&dir);
        w.poll();

        std::fs::write(dir.join("f.txt"), b"hello").unwrap();
        let evs = w.poll();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, EventKind::Create);
        assert_eq!(evs[0].path, "/f.txt");
        assert_eq!(evs[0].source, MonitorSource::Polling);

        std::fs::write(dir.join("f.txt"), b"hello world, longer").unwrap();
        let evs = w.poll();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, EventKind::Modify);

        std::fs::remove_file(dir.join("f.txt")).unwrap();
        let evs = w.poll();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, EventKind::Delete);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn detects_nested_trees_and_dir_flag() {
        let dir = tmpdir("nest");
        let mut w = PollWatcher::new(&dir);
        w.poll();
        std::fs::create_dir_all(dir.join("a/b")).unwrap();
        std::fs::write(dir.join("a/b/deep.txt"), b"x").unwrap();
        let evs = w.poll();
        assert_eq!(evs.len(), 3);
        // Parents sort before children.
        assert_eq!(evs[0].path, "/a");
        assert!(evs[0].is_dir);
        assert_eq!(evs[2].path, "/a/b/deep.txt");
        assert!(!evs[2].is_dir);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quiet_tree_produces_no_events() {
        let dir = tmpdir("quiet");
        std::fs::write(dir.join("f"), b"x").unwrap();
        let mut w = PollWatcher::new(&dir);
        w.poll();
        assert!(w.poll().is_empty());
        assert!(w.poll().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
