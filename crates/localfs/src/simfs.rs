//! The simulated local file system and its raw operation bus.
//!
//! [`SimFs`] maintains an in-memory path tree and broadcasts every
//! mutation as a [`RawOp`] to attached kernel-monitor simulations. The
//! monitors, not the file system, decide which operations become events
//! and which are lost — that is where each facility's semantics live.

use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The kind of a raw file-system mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RawOpKind {
    /// A file or directory was created.
    Create,
    /// File contents changed.
    Modify,
    /// Metadata changed.
    Attrib,
    /// A file or directory was removed.
    Delete,
    /// Rename: the op carries both paths.
    Rename,
    /// A file was opened.
    Open,
    /// A file was closed (after writing when `wrote` is set).
    Close {
        /// Whether the close followed a write.
        wrote: bool,
    },
}

/// One raw mutation, as a kernel would observe it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawOp {
    /// Operation kind.
    pub kind: RawOpKind,
    /// Absolute path of the subject (the *source* for renames).
    pub path: String,
    /// Rename destination.
    pub dest: Option<String>,
    /// Whether the subject is a directory.
    pub is_dir: bool,
    /// Monotonic operation counter (orders ops across the fs).
    pub seq: u64,
}

impl RawOp {
    /// Parent directory of the subject path (`/` for top-level names).
    pub fn parent(&self) -> String {
        parent_of(&self.path)
    }
}

/// Parent directory of an absolute path.
pub fn parent_of(path: &str) -> String {
    match path.rfind('/') {
        Some(0) => "/".to_string(),
        Some(i) => path[..i].to_string(),
        None => "/".to_string(),
    }
}

/// Final component of an absolute path.
pub fn name_of(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

/// A monitor backend attached to the raw operation bus.
pub trait RawListener: Send + Sync {
    /// Observe one raw operation.
    fn on_op(&self, op: &RawOp);
}

#[derive(Default)]
struct State {
    /// Live paths; directories tracked separately for is_dir checks.
    files: BTreeSet<String>,
    dirs: BTreeSet<String>,
}

/// The simulated local file system.
pub struct SimFs {
    state: Mutex<State>,
    listeners: Mutex<Vec<Arc<dyn RawListener>>>,
    seq: AtomicU64,
}

impl Default for SimFs {
    fn default() -> Self {
        let mut state = State::default();
        state.dirs.insert("/".to_string());
        SimFs {
            state: Mutex::new(state),
            listeners: Mutex::new(Vec::new()),
            seq: AtomicU64::new(0),
        }
    }
}

impl SimFs {
    /// An empty file system containing only `/`.
    pub fn new() -> Arc<SimFs> {
        Arc::new(SimFs::default())
    }

    /// Attach a monitor backend.
    pub fn attach(&self, listener: Arc<dyn RawListener>) {
        self.listeners.lock().push(listener);
    }

    fn dispatch(&self, kind: RawOpKind, path: &str, dest: Option<String>, is_dir: bool) {
        let op = RawOp {
            kind,
            path: path.to_string(),
            dest,
            is_dir,
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
        };
        for l in self.listeners.lock().iter() {
            l.on_op(&op);
        }
    }

    /// Whether `path` exists.
    pub fn exists(&self, path: &str) -> bool {
        let st = self.state.lock();
        st.files.contains(path) || st.dirs.contains(path)
    }

    /// Whether `path` is a directory.
    pub fn is_dir(&self, path: &str) -> bool {
        self.state.lock().dirs.contains(path)
    }

    /// All live directories (used by recursive watch installers).
    pub fn all_dirs(&self) -> Vec<String> {
        self.state.lock().dirs.iter().cloned().collect()
    }

    /// Direct children of `dir`.
    pub fn children(&self, dir: &str) -> Vec<String> {
        let st = self.state.lock();
        let prefix = if dir == "/" {
            "/".to_string()
        } else {
            format!("{dir}/")
        };
        st.files
            .iter()
            .chain(st.dirs.iter())
            .filter(|p| p.starts_with(&prefix) && *p != dir && !p[prefix.len()..].contains('/'))
            .cloned()
            .collect()
    }

    /// Create a file. Returns false if it already exists or the parent
    /// is missing.
    pub fn create(&self, path: &str) -> bool {
        {
            let mut st = self.state.lock();
            if st.files.contains(path) || st.dirs.contains(path) {
                return false;
            }
            if !st.dirs.contains(&parent_of(path)) {
                return false;
            }
            st.files.insert(path.to_string());
        }
        self.dispatch(RawOpKind::Create, path, None, false);
        true
    }

    /// Create a directory.
    pub fn mkdir(&self, path: &str) -> bool {
        {
            let mut st = self.state.lock();
            if st.files.contains(path) || st.dirs.contains(path) {
                return false;
            }
            if !st.dirs.contains(&parent_of(path)) {
                return false;
            }
            st.dirs.insert(path.to_string());
        }
        self.dispatch(RawOpKind::Create, path, None, true);
        true
    }

    /// Modify a file's contents.
    pub fn modify(&self, path: &str) -> bool {
        if !self.state.lock().files.contains(path) {
            return false;
        }
        self.dispatch(RawOpKind::Modify, path, None, false);
        true
    }

    /// Open a file.
    pub fn open(&self, path: &str) -> bool {
        if !self.exists(path) {
            return false;
        }
        let is_dir = self.is_dir(path);
        self.dispatch(RawOpKind::Open, path, None, is_dir);
        true
    }

    /// Close a file (`wrote` distinguishes CLOSE_WRITE/CLOSE_NOWRITE).
    pub fn close(&self, path: &str, wrote: bool) -> bool {
        if !self.exists(path) {
            return false;
        }
        let is_dir = self.is_dir(path);
        self.dispatch(RawOpKind::Close { wrote }, path, None, is_dir);
        true
    }

    /// Change metadata.
    pub fn chmod(&self, path: &str) -> bool {
        if !self.exists(path) {
            return false;
        }
        let is_dir = self.is_dir(path);
        self.dispatch(RawOpKind::Attrib, path, None, is_dir);
        true
    }

    /// Delete a file or an (empty) directory.
    pub fn delete(&self, path: &str) -> bool {
        let is_dir;
        {
            let mut st = self.state.lock();
            if st.files.contains(path) {
                st.files.remove(path);
                is_dir = false;
            } else if st.dirs.contains(path) {
                let prefix = format!("{path}/");
                if st
                    .files
                    .iter()
                    .chain(st.dirs.iter())
                    .any(|p| p.starts_with(&prefix))
                {
                    return false; // not empty
                }
                st.dirs.remove(path);
                is_dir = true;
            } else {
                return false;
            }
        }
        self.dispatch(RawOpKind::Delete, path, None, is_dir);
        true
    }

    /// Rename `from` to `to` (same or different directory). Fails if
    /// the destination exists, its parent directory is missing, or a
    /// directory would move into its own subtree (POSIX EINVAL).
    pub fn rename(&self, from: &str, to: &str) -> bool {
        if to == from || to.starts_with(&format!("{from}/")) {
            return false;
        }
        let is_dir;
        {
            let mut st = self.state.lock();
            if !st.dirs.contains(&parent_of(to)) {
                return false;
            }
            if st.files.contains(from) {
                if st.files.contains(to) || st.dirs.contains(to) {
                    return false;
                }
                st.files.remove(from);
                st.files.insert(to.to_string());
                is_dir = false;
            } else if st.dirs.contains(from) {
                if st.files.contains(to) || st.dirs.contains(to) {
                    return false;
                }
                st.dirs.remove(from);
                st.dirs.insert(to.to_string());
                // Re-root children.
                let prefix = format!("{from}/");
                let moved_files: Vec<String> = st
                    .files
                    .iter()
                    .filter(|p| p.starts_with(&prefix))
                    .cloned()
                    .collect();
                for p in moved_files {
                    st.files.remove(&p);
                    st.files.insert(format!("{to}/{}", &p[prefix.len()..]));
                }
                let moved_dirs: Vec<String> = st
                    .dirs
                    .iter()
                    .filter(|p| p.starts_with(&prefix))
                    .cloned()
                    .collect();
                for p in moved_dirs {
                    st.dirs.remove(&p);
                    st.dirs.insert(format!("{to}/{}", &p[prefix.len()..]));
                }
                is_dir = true;
            } else {
                return false;
            }
        }
        self.dispatch(RawOpKind::Rename, from, Some(to.to_string()), is_dir);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Collector(Mutex<Vec<RawOp>>);
    impl RawListener for Collector {
        fn on_op(&self, op: &RawOp) {
            self.0.lock().push(op.clone());
        }
    }

    fn setup() -> (Arc<SimFs>, Arc<Collector>) {
        let fs = SimFs::new();
        let c = Arc::new(Collector(Mutex::new(Vec::new())));
        fs.attach(c.clone());
        (fs, c)
    }

    #[test]
    fn create_modify_delete_dispatch_ops() {
        let (fs, c) = setup();
        assert!(fs.create("/f"));
        assert!(fs.modify("/f"));
        assert!(fs.delete("/f"));
        let ops = c.0.lock();
        assert_eq!(ops.len(), 3);
        assert_eq!(ops[0].kind, RawOpKind::Create);
        assert_eq!(ops[1].kind, RawOpKind::Modify);
        assert_eq!(ops[2].kind, RawOpKind::Delete);
        // Monotonic sequence.
        assert!(ops[0].seq < ops[1].seq && ops[1].seq < ops[2].seq);
    }

    #[test]
    fn create_requires_parent() {
        let (fs, c) = setup();
        assert!(!fs.create("/no/such/f"));
        assert!(c.0.lock().is_empty());
    }

    #[test]
    fn duplicate_create_fails() {
        let (fs, _) = setup();
        assert!(fs.create("/f"));
        assert!(!fs.create("/f"));
        assert!(fs.mkdir("/d"));
        assert!(!fs.mkdir("/d"));
    }

    #[test]
    fn delete_nonempty_dir_fails() {
        let (fs, _) = setup();
        fs.mkdir("/d");
        fs.create("/d/f");
        assert!(!fs.delete("/d"));
        assert!(fs.delete("/d/f"));
        assert!(fs.delete("/d"));
    }

    #[test]
    fn rename_carries_both_paths_and_moves_children() {
        let (fs, c) = setup();
        fs.mkdir("/a");
        fs.create("/a/f");
        assert!(fs.rename("/a", "/b"));
        assert!(fs.exists("/b/f"));
        assert!(!fs.exists("/a/f"));
        let ops = c.0.lock();
        let ren = ops.last().unwrap();
        assert_eq!(ren.kind, RawOpKind::Rename);
        assert_eq!(ren.path, "/a");
        assert_eq!(ren.dest.as_deref(), Some("/b"));
        assert!(ren.is_dir);
    }

    #[test]
    fn rename_over_existing_fails() {
        let (fs, _) = setup();
        fs.create("/a");
        fs.create("/b");
        assert!(!fs.rename("/a", "/b"));
    }

    #[test]
    fn children_lists_direct_only() {
        let (fs, _) = setup();
        fs.mkdir("/d");
        fs.create("/d/f1");
        fs.mkdir("/d/sub");
        fs.create("/d/sub/f2");
        let mut ch = fs.children("/d");
        ch.sort();
        assert_eq!(ch, vec!["/d/f1", "/d/sub"]);
        let root = fs.children("/");
        assert_eq!(root, vec!["/d"]);
    }

    #[test]
    fn path_helpers() {
        assert_eq!(parent_of("/a/b/c"), "/a/b");
        assert_eq!(parent_of("/a"), "/");
        assert_eq!(name_of("/a/b/c"), "c");
        assert_eq!(name_of("/f"), "f");
    }

    #[test]
    fn open_close_ops() {
        let (fs, c) = setup();
        fs.create("/f");
        fs.open("/f");
        fs.close("/f", true);
        fs.close("/f", false);
        let ops = c.0.lock();
        assert_eq!(ops[1].kind, RawOpKind::Open);
        assert_eq!(ops[2].kind, RawOpKind::Close { wrote: true });
        assert_eq!(ops[3].kind, RawOpKind::Close { wrote: false });
    }
}
