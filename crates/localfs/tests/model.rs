//! Model-based property tests for the simulated local file system and
//! the event-completeness guarantees of the attached monitors.

use fsmon_localfs::{FsEventsSim, InotifySim, SimFs};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Create(String),
    Mkdir(String),
    Modify(String),
    Delete(String),
    Rename(String, String),
}

fn arb_path() -> impl Strategy<Value = String> {
    prop::collection::vec(prop::sample::select(vec!["x", "y", "z"]), 1..4)
        .prop_map(|parts| format!("/{}", parts.join("/")))
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        arb_path().prop_map(Op::Create),
        arb_path().prop_map(Op::Mkdir),
        arb_path().prop_map(Op::Modify),
        arb_path().prop_map(Op::Delete),
        (arb_path(), arb_path()).prop_map(|(a, b)| Op::Rename(a, b)),
    ]
}

/// Reference model: path → is_dir.
#[derive(Debug, Default)]
struct Model {
    entries: BTreeMap<String, bool>,
}

impl Model {
    fn parent(path: &str) -> String {
        match path.rfind('/') {
            Some(0) => "/".into(),
            Some(i) => path[..i].into(),
            None => "/".into(),
        }
    }

    fn parent_is_dir(&self, p: &str) -> bool {
        let parent = Self::parent(p);
        parent == "/" || self.entries.get(&parent) == Some(&true)
    }

    fn apply(&mut self, op: &Op) -> bool {
        match op {
            Op::Create(p) => {
                if self.entries.contains_key(p) || !self.parent_is_dir(p) {
                    return false;
                }
                self.entries.insert(p.clone(), false);
                true
            }
            Op::Mkdir(p) => {
                if self.entries.contains_key(p) || !self.parent_is_dir(p) {
                    return false;
                }
                self.entries.insert(p.clone(), true);
                true
            }
            Op::Modify(p) => self.entries.get(p) == Some(&false),
            Op::Delete(p) => match self.entries.get(p) {
                Some(false) => {
                    self.entries.remove(p);
                    true
                }
                Some(true) => {
                    let prefix = format!("{p}/");
                    if self.entries.keys().any(|k| k.starts_with(&prefix)) {
                        false
                    } else {
                        self.entries.remove(p);
                        true
                    }
                }
                None => false,
            },
            Op::Rename(from, to) => {
                if !self.entries.contains_key(from)
                    || self.entries.contains_key(to)
                    || !self.parent_is_dir(to)
                    || to.starts_with(&format!("{from}/"))
                    || from == to
                {
                    return false;
                }
                let is_dir = self.entries[from];
                self.entries.remove(from);
                self.entries.insert(to.clone(), is_dir);
                if is_dir {
                    let prefix = format!("{from}/");
                    let moved: Vec<(String, bool)> = self
                        .entries
                        .iter()
                        .filter(|(k, _)| k.starts_with(&prefix))
                        .map(|(k, d)| (k.clone(), *d))
                        .collect();
                    for (k, d) in moved {
                        self.entries.remove(&k);
                        self.entries
                            .insert(format!("{to}/{}", &k[prefix.len()..]), d);
                    }
                }
                true
            }
        }
    }
}

fn apply_fs(fs: &SimFs, op: &Op) -> bool {
    match op {
        Op::Create(p) => fs.create(p),
        Op::Mkdir(p) => fs.mkdir(p),
        Op::Modify(p) => fs.modify(p),
        Op::Delete(p) => fs.delete(p),
        Op::Rename(a, b) => fs.rename(a, b),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The simulated local FS agrees with the reference model on every
    /// op's outcome and the final namespace.
    #[test]
    fn simfs_agrees_with_model(ops in prop::collection::vec(arb_op(), 0..50)) {
        let fs = SimFs::new();
        let mut model = Model::default();
        for (i, op) in ops.iter().enumerate() {
            let got = apply_fs(&fs, op);
            let expected = model.apply(op);
            prop_assert_eq!(got, expected, "op {} {:?}", i, op);
        }
        for (path, is_dir) in &model.entries {
            prop_assert!(fs.exists(path), "missing {}", path);
            prop_assert_eq!(fs.is_dir(path), *is_dir, "type of {}", path);
        }
    }

    /// The FSEvents subtree monitor sees exactly one event per
    /// successful op (no coalescing window, generous buffer): event
    /// count completeness under arbitrary histories. Renames produce
    /// two ItemRenamed entries (source + destination).
    #[test]
    fn fsevents_event_count_matches_op_count(ops in prop::collection::vec(arb_op(), 0..40)) {
        let fs = SimFs::new();
        let fse = FsEventsSim::attach(&fs, 0, 1 << 20);
        fse.watch_subtree("/");
        let mut model = Model::default();
        let mut expected_events = 0usize;
        for op in &ops {
            let applied = model.apply(op);
            let got = apply_fs(&fs, op);
            assert_eq!(applied, got);
            if applied {
                expected_events += match op {
                    Op::Rename(..) => 2,
                    _ => 1,
                };
            }
        }
        prop_assert_eq!(fse.drain().len(), expected_events);
    }

    /// With a watch on every directory, inotify reports every
    /// successful op at least once, and rename halves share cookies.
    #[test]
    fn inotify_sees_all_ops_with_full_watch_coverage(ops in prop::collection::vec(arb_op(), 0..40)) {
        let fs = SimFs::new();
        let ino = InotifySim::attach(&fs, 1 << 16, 1 << 20);
        ino.add_watch("/");
        let mut model = Model::default();
        let mut successful = 0usize;
        for op in &ops {
            // Keep watches on all dirs current (monitors crawl).
            let applied = model.apply(op);
            let got = apply_fs(&fs, op);
            assert_eq!(applied, got);
            if applied {
                successful += 1;
            }
            ino.add_watch_recursive(&fs, "/");
        }
        let events = ino.drain();
        // Every successful op produced at least one event (renames two,
        // dir deletes may add DELETE_SELF).
        prop_assert!(events.len() >= successful, "{} events for {} ops", events.len(), successful);
        // Rename cookies pair exactly.
        use fsmon_events::inotify::InotifyMask;
        let from_cookies: Vec<u32> = events.iter()
            .filter(|e| e.mask.has(InotifyMask::IN_MOVED_FROM))
            .map(|e| e.cookie).collect();
        let to_cookies: Vec<u32> = events.iter()
            .filter(|e| e.mask.has(InotifyMask::IN_MOVED_TO))
            .map(|e| e.cookie).collect();
        prop_assert_eq!(from_cookies, to_cookies);
    }
}
