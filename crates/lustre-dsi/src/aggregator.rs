//! The MGS aggregator.
//!
//! "Collectors use a publisher-subscriber message queue to report events
//! to an aggregator. When an event arrives … it is placed in a
//! processing queue. The aggregator service is multithreaded, where one
//! thread is responsible for publishing the aggregated file system
//! events to the subscribed consumers, and the other thread stores the
//! events into a local database to enable fault tolerance"
//! (§IV Aggregation).
//!
//! # Sharded publish fan-out
//!
//! The publish side is a short pipeline rather than one thread, so that
//! decode + dedup + encode (the CPU work) scales across cores while the
//! consumer-visible stream keeps its ordering contract:
//!
//! ```text
//! SUB queue → demux ─┬→ worker lane 0 ─┬→ sequencer → PUB + store lane
//!                    ├→ worker lane 1 ─┤
//!                    └→ …            ──┘
//! ```
//!
//! * The **demux** routes each raw frame to a worker lane by topic
//!   hash, so one collector's batches always take the same lane and
//!   stay in arrival order (and each topic's dedup highwater is only
//!   ever touched from one lane at a time).
//! * **Worker lanes** decode, drop replayed changelog ranges, and
//!   pre-encode the surviving events into a reusable frame buffer,
//!   recording the byte offset of each event's id field.
//! * The single **sequencer** assigns dense global ids, patches them
//!   into the pre-encoded frame in place, and publishes. Because one
//!   stage both stamps and sends, publish order *is* id order — the
//!   invariant consumers rely on to detect duplicates and gaps — no
//!   matter how many lanes run upstream.
//! * The **store lane** group-commits: it drains every batch queued at
//!   wakeup and hands the store one [`append_batch`] call, so
//!   persistence cannot stall publication and the store amortizes its
//!   per-append overhead. The sequencer forwards events in stamp
//!   order, so store sequence numbers coincide with the stamps.
//!
//! Every stage is restartable: each runs until stopped or until an
//! injected crash kills it at a loop boundary, and
//! [`Aggregator::respawn_dead_lanes`] brings dead stages back on the
//! same shared state (the SUB queue and all inter-stage channels
//! outlive the threads), so no in-flight event is lost across a
//! restart. Batches from restarted collectors carry their changelog
//! index range, and the worker lanes drop ranges already stamped — the
//! at-least-once upstream becomes exactly-once downstream.
//!
//! [`append_batch`]: fsmon_store::EventStore::append_batch

use bytes::BytesMut;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use fsmon_events::wire::{encode_tlv, find_tlv, TLV_TRACE};
use fsmon_events::{decode_event_batch, encode_event_batch_offsets, patch_event_id, StandardEvent};
use fsmon_faults::{FaultPoint, Faults, Retry};
use fsmon_mq::{Context, Message, PubSocket, SubSocket};
use fsmon_store::EventStore;
use fsmon_telemetry::{trace, Snapshot, TraceRecord, TraceStage, Tracer};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::hash::Hasher;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Publish lanes when the caller doesn't tune the fan-out.
pub const DEFAULT_PUBLISH_LANES: usize = 2;

/// Most events the store lane folds into one group commit when the
/// caller doesn't tune it. Benchmarks shrink this to make a workload
/// fsync-bound (smaller groups → more commits → the shard-scaling axis
/// measures overlapped commit chains, not CPU).
pub const DEFAULT_STORE_GROUP_MAX: usize = 4096;

/// Aggregator throughput counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct AggregatorStats {
    /// Events received from collectors.
    pub received: u64,
    /// Events published to consumers.
    pub published: u64,
    /// Events persisted to the reliable store.
    pub stored: u64,
    /// Malformed frames discarded.
    pub decode_errors: u64,
    /// Events dropped as re-published duplicates (collector restarts).
    pub dedup_dropped: u64,
    /// Lane threads restarted after a crash.
    pub lane_restarts: u64,
}

struct Shared {
    received: AtomicU64,
    published: AtomicU64,
    stored: AtomicU64,
    decode_errors: AtomicU64,
    dedup_dropped: AtomicU64,
    lane_restarts: AtomicU64,
    next_id: AtomicU64,
    stop: AtomicBool,
    demux_alive: AtomicBool,
    worker_alive: Vec<AtomicBool>,
    sequencer_alive: AtomicBool,
    store_alive: AtomicBool,
    /// Per-collector-topic highest changelog index already stamped.
    /// Batches at or below their topic's highwater are restart
    /// re-publications and are dropped whole. Topic-hash routing pins
    /// each topic to one worker lane, so an entry is never contended
    /// while a batch for it is in flight.
    highwater: Mutex<HashMap<Vec<u8>, u64>>,
}

/// A batch a worker lane prepared for the sequencer: events decoded and
/// deduplicated, wire frame already encoded except for the ids, whose
/// byte offsets are recorded so the sequencer can stamp in place.
struct PreparedBatch {
    buf: BytesMut,
    id_offsets: Vec<usize>,
    events: Vec<StandardEvent>,
    /// Sampled trace records riding with the batch, positions already
    /// remapped past any dedup trim.
    traces: Vec<TraceRecord>,
}

/// Everything a lane thread needs; shared so lanes can be respawned.
struct LaneCtx {
    sub: Arc<SubSocket>,
    publisher: Arc<PubSocket>,
    lanes: usize,
    work_tx: Vec<Sender<Message>>,
    work_rx: Vec<Receiver<Message>>,
    seq_tx: Sender<PreparedBatch>,
    seq_rx: Receiver<PreparedBatch>,
    /// Frame buffers flow back from the sequencer to the workers so a
    /// hot pipeline reuses a few grown allocations instead of
    /// allocating one per published frame.
    recycle_tx: Sender<BytesMut>,
    recycle_rx: Receiver<BytesMut>,
    store_tx: Sender<(Vec<StandardEvent>, Vec<TraceRecord>)>,
    store_rx: Receiver<(Vec<StandardEvent>, Vec<TraceRecord>)>,
    store: Arc<dyn EventStore>,
    shared: Arc<Shared>,
    faults: Faults,
    retry: Retry,
    /// Which aggregator shard this is (`None` for the unsharded tier).
    /// Only affects telemetry labels and thread names — the pipeline
    /// itself is shard-agnostic.
    shard: Option<usize>,
    /// Group-commit cap for the store lane.
    store_group_max: usize,
    /// Shared stage clock for trace stamping (sampling itself happens
    /// at the collectors; the aggregator only stamps what arrives).
    tracer: Tracer,
    /// Latest registry snapshot per `telemetry.<source>` topic — the
    /// fleet view's raw material. Merged on demand by
    /// [`Aggregator::fleet_snapshot`].
    fleet: Mutex<BTreeMap<String, Snapshot>>,
    t_fleet_snapshots: Arc<fsmon_telemetry::Counter>,
    t_received: Arc<fsmon_telemetry::Counter>,
    t_published: Arc<fsmon_telemetry::Counter>,
    t_stored: Arc<fsmon_telemetry::Counter>,
    t_decode_errors: Arc<fsmon_telemetry::Counter>,
    t_dedup_dropped: Arc<fsmon_telemetry::Counter>,
    t_store_retries: Arc<fsmon_telemetry::Counter>,
    t_lag: Arc<fsmon_telemetry::Gauge>,
}

/// The aggregator service.
pub struct Aggregator {
    shared: Arc<Shared>,
    lane: Arc<LaneCtx>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    store: Arc<dyn EventStore>,
    consumer_endpoint: String,
}

impl Aggregator {
    /// Start an aggregator: subscribe to every endpoint in
    /// `collector_endpoints`, publish aggregated events at
    /// `consumer_endpoint`, and persist to `store`.
    pub fn start(
        ctx: &Context,
        collector_endpoints: &[String],
        consumer_endpoint: &str,
        store: Arc<dyn EventStore>,
    ) -> Result<Aggregator, fsmon_mq::MqError> {
        Self::start_with(
            ctx,
            collector_endpoints,
            consumer_endpoint,
            store,
            Faults::none(),
            Retry::fast(),
        )
    }

    /// [`start`](Aggregator::start) with an explicit fault plane (lane
    /// crashes, consumer-link disconnects/HWM) and retry policy for
    /// transient store failures.
    pub fn start_with(
        ctx: &Context,
        collector_endpoints: &[String],
        consumer_endpoint: &str,
        store: Arc<dyn EventStore>,
        faults: Faults,
        retry: Retry,
    ) -> Result<Aggregator, fsmon_mq::MqError> {
        Self::start_tuned(
            ctx,
            collector_endpoints,
            consumer_endpoint,
            store,
            faults,
            retry,
            DEFAULT_PUBLISH_LANES,
        )
    }

    /// [`start_with`](Aggregator::start_with) with an explicit publish
    /// fan-out: `publish_lanes` worker lanes decode/dedup/encode
    /// concurrently (clamped to at least 1) behind the single
    /// sequencer that keeps ids dense and ordered.
    pub fn start_tuned(
        ctx: &Context,
        collector_endpoints: &[String],
        consumer_endpoint: &str,
        store: Arc<dyn EventStore>,
        faults: Faults,
        retry: Retry,
        publish_lanes: usize,
    ) -> Result<Aggregator, fsmon_mq::MqError> {
        Self::start_traced(
            ctx,
            collector_endpoints,
            consumer_endpoint,
            store,
            faults,
            retry,
            publish_lanes,
            Tracer::disabled(),
        )
    }

    /// [`start_tuned`](Aggregator::start_tuned) with a [`Tracer`] whose
    /// clock stamps the ingest/sequence/store-commit stages onto trace
    /// records that arrive from collectors. The sequencer's id counter
    /// resumes from the store's last persisted sequence, so an
    /// aggregator restarted over an existing store continues the dense
    /// id stream instead of reissuing ids the store already holds.
    #[allow(clippy::too_many_arguments)]
    pub fn start_traced(
        ctx: &Context,
        collector_endpoints: &[String],
        consumer_endpoint: &str,
        store: Arc<dyn EventStore>,
        faults: Faults,
        retry: Retry,
        publish_lanes: usize,
        tracer: Tracer,
    ) -> Result<Aggregator, fsmon_mq::MqError> {
        Self::start_shard(
            ctx,
            collector_endpoints,
            consumer_endpoint,
            store,
            faults,
            retry,
            publish_lanes,
            tracer,
            None,
            DEFAULT_STORE_GROUP_MAX,
        )
    }

    /// [`start_traced`](Aggregator::start_traced) as one shard of a
    /// partitioned aggregator tier: `shard` labels every telemetry
    /// metric (`shard=<k>`) and thread name so K shards stay
    /// distinguishable in `fsmon stats`, and `store_group_max` caps the
    /// store lane's group commit (the sharded pipeline bench shrinks it
    /// to make the workload commit-bound). Each shard runs the full
    /// demux → worker lanes → sequencer → store pipeline over its own
    /// store, stamping its own dense id stream from that store's
    /// `last_seq`.
    #[allow(clippy::too_many_arguments)]
    pub fn start_shard(
        ctx: &Context,
        collector_endpoints: &[String],
        consumer_endpoint: &str,
        store: Arc<dyn EventStore>,
        faults: Faults,
        retry: Retry,
        publish_lanes: usize,
        tracer: Tracer,
        shard: Option<usize>,
        store_group_max: usize,
    ) -> Result<Aggregator, fsmon_mq::MqError> {
        let lanes = publish_lanes.max(1);
        let sub = Arc::new(ctx.subscriber());
        for ep in collector_endpoints {
            sub.connect(ep)?;
        }
        sub.subscribe(b"mdt");
        // Collectors publish fleet registry snapshots alongside event
        // batches; the demux folds them into the fleet view.
        sub.subscribe(b"telemetry.");
        let publisher = Arc::new(ctx.publisher());
        publisher.bind(consumer_endpoint)?;
        // The consumer-facing link is the one hop with a replay path
        // (the store), so mq faults are armed here and only here.
        publisher.arm_faults(faults.clone());
        let consumer_endpoint_actual = match publisher.local_addr() {
            Some(addr) => format!("tcp://{addr}"),
            None => consumer_endpoint.to_string(),
        };

        let shared = Arc::new(Shared {
            received: AtomicU64::new(0),
            published: AtomicU64::new(0),
            stored: AtomicU64::new(0),
            decode_errors: AtomicU64::new(0),
            dedup_dropped: AtomicU64::new(0),
            lane_restarts: AtomicU64::new(0),
            // Resume the dense id stream where the store left off: a
            // fresh store reports 0 and ids start at 1 as before.
            next_id: AtomicU64::new(store.stats().last_seq),
            stop: AtomicBool::new(false),
            demux_alive: AtomicBool::new(false),
            worker_alive: (0..lanes).map(|_| AtomicBool::new(false)).collect(),
            sequencer_alive: AtomicBool::new(false),
            store_alive: AtomicBool::new(false),
            highwater: Mutex::new(HashMap::new()),
        });

        let agg_scope = scoped(shard);
        let mut work_tx = Vec::with_capacity(lanes);
        let mut work_rx = Vec::with_capacity(lanes);
        for _ in 0..lanes {
            let (tx, rx): (Sender<Message>, Receiver<Message>) = bounded(1 << 12);
            work_tx.push(tx);
            work_rx.push(rx);
        }
        let (seq_tx, seq_rx): (Sender<PreparedBatch>, Receiver<PreparedBatch>) = bounded(1 << 12);
        let (recycle_tx, recycle_rx): (Sender<BytesMut>, Receiver<BytesMut>) = bounded(4 * lanes);
        // The store lane: the sequencer forwards every stamped event
        // here so persistence cannot stall publication.
        type StoreItem = (Vec<StandardEvent>, Vec<TraceRecord>);
        let (store_tx, store_rx): (Sender<StoreItem>, Receiver<StoreItem>) = bounded(1 << 14);
        let lane = Arc::new(LaneCtx {
            sub,
            publisher,
            lanes,
            work_tx,
            work_rx,
            seq_tx,
            seq_rx,
            recycle_tx,
            recycle_rx,
            store_tx,
            store_rx,
            store: store.clone(),
            shared: shared.clone(),
            faults,
            retry,
            shard,
            store_group_max: store_group_max.max(1),
            tracer,
            fleet: Mutex::new(BTreeMap::new()),
            t_fleet_snapshots: agg_scope.counter("fleet_snapshots_total"),
            t_received: agg_scope.counter("received_total"),
            t_published: agg_scope.counter("published_total"),
            t_stored: agg_scope.counter("stored_total"),
            t_decode_errors: agg_scope.counter("decode_errors_total"),
            t_dedup_dropped: agg_scope.counter("dedup_dropped_total"),
            t_store_retries: agg_scope.counter("store_retries_total"),
            // Events published to live consumers but not yet persisted —
            // the publish-side vs store-lane lag.
            t_lag: agg_scope.gauge("store_lag"),
        });

        let agg = Aggregator {
            shared,
            lane,
            threads: Mutex::new(Vec::new()),
            store,
            consumer_endpoint: consumer_endpoint_actual,
        };
        agg.spawn_demux();
        for i in 0..lanes {
            agg.spawn_worker(i);
        }
        agg.spawn_sequencer();
        agg.spawn_store_lane();
        Ok(agg)
    }

    /// `"aggregator"` or `"aggregator-s<k>"` — the thread-name prefix
    /// that keeps K shards' stages apart in a debugger.
    fn thread_prefix(&self) -> String {
        match self.lane.shard {
            Some(k) => format!("aggregator-s{k}"),
            None => "aggregator".to_string(),
        }
    }

    fn spawn_demux(&self) {
        let lane = self.lane.clone();
        lane.shared.demux_alive.store(true, Ordering::Relaxed);
        let handle = std::thread::Builder::new()
            .name(format!("{}-demux", self.thread_prefix()))
            .spawn(move || run_demux(lane))
            .expect("spawn aggregator demux thread");
        self.threads.lock().push(handle);
    }

    fn spawn_worker(&self, i: usize) {
        let lane = self.lane.clone();
        lane.shared.worker_alive[i].store(true, Ordering::Relaxed);
        let handle = std::thread::Builder::new()
            .name(format!("{}-worker{i}", self.thread_prefix()))
            .spawn(move || run_worker_lane(lane, i))
            .expect("spawn aggregator worker thread");
        self.threads.lock().push(handle);
    }

    fn spawn_sequencer(&self) {
        let lane = self.lane.clone();
        lane.shared.sequencer_alive.store(true, Ordering::Relaxed);
        let handle = std::thread::Builder::new()
            .name(format!("{}-sequencer", self.thread_prefix()))
            .spawn(move || run_sequencer(lane))
            .expect("spawn aggregator sequencer thread");
        self.threads.lock().push(handle);
    }

    fn spawn_store_lane(&self) {
        let lane = self.lane.clone();
        lane.shared.store_alive.store(true, Ordering::Relaxed);
        let handle = std::thread::Builder::new()
            .name(format!("{}-store", self.thread_prefix()))
            .spawn(move || run_store_lane(lane))
            .expect("spawn aggregator store thread");
        self.threads.lock().push(handle);
    }

    /// Subscribe to one more collector endpoint — the supervisor calls
    /// this when a restarted collector comes back on a fresh endpoint.
    pub fn attach_collector(&self, endpoint: &str) -> Result<(), fsmon_mq::MqError> {
        self.lane.sub.connect(endpoint)
    }

    /// `(publish side fully alive, store lane alive)`. The publish
    /// side counts as alive only when the demux, every worker lane,
    /// and the sequencer are all running.
    pub fn lanes_alive(&self) -> (bool, bool) {
        let publish = self.shared.demux_alive.load(Ordering::Relaxed)
            && self
                .shared
                .worker_alive
                .iter()
                .all(|w| w.load(Ordering::Relaxed))
            && self.shared.sequencer_alive.load(Ordering::Relaxed);
        (publish, self.shared.store_alive.load(Ordering::Relaxed))
    }

    /// Respawn any stage that died (injected crash or panic) while the
    /// aggregator is not stopping. Every stage resumes on shared state
    /// — the SUB queue and all inter-stage channels survive the thread
    /// — so a restart loses nothing. Returns the number of stages
    /// restarted.
    pub fn respawn_dead_lanes(&self) -> usize {
        if self.shared.stop.load(Ordering::Relaxed) {
            return 0;
        }
        let scope = scoped(self.lane.shard);
        let mut restarted = 0;
        let mut publish_restarts = 0;
        if !self.shared.demux_alive.load(Ordering::Relaxed) {
            self.spawn_demux();
            publish_restarts += 1;
        }
        for i in 0..self.lane.lanes {
            if !self.shared.worker_alive[i].load(Ordering::Relaxed) {
                self.spawn_worker(i);
                publish_restarts += 1;
            }
        }
        if !self.shared.sequencer_alive.load(Ordering::Relaxed) {
            self.spawn_sequencer();
            publish_restarts += 1;
        }
        if publish_restarts > 0 {
            self.shared
                .lane_restarts
                .fetch_add(publish_restarts, Ordering::Relaxed);
            scope
                .with_label("lane", "publish")
                .counter("lane_restarts_total")
                .add(publish_restarts);
            restarted += publish_restarts as usize;
        }
        if !self.shared.store_alive.load(Ordering::Relaxed) {
            self.spawn_store_lane();
            self.shared.lane_restarts.fetch_add(1, Ordering::Relaxed);
            scope
                .with_label("lane", "store")
                .counter("lane_restarts_total")
                .inc();
            restarted += 1;
        }
        restarted
    }

    /// The endpoint consumers should connect to (resolved to the real
    /// port for `tcp://…:0` binds).
    pub fn consumer_endpoint(&self) -> &str {
        &self.consumer_endpoint
    }

    /// The reliable event store (the historic-events API surface).
    pub fn store(&self) -> &Arc<dyn EventStore> {
        &self.store
    }

    /// Attach an in-process filtered subscriber (server-side filter
    /// pushdown): registers `spec`'s class with the publisher and
    /// returns a broadcast-ring cursor wrapped with store-backed gap
    /// healing. Cost per subscriber is one ring cursor; N subscribers
    /// of the same class share every frame.
    pub fn subscribe_filtered(
        &self,
        spec: &fsmon_rules::FilterSpec,
        name: &str,
    ) -> crate::subscriber::FilteredSubscriber {
        let cursor = self.lane.publisher.subscribe_class(&spec.canonical());
        crate::subscriber::FilteredSubscriber::attach(cursor, spec, self.store.clone(), name)
    }

    /// Per-filter-class fan-out counters (consumers, frames, queue
    /// depth, stalls) — the `fsmon top` subscribers section.
    pub fn class_stats(&self) -> Vec<fsmon_mq::ClassStats> {
        self.lane.publisher.class_stats()
    }

    /// The fleet view: every collector's latest `telemetry.<source>`
    /// registry snapshot, folded with
    /// [`Snapshot::merge_fleet`](fsmon_telemetry::Snapshot::merge_fleet)
    /// — counters and histograms add across sources, gauges keep each
    /// source's last write. Empty until the first snapshot arrives.
    pub fn fleet_snapshot(&self) -> Snapshot {
        let fleet = self.lane.fleet.lock();
        let mut merged = Snapshot::default();
        for snap in fleet.values() {
            merged.merge_fleet(snap);
        }
        merged
    }

    /// Sources (topics) that have contributed to the fleet view.
    pub fn fleet_sources(&self) -> Vec<String> {
        self.lane.fleet.lock().keys().cloned().collect()
    }

    /// Counters so far.
    pub fn stats(&self) -> AggregatorStats {
        AggregatorStats {
            received: self.shared.received.load(Ordering::Relaxed),
            published: self.shared.published.load(Ordering::Relaxed),
            stored: self.shared.stored.load(Ordering::Relaxed),
            decode_errors: self.shared.decode_errors.load(Ordering::Relaxed),
            dedup_dropped: self.shared.dedup_dropped.load(Ordering::Relaxed),
            lane_restarts: self.shared.lane_restarts.load(Ordering::Relaxed),
        }
    }

    /// Stop every stage thread and join them.
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        let threads: Vec<_> = self.threads.lock().drain(..).collect();
        for t in threads {
            let _ = t.join();
        }
    }

    /// Block until `received` reaches `n` or `timeout` elapses.
    /// Returns whether the target was reached.
    pub fn wait_received(&self, n: u64, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while std::time::Instant::now() < deadline {
            if self.shared.received.load(Ordering::Relaxed) >= n {
                return true;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        false
    }
}

/// The aggregator telemetry scope, labeled `shard=<k>` when this
/// pipeline is one shard of a partitioned tier. The unsharded scope is
/// label-free, so K=1 metric ids are byte-identical to every prior
/// release.
fn scoped(shard: Option<usize>) -> fsmon_telemetry::Scope {
    let scope = fsmon_telemetry::root().scope("aggregator");
    match shard {
        Some(k) => scope.with_label("shard", k.to_string()),
        None => scope,
    }
}

/// Route a topic to its worker lane. Stable for the process lifetime,
/// so one collector's batches always share a lane (order + highwater
/// exclusivity both depend on this).
fn lane_of(topic: &[u8], lanes: usize) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    h.write(topic);
    (h.finish() as usize) % lanes
}

/// Send on a bounded inter-stage channel, backing off while full and
/// bailing out when the aggregator is stopping (at stop, queued work is
/// abandoned exactly as the SUB queue itself is). Returns whether the
/// message was enqueued.
fn send_or_stop<T>(tx: &Sender<T>, shared: &Shared, msg: T) -> bool {
    let mut msg = msg;
    loop {
        match tx.try_send(msg) {
            Ok(()) => return true,
            Err(TrySendError::Full(m)) => {
                if shared.stop.load(Ordering::Relaxed) {
                    return false;
                }
                msg = m;
                std::thread::sleep(Duration::from_micros(200));
            }
            Err(TrySendError::Disconnected(_)) => return false,
        }
    }
}

/// The demux stage: drain the SUB queue and route each raw frame to a
/// worker lane by topic hash. No decoding happens here — the stage is
/// pure routing so it never becomes the bottleneck.
fn run_demux(lane: Arc<LaneCtx>) {
    let shared = &lane.shared;
    while !shared.stop.load(Ordering::Relaxed) {
        // Crash injection sits at the loop boundary: no message is in
        // hand, so the stage dies with fully consistent state and a
        // respawn resumes from the still-queued SUB messages.
        if lane
            .faults
            .inject(FaultPoint::AggregatorPublishCrash)
            .is_some()
        {
            break;
        }
        let msg = match lane.sub.recv_timeout(Duration::from_millis(20)) {
            Ok(msg) => msg,
            Err(_) => continue,
        };
        // Fleet registry snapshots are folded here rather than routed:
        // they are rare (one JSON frame per collector every few dozen
        // batches) and keeping the map single-writer avoids lane races.
        if msg.topic().starts_with(b"telemetry.") {
            ingest_fleet_snapshot(&lane, &msg);
            continue;
        }
        let slot = lane_of(msg.topic(), lane.lanes);
        send_or_stop(&lane.work_tx[slot], shared, msg);
    }
    lane.shared.demux_alive.store(false, Ordering::Relaxed);
}

/// Fold one `telemetry.<source>` frame into the fleet view: parse the
/// JSON registry snapshot and keep it as the source's latest (snapshots
/// are cumulative, so last-write per source + fleet merge across
/// sources is exact). Malformed frames count as decode errors.
fn ingest_fleet_snapshot(lane: &LaneCtx, msg: &Message) {
    let parsed = msg
        .part(1)
        .and_then(|payload| std::str::from_utf8(payload).ok())
        .and_then(|text| fsmon_telemetry::export::parse_json(text).ok());
    match parsed {
        Some(snap) => {
            let source = String::from_utf8_lossy(msg.topic()).into_owned();
            lane.fleet.lock().insert(source, snap);
            lane.t_fleet_snapshots.inc();
        }
        None => {
            lane.shared.decode_errors.fetch_add(1, Ordering::Relaxed);
            lane.t_decode_errors.inc();
        }
    }
}

/// A worker lane: decode, dedup against the topic's changelog
/// highwater, and pre-encode the survivors for the sequencer.
fn run_worker_lane(lane: Arc<LaneCtx>, slot: usize) {
    let shared = &lane.shared;
    while !shared.stop.load(Ordering::Relaxed) {
        if lane
            .faults
            .inject(FaultPoint::AggregatorPublishCrash)
            .is_some()
        {
            break;
        }
        let msg = match lane.work_rx[slot].recv_timeout(Duration::from_millis(20)) {
            Ok(msg) => msg,
            Err(_) => continue,
        };
        // Zero-copy payload: a refcounted handle into the frame's
        // storage, not a fresh allocation per batch.
        let Some(payload) = msg.part_bytes(1) else {
            shared.decode_errors.fetch_add(1, Ordering::Relaxed);
            lane.t_decode_errors.inc();
            continue;
        };
        let mut events = match decode_event_batch(&payload) {
            Ok(events) => events,
            Err(_) => {
                shared.decode_errors.fetch_add(1, Ordering::Relaxed);
                lane.t_decode_errors.inc();
                continue;
            }
        };
        // Sampled traces ride as a fourth frame (TLV-framed); untraced
        // batches have no part 3 and pay nothing here. Stamp the ingest
        // stage on arrival.
        let mut traces: Vec<TraceRecord> = msg
            .part(3)
            .and_then(|frame| find_tlv(frame, TLV_TRACE).ok().flatten())
            .and_then(TraceRecord::decode_all)
            .unwrap_or_default();
        if !traces.is_empty() && lane.tracer.enabled() {
            let ingest_ns = lane.tracer.now_ns();
            for rec in &mut traces {
                rec.stamp(TraceStage::Ingest, ingest_ns);
            }
        }
        // Dedup by changelog index (frame 2, when present): a restarted
        // collector resumes from its durable cursor, so events at or
        // below this topic's highwater were already stamped and
        // forwarded by a previous incarnation. A whole batch below the
        // highwater is dropped outright; a straddling batch (the
        // restart read more records than the crashed incarnation's
        // final publish) is trimmed to the unseen suffix using the
        // per-event indices.
        if let Some(range) = decode_range(msg.part(2)) {
            let mut hw = shared.highwater.lock();
            let entry = hw.entry(msg.topic().to_vec()).or_insert(0);
            let before = events.len();
            if range.last <= *entry {
                events.clear();
                traces.clear();
            } else if range.first <= *entry {
                if let Some(indices) = range.indices.filter(|idx| idx.len() == before) {
                    let hw_val = *entry;
                    let mut it = indices.iter();
                    let mut kept: Vec<u32> = Vec::with_capacity(before);
                    let mut pos = 0u32;
                    events.retain(|_| {
                        let keep = *it.next().expect("len checked") > hw_val;
                        if keep {
                            kept.push(pos);
                        }
                        pos += 1;
                        keep
                    });
                    // Trace records index their batch by position, so a
                    // trim must drop trimmed traces and remap survivors.
                    trace::retain_traces(&mut traces, &kept);
                }
                // Without per-event indices the whole straddling batch
                // is accepted: at-least-once favors no-loss, and the
                // consumer's id-based dedup has no gap to misread.
            }
            *entry = (*entry).max(range.last);
            let dropped = (before - events.len()) as u64;
            if dropped > 0 {
                shared.dedup_dropped.fetch_add(dropped, Ordering::Relaxed);
                lane.t_dedup_dropped.add(dropped);
            }
            if events.is_empty() {
                continue;
            }
        }
        let n = events.len() as u64;
        shared.received.fetch_add(n, Ordering::Relaxed);
        lane.t_received.add(n);
        // Pre-encode the frame now, on the concurrent side of the
        // pipeline; the sequencer only patches ids into place.
        let mut buf = lane.recycle_rx.try_recv().unwrap_or_default();
        let mut id_offsets = Vec::with_capacity(events.len());
        encode_event_batch_offsets(&events, &mut buf, &mut id_offsets);
        send_or_stop(
            &lane.seq_tx,
            shared,
            PreparedBatch {
                buf,
                id_offsets,
                events,
                traces,
            },
        );
    }
    lane.shared.worker_alive[slot].store(false, Ordering::Relaxed);
}

/// The sequencer: the single stage that assigns ids. Ids are stamped
/// here — before both publication and persistence — so a consumer's
/// last-seen id from the live stream addresses the same event in the
/// store (the replay API's contract), and because the same stage
/// publishes in FIFO order, the consumer-visible stream is dense and
/// ordered regardless of how many worker lanes feed it. The store lane
/// appends in stamp order, so its sequence numbers coincide with the
/// stamps.
fn run_sequencer(lane: Arc<LaneCtx>) {
    let shared = &lane.shared;
    // Server-side filter pushdown: one shared subscription index over
    // every registered filter class, rebuilt only when the class set
    // changes. A fresh engine per (re)spawn is correct — class rings
    // and sequences live in the publisher, which survives lane crashes.
    let mut fanout = crate::fanout::FanoutEngine::new(lane.publisher.clone());
    while !shared.stop.load(Ordering::Relaxed) {
        if lane
            .faults
            .inject(FaultPoint::AggregatorPublishCrash)
            .is_some()
        {
            break;
        }
        let mut batch = match lane.seq_rx.recv_timeout(Duration::from_millis(20)) {
            Ok(batch) => batch,
            Err(_) => continue,
        };
        for (ev, off) in batch.events.iter_mut().zip(&batch.id_offsets) {
            let id = shared.next_id.fetch_add(1, Ordering::Relaxed) + 1;
            ev.id = id;
            patch_event_id(&mut batch.buf, *off, id);
        }
        let n = batch.events.len() as u64;
        let frame = batch.buf.split_frozen();
        fanout.fan_out(&batch.events, &batch.id_offsets, &frame);
        let mut parts = vec![bytes::Bytes::from_static(b"events"), frame];
        if !batch.traces.is_empty() {
            // The sequencer is the stage that learns each event's global
            // id — copy it into the trace and stamp the sequence stage,
            // then re-attach the traces for the consumer hop.
            let seq_ns = lane.tracer.now_ns();
            for rec in &mut batch.traces {
                if let Some(ev) = batch.events.get(rec.pos as usize) {
                    rec.event_id = ev.id;
                }
                if lane.tracer.enabled() {
                    rec.stamp(TraceStage::Sequence, seq_ns);
                }
            }
            parts.push(encode_tlv(
                TLV_TRACE,
                &TraceRecord::encode_all(&batch.traces),
            ));
        }
        let _ = lane.publisher.send(Message::from_parts(parts));
        shared.published.fetch_add(n, Ordering::Relaxed);
        lane.t_published.add(n);
        lane.t_lag.set(
            shared.published.load(Ordering::Relaxed) as i64
                - shared.stored.load(Ordering::Relaxed) as i64,
        );
        // Hand the (cleared, capacity-retaining) buffer back to the
        // workers; if the pool is full it's simply dropped.
        let _ = lane.recycle_tx.try_send(batch.buf);
        send_or_stop(&lane.store_tx, shared, (batch.events, batch.traces));
    }
    lane.shared.sequencer_alive.store(false, Ordering::Relaxed);
}

/// The persistence lane: group-commits every event to the reliable
/// store, riding out transient failures with the shared retry policy.
/// An event is never skipped — the store is the replay source consumers
/// heal from, so durability here is the loss-free contract. On a
/// partial batch failure the already-appended prefix is measured from
/// the store's own counters and only the suffix is retried, keeping
/// appends exactly-once.
fn run_store_lane(lane: Arc<LaneCtx>) {
    let shared = &lane.shared;
    loop {
        if lane
            .faults
            .inject(FaultPoint::AggregatorStoreCrash)
            .is_some()
        {
            break;
        }
        match lane.store_rx.recv_timeout(Duration::from_millis(20)) {
            Ok((first, first_traces)) => {
                // Group commit: fold everything already queued into one
                // append_batch call so the store amortizes per-append
                // locking and the lag drains in large strides.
                let mut group = first;
                let mut traces = first_traces;
                while group.len() < lane.store_group_max {
                    match lane.store_rx.try_recv() {
                        Ok((more, more_traces)) => {
                            group.extend(more);
                            traces.extend(more_traces);
                        }
                        Err(_) => break,
                    }
                }
                let mut offset = 0;
                let mut backoff = lane.retry.backoff();
                while offset < group.len() {
                    // One durable commit covers at most store_group_max
                    // events: a batch larger than the cap (the sequencer
                    // publishes in its own strides) is split so the cap
                    // really bounds the commit, not just the folding.
                    let end = (offset + lane.store_group_max).min(group.len());
                    let before = lane.store.stats().appended;
                    match lane.store.append_batch(&group[offset..end]) {
                        Ok(_) => {
                            let n = (end - offset) as u64;
                            shared.stored.fetch_add(n, Ordering::Relaxed);
                            lane.t_stored.add(n);
                            offset = end;
                        }
                        Err(_) => {
                            // The store appends a prefix then fails;
                            // resume from the measured prefix so no
                            // event is double-written.
                            let done = (lane.store.stats().appended - before) as usize;
                            if done > 0 {
                                shared.stored.fetch_add(done as u64, Ordering::Relaxed);
                                lane.t_stored.add(done as u64);
                                offset += done;
                            }
                            if shared.stop.load(Ordering::Relaxed) {
                                break;
                            }
                            lane.t_store_retries.inc();
                            // Exhausting one backoff schedule starts
                            // another: persistence never gives up on an
                            // event while the pipeline runs.
                            let sleep = backoff.next().unwrap_or_else(|| {
                                backoff = lane.retry.backoff();
                                lane.retry.cap
                            });
                            std::thread::sleep(sleep);
                        }
                    }
                }
                lane.t_lag.set(
                    shared.published.load(Ordering::Relaxed) as i64
                        - shared.stored.load(Ordering::Relaxed) as i64,
                );
                // Traced events in a fully committed group get their
                // store-commit stage stamped and folded here — the only
                // stage the consumer hop never sees (the store lane is
                // a branch, not a link, of the delivery path).
                if offset == group.len() && !traces.is_empty() && lane.tracer.enabled() {
                    let commit_ns = lane.tracer.now_ns();
                    for rec in &mut traces {
                        rec.stamp(TraceStage::StoreCommit, commit_ns);
                        trace::fold_stage(rec, TraceStage::StoreCommit);
                    }
                }
            }
            Err(_) => {
                if shared.stop.load(Ordering::Relaxed) {
                    break;
                }
            }
        }
    }
    lane.shared.store_alive.store(false, Ordering::Relaxed);
}

/// A batch's changelog index range, plus (optionally) the index of the
/// record behind each event.
struct BatchRange {
    first: u64,
    last: u64,
    indices: Option<Vec<u64>>,
}

/// Parse a `u64 first | u64 last | u64 per-event-index…` frame. The
/// per-event list is optional (a bare 16-byte range is valid).
fn decode_range(frame: Option<&[u8]>) -> Option<BatchRange> {
    let frame = frame?;
    if frame.len() < 16 || frame.len() % 8 != 0 {
        return None;
    }
    let first = u64::from_be_bytes(frame[..8].try_into().ok()?);
    let last = u64::from_be_bytes(frame[8..16].try_into().ok()?);
    let indices = if frame.len() > 16 {
        Some(
            frame[16..]
                .chunks_exact(8)
                .map(|c| u64::from_be_bytes(c.try_into().expect("chunks_exact(8)")))
                .collect(),
        )
    } else {
        None
    };
    Some(BatchRange {
        first,
        last,
        indices,
    })
}

/// A SUB socket pre-wired the way consumers attach to the aggregator.
pub fn consumer_socket(ctx: &Context, endpoint: &str) -> Result<SubSocket, fsmon_mq::MqError> {
    let sub = ctx.subscriber();
    sub.connect(endpoint)?;
    sub.subscribe(b"events");
    Ok(sub)
}

/// A PUB socket pre-wired the way collectors publish to the aggregator.
pub fn collector_socket(ctx: &Context, endpoint: &str) -> Result<PubSocket, fsmon_mq::MqError> {
    let publisher = ctx.publisher();
    publisher.bind(endpoint)?;
    Ok(publisher)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmon_events::{encode_event_batch, EventKind, StandardEvent};
    use fsmon_store::MemStore;

    fn batch_msg(events: &[StandardEvent]) -> Message {
        Message::from_parts(vec![
            bytes::Bytes::from_static(b"mdt0"),
            encode_event_batch(events),
        ])
    }

    fn ranged_msg(events: &[StandardEvent], first: u64, last: u64) -> Message {
        let mut meta = Vec::with_capacity(16);
        meta.extend_from_slice(&first.to_be_bytes());
        meta.extend_from_slice(&last.to_be_bytes());
        Message::from_parts(vec![
            bytes::Bytes::from_static(b"mdt0"),
            encode_event_batch(events),
            bytes::Bytes::from(meta),
        ])
    }

    #[test]
    fn aggregates_publishes_and_stores() {
        let ctx = Context::new();
        let collector_pub = collector_socket(&ctx, "inproc://col0").unwrap();
        let store = Arc::new(MemStore::new());
        let agg = Aggregator::start(
            &ctx,
            &["inproc://col0".to_string()],
            "inproc://agg",
            store.clone(),
        )
        .unwrap();
        let consumer = consumer_socket(&ctx, "inproc://agg").unwrap();

        let events: Vec<StandardEvent> = (0..5)
            .map(|i| StandardEvent::new(EventKind::Create, "/mnt/lustre", format!("f{i}")))
            .collect();
        collector_pub.send(batch_msg(&events)).unwrap();

        assert!(agg.wait_received(5, Duration::from_secs(2)));
        let msg = consumer.recv_timeout(Duration::from_secs(2)).unwrap();
        let got = decode_event_batch(&bytes::Bytes::copy_from_slice(msg.part(1).unwrap())).unwrap();
        assert_eq!(got.len(), 5);

        // The store lane catches up.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while store.stats().appended < 5 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(store.stats().appended, 5);
        let stats = agg.stats();
        assert_eq!(stats.received, 5);
        assert_eq!(stats.published, 5);
        agg.stop();
    }

    #[test]
    fn aggregates_from_multiple_collectors() {
        let ctx = Context::new();
        let p0 = collector_socket(&ctx, "inproc://c0").unwrap();
        let p1 = collector_socket(&ctx, "inproc://c1").unwrap();
        let store = Arc::new(MemStore::new());
        let agg = Aggregator::start(
            &ctx,
            &["inproc://c0".to_string(), "inproc://c1".to_string()],
            "inproc://agg2",
            store,
        )
        .unwrap();
        let ev = |p: &str| vec![StandardEvent::new(EventKind::Create, "/r", p)];
        p0.send(batch_msg(&ev("a"))).unwrap();
        p1.send(Message::from_parts(vec![
            bytes::Bytes::from_static(b"mdt1"),
            encode_event_batch(&ev("b")),
        ]))
        .unwrap();
        assert!(agg.wait_received(2, Duration::from_secs(2)));
        agg.stop();
    }

    #[test]
    fn malformed_frames_counted_not_fatal() {
        let ctx = Context::new();
        let publisher = collector_socket(&ctx, "inproc://bad").unwrap();
        let store = Arc::new(MemStore::new());
        let agg =
            Aggregator::start(&ctx, &["inproc://bad".to_string()], "inproc://agg3", store).unwrap();
        publisher
            .send(Message::from_parts(vec![
                bytes::Bytes::from_static(b"mdt0"),
                bytes::Bytes::from_static(b"not a batch"),
            ]))
            .unwrap();
        // A good frame afterwards still flows.
        publisher
            .send(batch_msg(&[StandardEvent::new(
                EventKind::Create,
                "/r",
                "ok",
            )]))
            .unwrap();
        assert!(agg.wait_received(1, Duration::from_secs(2)));
        assert!(agg.stats().decode_errors >= 1);
        agg.stop();
    }

    #[test]
    fn replayed_changelog_ranges_are_deduplicated() {
        let ctx = Context::new();
        let publisher = collector_socket(&ctx, "inproc://dedup").unwrap();
        let store = Arc::new(MemStore::new());
        let agg = Aggregator::start(
            &ctx,
            &["inproc://dedup".to_string()],
            "inproc://agg4",
            store.clone(),
        )
        .unwrap();
        let ev = |p: &str| StandardEvent::new(EventKind::Create, "/r", p);
        publisher
            .send(ranged_msg(&[ev("a"), ev("b")], 1, 2))
            .unwrap();
        assert!(agg.wait_received(2, Duration::from_secs(2)));
        // A restarted collector re-publishes the same range: dropped.
        publisher
            .send(ranged_msg(&[ev("a"), ev("b")], 1, 2))
            .unwrap();
        // A fresh range flows.
        publisher.send(ranged_msg(&[ev("c")], 3, 3)).unwrap();
        assert!(agg.wait_received(3, Duration::from_secs(2)));
        let stats = agg.stats();
        assert_eq!(stats.received, 3, "duplicate batch not re-counted");
        assert_eq!(stats.dedup_dropped, 2);
        agg.stop();
        assert_eq!(store.stats().appended, 3);
    }

    fn indexed_msg(events: &[StandardEvent], indices: &[u64]) -> Message {
        let first = *indices.first().unwrap();
        let last = *indices.last().unwrap();
        let mut meta = Vec::with_capacity(16 + 8 * indices.len());
        meta.extend_from_slice(&first.to_be_bytes());
        meta.extend_from_slice(&last.to_be_bytes());
        for idx in indices {
            meta.extend_from_slice(&idx.to_be_bytes());
        }
        Message::from_parts(vec![
            bytes::Bytes::from_static(b"mdt0"),
            encode_event_batch(events),
            bytes::Bytes::from(meta),
        ])
    }

    #[test]
    fn straddling_batches_are_trimmed_to_the_unseen_suffix() {
        let ctx = Context::new();
        let publisher = collector_socket(&ctx, "inproc://straddle").unwrap();
        let store = Arc::new(MemStore::new());
        let agg = Aggregator::start(
            &ctx,
            &["inproc://straddle".to_string()],
            "inproc://agg6",
            store.clone(),
        )
        .unwrap();
        let consumer = consumer_socket(&ctx, "inproc://agg6").unwrap();
        let ev = |p: &str| StandardEvent::new(EventKind::Create, "/r", p);
        publisher
            .send(indexed_msg(&[ev("a"), ev("b")], &[1, 2]))
            .unwrap();
        assert!(agg.wait_received(2, Duration::from_secs(2)));
        // A restarted collector resumed from a stale cursor and read a
        // wider batch: records 1–2 again plus fresh record 3.
        publisher
            .send(indexed_msg(&[ev("a"), ev("b"), ev("c")], &[1, 2, 3]))
            .unwrap();
        assert!(agg.wait_received(3, Duration::from_secs(2)));
        let stats = agg.stats();
        assert_eq!(stats.received, 3, "only the unseen suffix was accepted");
        assert_eq!(stats.dedup_dropped, 2);
        // The consumer sees a, b, c exactly once, densely stamped.
        let mut got = Vec::new();
        while let Ok(msg) = consumer.recv_timeout(Duration::from_millis(200)) {
            got.extend(
                decode_event_batch(&bytes::Bytes::copy_from_slice(msg.part(1).unwrap())).unwrap(),
            );
        }
        let paths: Vec<&str> = got.iter().map(|e| e.path.as_str()).collect();
        assert_eq!(paths, vec!["/a", "/b", "/c"]);
        assert_eq!(got.iter().map(|e| e.id).collect::<Vec<_>>(), vec![1, 2, 3]);
        agg.stop();
    }

    #[test]
    fn crashed_lanes_respawn_and_resume() {
        use fsmon_faults::{FaultPlan, FaultRule};
        let ctx = Context::new();
        let publisher = collector_socket(&ctx, "inproc://crash").unwrap();
        let store = Arc::new(MemStore::new());
        // One publish-side stage and the store lane each crash once,
        // immediately.
        let faults = FaultPlan::new(7)
            .with(
                FaultPoint::AggregatorPublishCrash,
                FaultRule::per_10k(10_000).limit(1),
            )
            .with(
                FaultPoint::AggregatorStoreCrash,
                FaultRule::per_10k(10_000).limit(1),
            )
            .arm();
        let agg = Aggregator::start_with(
            &ctx,
            &["inproc://crash".to_string()],
            "inproc://agg5",
            store.clone(),
            faults,
            Retry::fast(),
        )
        .unwrap();
        // Let the doomed stages hit their loop tops and die.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while agg.lanes_alive() != (false, false) && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(agg.lanes_alive(), (false, false), "both sides crashed");
        // Events published while stages are down wait in the SUB queue
        // (or an inter-stage channel).
        let ev = StandardEvent::new(EventKind::Create, "/r", "while-down");
        publisher.send(batch_msg(&[ev])).unwrap();
        assert_eq!(agg.respawn_dead_lanes(), 2);
        assert!(agg.wait_received(1, Duration::from_secs(2)));
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while store.stats().appended < 1 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(store.stats().appended, 1, "nothing lost across restart");
        assert_eq!(agg.stats().lane_restarts, 2);
        agg.stop();
    }

    /// Observability invariant: trace records attached by a collector
    /// survive the aggregator's dedup trim (positions remapped, trimmed
    /// traces dropped) and the sequencer's id patching (each trace
    /// learns its event's dense id), while the collector-stamped stages
    /// pass through byte-identically.
    #[test]
    fn trace_records_survive_trim_and_id_patching() {
        use fsmon_telemetry::{TraceRecord, TraceStage, Tracer};
        let ctx = Context::new();
        let publisher = collector_socket(&ctx, "inproc://trace-src").unwrap();
        let store = Arc::new(MemStore::new());
        // A fixed clock makes the aggregator's own stamps predictable.
        let tracer = Tracer::new(10_000, Arc::new(|| 7_000));
        let agg = Aggregator::start_traced(
            &ctx,
            &["inproc://trace-src".to_string()],
            "inproc://agg-trace",
            store.clone(),
            Faults::none(),
            Retry::fast(),
            1,
            tracer,
        )
        .unwrap();
        let consumer = consumer_socket(&ctx, "inproc://agg-trace").unwrap();
        let ev = |p: &str| StandardEvent::new(EventKind::Create, "/r", p);
        let traced_msg = |events: &[StandardEvent], indices: &[u64], traces: &[TraceRecord]| {
            let mut meta = Vec::with_capacity(16 + 8 * indices.len());
            meta.extend_from_slice(&indices.first().unwrap().to_be_bytes());
            meta.extend_from_slice(&indices.last().unwrap().to_be_bytes());
            for idx in indices {
                meta.extend_from_slice(&idx.to_be_bytes());
            }
            Message::from_parts(vec![
                bytes::Bytes::from_static(b"mdt0"),
                encode_event_batch(events),
                bytes::Bytes::from(meta),
                encode_tlv(TLV_TRACE, &TraceRecord::encode_all(traces)),
            ])
        };
        let collector_trace = |pos: u32, base: u64| {
            let mut rec = TraceRecord::new(pos, 3);
            rec.stamp(TraceStage::Read, base);
            rec.stamp(TraceStage::Resolve, base + 10);
            rec.stamp(TraceStage::Publish, base + 20);
            rec
        };
        // Batch 1: records 1–2, both positions traced.
        publisher
            .send(traced_msg(
                &[ev("a"), ev("b")],
                &[1, 2],
                &[collector_trace(0, 100), collector_trace(1, 200)],
            ))
            .unwrap();
        assert!(agg.wait_received(2, Duration::from_secs(2)));
        let msg = consumer.recv_timeout(Duration::from_secs(2)).unwrap();
        let traces = find_tlv(msg.part(2).unwrap(), TLV_TRACE)
            .unwrap()
            .and_then(TraceRecord::decode_all)
            .unwrap();
        assert_eq!(traces.len(), 2);
        assert_eq!(
            traces.iter().map(|t| t.event_id).collect::<Vec<_>>(),
            vec![1, 2],
            "sequencer ids patched into the traces"
        );
        // Collector stamps pass through byte-identically; the
        // aggregator added ingest + sequence from its fixed clock.
        assert_eq!(traces[0].stamps[TraceStage::Read as usize], 100);
        assert_eq!(traces[0].stamps[TraceStage::Resolve as usize], 110);
        assert_eq!(traces[0].stamps[TraceStage::Publish as usize], 120);
        assert_eq!(traces[0].stamps[TraceStage::Ingest as usize], 7_000);
        assert_eq!(traces[0].stamps[TraceStage::Sequence as usize], 7_000);
        // Batch 2 straddles the highwater: records 1–2 replayed plus
        // fresh record 3, traced at positions 0 and 2. The replayed
        // prefix is trimmed, so only the pos-2 trace survives — at
        // position 0 of the trimmed batch, with record 3's new id.
        publisher
            .send(traced_msg(
                &[ev("a"), ev("b"), ev("c")],
                &[1, 2, 3],
                &[collector_trace(0, 300), collector_trace(2, 400)],
            ))
            .unwrap();
        assert!(agg.wait_received(3, Duration::from_secs(2)));
        let msg = consumer.recv_timeout(Duration::from_secs(2)).unwrap();
        let events =
            decode_event_batch(&bytes::Bytes::copy_from_slice(msg.part(1).unwrap())).unwrap();
        assert_eq!(events.len(), 1, "replayed prefix trimmed");
        assert_eq!(events[0].id, 3);
        let traces = find_tlv(msg.part(2).unwrap(), TLV_TRACE)
            .unwrap()
            .and_then(TraceRecord::decode_all)
            .unwrap();
        assert_eq!(traces.len(), 1, "trimmed event's trace dropped");
        assert_eq!(traces[0].pos, 0, "surviving trace remapped");
        assert_eq!(traces[0].event_id, 3);
        assert_eq!(traces[0].stamps[TraceStage::Read as usize], 400);
        agg.stop();
    }

    /// Restart continuity (whole-process recovery): a second aggregator
    /// started over the first one's store resumes the dense id stream
    /// where the persisted sequence left off.
    #[test]
    fn restarted_aggregator_resumes_ids_from_the_store() {
        let ctx = Context::new();
        let publisher = collector_socket(&ctx, "inproc://resume-src").unwrap();
        let store = Arc::new(MemStore::new());
        let ev = |p: &str| StandardEvent::new(EventKind::Create, "/r", p);
        let agg = Aggregator::start(
            &ctx,
            &["inproc://resume-src".to_string()],
            "inproc://agg-resume1",
            store.clone(),
        )
        .unwrap();
        publisher.send(batch_msg(&[ev("a"), ev("b")])).unwrap();
        assert!(agg.wait_received(2, Duration::from_secs(2)));
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while store.stats().appended < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        agg.stop(); // the "crash": only the store survives
        let agg2 = Aggregator::start(
            &ctx,
            &["inproc://resume-src".to_string()],
            "inproc://agg-resume2",
            store.clone(),
        )
        .unwrap();
        publisher.send(batch_msg(&[ev("c")])).unwrap();
        assert!(agg2.wait_received(1, Duration::from_secs(2)));
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while store.stats().appended < 3 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let replay = store.get_since(0, 10).unwrap();
        assert_eq!(
            replay.iter().map(|e| e.id).collect::<Vec<_>>(),
            vec![1, 2, 3],
            "id stream continues across the restart, no reuse, no gap"
        );
        agg2.stop();
    }

    /// Tentpole invariant: with several worker lanes racing, the
    /// sequencer still emits one dense, ordered id stream, each topic's
    /// events keep their arrival order, and the store's sequence
    /// numbers coincide with the stamps.
    #[test]
    fn sharded_lanes_stamp_dense_ordered_ids() {
        let ctx = Context::new();
        let p0 = collector_socket(&ctx, "inproc://lanes0").unwrap();
        let p1 = collector_socket(&ctx, "inproc://lanes1").unwrap();
        let store = Arc::new(MemStore::new());
        let agg = Aggregator::start_tuned(
            &ctx,
            &["inproc://lanes0".to_string(), "inproc://lanes1".to_string()],
            "inproc://agg7",
            store.clone(),
            Faults::none(),
            Retry::fast(),
            4,
        )
        .unwrap();
        let consumer = consumer_socket(&ctx, "inproc://agg7").unwrap();
        let ev = |root: &str, name: String| StandardEvent::new(EventKind::Create, root, name);
        for i in 0..10u32 {
            p0.send(Message::from_parts(vec![
                bytes::Bytes::from_static(b"mdt0"),
                encode_event_batch(&[
                    ev("/r0", format!("a{}", 2 * i)),
                    ev("/r0", format!("a{}", 2 * i + 1)),
                ]),
            ]))
            .unwrap();
            p1.send(Message::from_parts(vec![
                bytes::Bytes::from_static(b"mdt1"),
                encode_event_batch(&[
                    ev("/r1", format!("b{}", 2 * i)),
                    ev("/r1", format!("b{}", 2 * i + 1)),
                ]),
            ]))
            .unwrap();
        }
        assert!(agg.wait_received(40, Duration::from_secs(2)));
        let mut got = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while got.len() < 40 && std::time::Instant::now() < deadline {
            if let Ok(msg) = consumer.recv_timeout(Duration::from_millis(200)) {
                got.extend(
                    decode_event_batch(&bytes::Bytes::copy_from_slice(msg.part(1).unwrap()))
                        .unwrap(),
                );
            }
        }
        assert_eq!(got.len(), 40);
        // Publish order is id order, and ids are dense from 1.
        assert_eq!(
            got.iter().map(|e| e.id).collect::<Vec<_>>(),
            (1..=40).collect::<Vec<u64>>()
        );
        // Each topic's events keep their per-collector arrival order.
        for (root, prefix) in [("/r0", "a"), ("/r1", "b")] {
            let names: Vec<String> = got
                .iter()
                .filter(|e| e.watch_root == root)
                .map(|e| e.path.trim_start_matches('/').to_string())
                .collect();
            let want: Vec<String> = (0..20).map(|i| format!("{prefix}{i}")).collect();
            assert_eq!(names, want, "topic {root} reordered");
        }
        // The store lane catches up and its seqs coincide with stamps.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while store.stats().appended < 40 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(store.stats().appended, 40);
        let replay = store.get_since(0, 100).unwrap();
        assert_eq!(
            replay.iter().map(|e| e.id).collect::<Vec<_>>(),
            (1..=40).collect::<Vec<u64>>()
        );
        agg.stop();
    }
}
