//! The MGS aggregator.
//!
//! "Collectors use a publisher-subscriber message queue to report events
//! to an aggregator. When an event arrives … it is placed in a
//! processing queue. The aggregator service is multithreaded, where one
//! thread is responsible for publishing the aggregated file system
//! events to the subscribed consumers, and the other thread stores the
//! events into a local database to enable fault tolerance"
//! (§IV Aggregation).

use crossbeam::channel::{bounded, Receiver, Sender};
use fsmon_events::{decode_event_batch, encode_event_batch, StandardEvent};
use fsmon_mq::{Context, Message, PubSocket, SubSocket};
use fsmon_store::EventStore;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Aggregator throughput counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct AggregatorStats {
    /// Events received from collectors.
    pub received: u64,
    /// Events published to consumers.
    pub published: u64,
    /// Events persisted to the reliable store.
    pub stored: u64,
    /// Malformed frames discarded.
    pub decode_errors: u64,
}

struct Shared {
    received: AtomicU64,
    published: AtomicU64,
    stored: AtomicU64,
    decode_errors: AtomicU64,
    stop: AtomicBool,
}

/// The aggregator service.
pub struct Aggregator {
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
    store: Arc<dyn EventStore>,
    consumer_endpoint: String,
}

impl Aggregator {
    /// Start an aggregator: subscribe to every endpoint in
    /// `collector_endpoints`, publish aggregated events at
    /// `consumer_endpoint`, and persist to `store`.
    pub fn start(
        ctx: &Context,
        collector_endpoints: &[String],
        consumer_endpoint: &str,
        store: Arc<dyn EventStore>,
    ) -> Result<Aggregator, fsmon_mq::MqError> {
        let sub = ctx.subscriber();
        for ep in collector_endpoints {
            sub.connect(ep)?;
        }
        sub.subscribe(b"mdt");
        let publisher = ctx.publisher();
        publisher.bind(consumer_endpoint)?;
        let consumer_endpoint_actual = match publisher.local_addr() {
            Some(addr) => format!("tcp://{addr}"),
            None => consumer_endpoint.to_string(),
        };

        let shared = Arc::new(Shared {
            received: AtomicU64::new(0),
            published: AtomicU64::new(0),
            stored: AtomicU64::new(0),
            decode_errors: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        });

        let agg_scope = fsmon_telemetry::root().scope("aggregator");
        let t_received = agg_scope.counter("received_total");
        let t_published = agg_scope.counter("published_total");
        let t_stored = agg_scope.counter("stored_total");
        let t_decode_errors = agg_scope.counter("decode_errors_total");
        // Events published to live consumers but not yet persisted —
        // the publish-lane vs store-lane lag.
        let t_lag = agg_scope.gauge("store_lag");

        // The store lane: the receive/publish thread forwards every
        // event here so persistence cannot stall publication.
        let (store_tx, store_rx): (Sender<Vec<StandardEvent>>, Receiver<Vec<StandardEvent>>) =
            bounded(1 << 14);

        let mut threads = Vec::new();
        // Thread 1: receive from collectors, stamp sequence ids,
        // publish to consumers, hand off to the store lane. Ids are
        // assigned here — before both publication and persistence — so
        // a consumer's last-seen id from the live stream addresses the
        // same event in the store (the replay API's contract). The
        // store lane appends in stamp order, so its sequence numbers
        // coincide with the stamps.
        {
            let shared = shared.clone();
            let store_tx = store_tx.clone();
            let (t_received, t_published, t_decode_errors, t_lag) = (
                t_received,
                t_published,
                t_decode_errors.clone(),
                t_lag.clone(),
            );
            let mut next_id = 0u64;
            threads.push(
                std::thread::Builder::new()
                    .name("aggregator-publish".into())
                    .spawn(move || {
                        while !shared.stop.load(Ordering::Relaxed) {
                            match sub.recv_timeout(Duration::from_millis(20)) {
                                Ok(msg) => {
                                    let Some(payload) = msg.part(1) else {
                                        shared.decode_errors.fetch_add(1, Ordering::Relaxed);
                                        t_decode_errors.inc();
                                        continue;
                                    };
                                    let payload = bytes::Bytes::copy_from_slice(payload);
                                    match decode_event_batch(&payload) {
                                        Ok(mut events) => {
                                            for ev in &mut events {
                                                next_id += 1;
                                                ev.id = next_id;
                                            }
                                            let events = events;
                                            let n = events.len() as u64;
                                            shared.received.fetch_add(n, Ordering::Relaxed);
                                            t_received.add(n);
                                            let out = Message::from_parts(vec![
                                                bytes::Bytes::from_static(b"events"),
                                                encode_event_batch(&events),
                                            ]);
                                            let _ = publisher.send(out);
                                            shared.published.fetch_add(n, Ordering::Relaxed);
                                            t_published.add(n);
                                            t_lag.set(
                                                shared.published.load(Ordering::Relaxed) as i64
                                                    - shared.stored.load(Ordering::Relaxed) as i64,
                                            );
                                            let _ = store_tx.send(events);
                                        }
                                        Err(_) => {
                                            shared.decode_errors.fetch_add(1, Ordering::Relaxed);
                                            t_decode_errors.inc();
                                        }
                                    }
                                }
                                Err(_) => continue,
                            }
                        }
                    })
                    .expect("spawn aggregator publish thread"),
            );
        }
        // Thread 2: persist to the reliable event store.
        {
            let shared = shared.clone();
            let store = store.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("aggregator-store".into())
                    .spawn(move || loop {
                        match store_rx.recv_timeout(Duration::from_millis(20)) {
                            Ok(events) => {
                                for ev in &events {
                                    if store.append(ev).is_ok() {
                                        shared.stored.fetch_add(1, Ordering::Relaxed);
                                        t_stored.inc();
                                    }
                                }
                                t_lag.set(
                                    shared.published.load(Ordering::Relaxed) as i64
                                        - shared.stored.load(Ordering::Relaxed) as i64,
                                );
                            }
                            Err(_) => {
                                if shared.stop.load(Ordering::Relaxed) {
                                    break;
                                }
                            }
                        }
                    })
                    .expect("spawn aggregator store thread"),
            );
        }
        drop(store_tx);
        Ok(Aggregator {
            shared,
            threads,
            store,
            consumer_endpoint: consumer_endpoint_actual,
        })
    }

    /// The endpoint consumers should connect to (resolved to the real
    /// port for `tcp://…:0` binds).
    pub fn consumer_endpoint(&self) -> &str {
        &self.consumer_endpoint
    }

    /// The reliable event store (the historic-events API surface).
    pub fn store(&self) -> &Arc<dyn EventStore> {
        &self.store
    }

    /// Counters so far.
    pub fn stats(&self) -> AggregatorStats {
        AggregatorStats {
            received: self.shared.received.load(Ordering::Relaxed),
            published: self.shared.published.load(Ordering::Relaxed),
            stored: self.shared.stored.load(Ordering::Relaxed),
            decode_errors: self.shared.decode_errors.load(Ordering::Relaxed),
        }
    }

    /// Stop both worker threads and join them.
    pub fn stop(mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Block until `received` reaches `n` or `timeout` elapses.
    /// Returns whether the target was reached.
    pub fn wait_received(&self, n: u64, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while std::time::Instant::now() < deadline {
            if self.shared.received.load(Ordering::Relaxed) >= n {
                return true;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        false
    }
}

/// A SUB socket pre-wired the way consumers attach to the aggregator.
pub fn consumer_socket(ctx: &Context, endpoint: &str) -> Result<SubSocket, fsmon_mq::MqError> {
    let sub = ctx.subscriber();
    sub.connect(endpoint)?;
    sub.subscribe(b"events");
    Ok(sub)
}

/// A PUB socket pre-wired the way collectors publish to the aggregator.
pub fn collector_socket(ctx: &Context, endpoint: &str) -> Result<PubSocket, fsmon_mq::MqError> {
    let publisher = ctx.publisher();
    publisher.bind(endpoint)?;
    Ok(publisher)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmon_events::{EventKind, StandardEvent};
    use fsmon_store::MemStore;

    fn batch_msg(events: &[StandardEvent]) -> Message {
        Message::from_parts(vec![
            bytes::Bytes::from_static(b"mdt0"),
            encode_event_batch(events),
        ])
    }

    #[test]
    fn aggregates_publishes_and_stores() {
        let ctx = Context::new();
        let collector_pub = collector_socket(&ctx, "inproc://col0").unwrap();
        let store = Arc::new(MemStore::new());
        let agg = Aggregator::start(
            &ctx,
            &["inproc://col0".to_string()],
            "inproc://agg",
            store.clone(),
        )
        .unwrap();
        let consumer = consumer_socket(&ctx, "inproc://agg").unwrap();

        let events: Vec<StandardEvent> = (0..5)
            .map(|i| StandardEvent::new(EventKind::Create, "/mnt/lustre", format!("f{i}")))
            .collect();
        collector_pub.send(batch_msg(&events)).unwrap();

        assert!(agg.wait_received(5, Duration::from_secs(2)));
        let msg = consumer.recv_timeout(Duration::from_secs(2)).unwrap();
        let got = decode_event_batch(&bytes::Bytes::copy_from_slice(msg.part(1).unwrap())).unwrap();
        assert_eq!(got.len(), 5);

        // The store lane catches up.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while store.stats().appended < 5 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(store.stats().appended, 5);
        let stats = agg.stats();
        assert_eq!(stats.received, 5);
        assert_eq!(stats.published, 5);
        agg.stop();
    }

    #[test]
    fn aggregates_from_multiple_collectors() {
        let ctx = Context::new();
        let p0 = collector_socket(&ctx, "inproc://c0").unwrap();
        let p1 = collector_socket(&ctx, "inproc://c1").unwrap();
        let store = Arc::new(MemStore::new());
        let agg = Aggregator::start(
            &ctx,
            &["inproc://c0".to_string(), "inproc://c1".to_string()],
            "inproc://agg2",
            store,
        )
        .unwrap();
        let ev = |p: &str| vec![StandardEvent::new(EventKind::Create, "/r", p)];
        p0.send(batch_msg(&ev("a"))).unwrap();
        p1.send(Message::from_parts(vec![
            bytes::Bytes::from_static(b"mdt1"),
            encode_event_batch(&ev("b")),
        ]))
        .unwrap();
        assert!(agg.wait_received(2, Duration::from_secs(2)));
        agg.stop();
    }

    #[test]
    fn malformed_frames_counted_not_fatal() {
        let ctx = Context::new();
        let publisher = collector_socket(&ctx, "inproc://bad").unwrap();
        let store = Arc::new(MemStore::new());
        let agg =
            Aggregator::start(&ctx, &["inproc://bad".to_string()], "inproc://agg3", store).unwrap();
        publisher
            .send(Message::from_parts(vec![
                bytes::Bytes::from_static(b"mdt0"),
                bytes::Bytes::from_static(b"not a batch"),
            ]))
            .unwrap();
        // A good frame afterwards still flows.
        publisher
            .send(batch_msg(&[StandardEvent::new(
                EventKind::Create,
                "/r",
                "ok",
            )]))
            .unwrap();
        assert!(agg.wait_received(1, Duration::from_secs(2)));
        assert!(agg.stats().decode_errors >= 1);
        agg.stop();
    }
}
