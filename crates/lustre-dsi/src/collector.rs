//! The per-MDS collector: Changelog extraction and Algorithm 1.
//!
//! Resolution — the `fid2path` stage that dominates collector cost —
//! runs on a fixed worker pool against a sharded, lock-striped LRU
//! ([`ShardedLruCache`]), with batch order restored by changelog index
//! before events are published, so the downstream exactly-once dedup
//! contract (batch index ranges) is unchanged.

use fsmon_core::ShardedLruCache;
use fsmon_events::wire::{encode_tlv, TLV_TRACE};
use fsmon_events::{encode_event_batch_into, EventKind, MonitorSource, StandardEvent};
use fsmon_faults::Retry;
use fsmon_mq::{Message, PubSocket};
use fsmon_telemetry::{TraceRecord, TraceStage, Tracer};
use lustre_sim::changelog::ChangelogUser;
use lustre_sim::namespace::{FsError, MdtHandle};
use lustre_sim::{ChangelogRecord, Fid};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Collector throughput and cache-effectiveness counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct CollectorStats {
    /// Changelog records consumed.
    pub records: u64,
    /// Standardized events produced (RENME yields two).
    pub events: u64,
    /// `fid2path` invocations.
    pub fid2path_calls: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Events that terminated as `ParentDirectoryRemoved`.
    pub parent_dir_removed: u64,
    /// Current cache entry count.
    pub cache_entries: usize,
    /// Estimated collector memory: cache entries × mean mapping size.
    pub cache_memory_bytes: usize,
}

/// Mean bytes per cached `fid → path` mapping (FID key + path string +
/// index overhead), used for the memory columns of Tables VII/VIII.
pub const CACHE_ENTRY_BYTES: usize = 112;

/// Shards in the lock-striped `fid2path` cache. Fixed rather than
/// derived from the pool width so cache behaviour (and per-shard
/// capacity) doesn't shift when the ablation knob changes.
const CACHE_SHARDS: usize = 8;

/// Productive steps between fleet snapshot publications on the
/// collector's `telemetry.mdt<i>` topic.
const FLEET_SNAPSHOT_STEPS: u64 = 16;

/// The per-collector mirror registry behind fleet aggregation. Every
/// in-process collector shares the *global* registry (per-MDT labels
/// keep series apart, but a snapshot of it covers all of them), so the
/// fleet view is built from private registries instead: each collector
/// mirrors its own throughput counters here and periodically publishes
/// a JSON snapshot on `telemetry.mdt<i>` — exactly what a collector on
/// a remote MDS would put on the wire. The aggregator folds these with
/// [`fsmon_telemetry::Snapshot::merge_fleet`].
struct FleetMirror {
    registry: fsmon_telemetry::Registry,
    records: Arc<fsmon_telemetry::Counter>,
    events: Arc<fsmon_telemetry::Counter>,
    traces: Arc<fsmon_telemetry::Counter>,
    backlog: Arc<fsmon_telemetry::Gauge>,
    topic: Vec<u8>,
    steps: u64,
}

impl FleetMirror {
    fn new(mdt_index: u16) -> FleetMirror {
        let registry = fsmon_telemetry::Registry::new();
        let scope = registry
            .scope("fsmon")
            .scope("collector")
            .with_label("mdt", mdt_index.to_string());
        FleetMirror {
            records: scope.counter("records_total"),
            events: scope.counter("events_total"),
            traces: scope.counter("traces_total"),
            backlog: scope.gauge("backlog"),
            topic: format!("telemetry.mdt{mdt_index}").into_bytes(),
            steps: 0,
            registry,
        }
    }

    fn snapshot_json(&self) -> String {
        fsmon_telemetry::export::render_json(&self.registry.snapshot())
    }
}

/// The thread-safe resolution core shared between the collector and
/// its worker pool: Algorithm 1's `processEvent` with all mutable
/// state behind atomics and the sharded cache.
struct Resolver {
    mdt: MdtHandle,
    watch_root: String,
    /// `fid → absolute path` memoization. `None` reproduces the
    /// paper's "without cache" configuration.
    cache: Option<ShardedLruCache<Fid, String>>,
    retry: Retry,
    fid2path_calls: AtomicU64,
    parent_dir_removed: AtomicU64,
    events: AtomicU64,
    t_fid2path: Arc<fsmon_telemetry::Counter>,
    t_fid2path_retries: Arc<fsmon_telemetry::Counter>,
    /// Wall-clock latency of each `fid2path` resolution, including
    /// retries (ns) — the bench harness reads its p99.
    t_resolve_ns: Arc<fsmon_telemetry::Histogram>,
}

/// One chunk of a batch dispatched to the resolver pool.
#[derive(Debug)]
struct ResolveJob {
    seq: usize,
    records: Vec<ChangelogRecord>,
}

/// A resolved chunk: events plus the changelog index behind each one.
struct ResolvedChunk {
    seq: usize,
    events: Vec<StandardEvent>,
    indices: Vec<u64>,
}

/// Fixed pool of resolution workers. One batch is in flight at a time
/// (the collector's step drives it synchronously), so a single shared
/// completion channel suffices; chunk order is restored by `seq`.
struct ResolverPool {
    job_tx: Option<crossbeam::channel::Sender<ResolveJob>>,
    done_rx: crossbeam::channel::Receiver<ResolvedChunk>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ResolverPool {
    fn spawn(resolver: Arc<Resolver>, threads: usize, mdt_index: u16) -> ResolverPool {
        let (job_tx, job_rx) = crossbeam::channel::unbounded::<ResolveJob>();
        let (done_tx, done_rx) = crossbeam::channel::unbounded::<ResolvedChunk>();
        let workers = (0..threads)
            .map(|w| {
                let job_rx = job_rx.clone();
                let done_tx = done_tx.clone();
                let resolver = resolver.clone();
                std::thread::Builder::new()
                    .name(format!("resolver-mdt{mdt_index}-{w}"))
                    .spawn(move || {
                        while let Ok(job) = job_rx.recv() {
                            let mut events = Vec::with_capacity(job.records.len());
                            let mut indices = Vec::with_capacity(job.records.len());
                            for rec in &job.records {
                                let produced = resolver.process_record(rec);
                                indices.extend(std::iter::repeat_n(rec.index, produced.len()));
                                events.extend(produced);
                            }
                            let chunk = ResolvedChunk {
                                seq: job.seq,
                                events,
                                indices,
                            };
                            if done_tx.send(chunk).is_err() {
                                break;
                            }
                        }
                    })
                    .expect("spawn resolver worker")
            })
            .collect();
        ResolverPool {
            job_tx: Some(job_tx),
            done_rx,
            workers,
        }
    }
}

impl Drop for ResolverPool {
    fn drop(&mut self) {
        // Dropping the sender disconnects the job channel; workers exit
        // their recv loop and the pool joins them.
        self.job_tx.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// A collector service for one MDS.
pub struct Collector {
    mdt: MdtHandle,
    user: ChangelogUser,
    resolver: Arc<Resolver>,
    /// Worker pool, spawned lazily on the first step once the thread
    /// count is known (>1). `None` resolves inline on the step thread.
    pool: Option<ResolverPool>,
    resolver_threads: usize,
    last_index: u64,
    batch_size: usize,
    publisher: Option<PubSocket>,
    topic: Vec<u8>,
    /// Sampled per-event tracing; disabled by default.
    tracer: Tracer,
    /// Private registry mirrored to `telemetry.mdt<i>` for the fleet
    /// view.
    fleet: FleetMirror,
    stats: CollectorStats,
    /// Reusable frame buffer for batch encoding (capacity persists
    /// across steps; frames are frozen out by refcounted copy).
    enc_buf: bytes::BytesMut,
    t_records: Arc<fsmon_telemetry::Counter>,
    t_events: Arc<fsmon_telemetry::Counter>,
    /// Changelog read+process latency per step (ns).
    t_read_ns: Arc<fsmon_telemetry::Histogram>,
    /// Changelog clear (purge) latency per step (ns).
    t_purge_ns: Arc<fsmon_telemetry::Histogram>,
    t_read_errors: std::sync::Arc<fsmon_telemetry::Counter>,
    t_purge_errors: std::sync::Arc<fsmon_telemetry::Counter>,
    /// Traces forced by the tail-bias threshold (batch latency crossed
    /// the tracer's threshold while the uniform sampler would skip).
    t_forced_traces: Arc<fsmon_telemetry::Counter>,
}

impl Collector {
    /// Build a collector for `mdt`. `cache_size` of 0 disables the
    /// cache; `publisher`, when given, receives one message per
    /// processed batch on topic `mdt<idx>`.
    pub fn new(
        mdt: MdtHandle,
        watch_root: impl Into<String>,
        cache_size: usize,
        batch_size: usize,
        publisher: Option<PubSocket>,
    ) -> Collector {
        let user = mdt.register_user();
        let topic = format!("mdt{}", mdt.index()).into_bytes();
        let mdt_label = mdt.index().to_string();
        let scope = fsmon_telemetry::root()
            .scope("collector")
            .with_label("mdt", mdt_label.clone());
        let fid2path_scope = fsmon_telemetry::root()
            .scope("fid2path")
            .with_label("mdt", mdt_label);
        // The resolver gets its own handle to the same MDT so it can be
        // shared with pool workers independently of the collector's.
        let resolver_mdt = mdt.fs().mdt(mdt.index());
        let resolver = Resolver {
            mdt: resolver_mdt,
            watch_root: watch_root.into(),
            cache: if cache_size > 0 {
                Some(ShardedLruCache::new(cache_size, CACHE_SHARDS).instrument(&fid2path_scope))
            } else {
                None
            },
            retry: Retry::fast(),
            fid2path_calls: AtomicU64::new(0),
            parent_dir_removed: AtomicU64::new(0),
            events: AtomicU64::new(0),
            t_fid2path: fid2path_scope.counter("calls_total"),
            t_fid2path_retries: scope.counter("fid2path_retries_total"),
            t_resolve_ns: fid2path_scope.histogram("resolve_ns"),
        };
        let fleet = FleetMirror::new(mdt.index());
        Collector {
            mdt,
            user,
            resolver: Arc::new(resolver),
            pool: None,
            resolver_threads: 1,
            last_index: 0,
            batch_size,
            publisher,
            topic,
            tracer: Tracer::disabled(),
            fleet,
            stats: CollectorStats::default(),
            enc_buf: bytes::BytesMut::new(),
            t_records: scope.counter("records_total"),
            t_events: scope.counter("events_total"),
            t_read_ns: scope.histogram("read_ns"),
            t_purge_ns: scope.histogram("purge_ns"),
            t_read_errors: scope.counter("read_errors_total"),
            t_purge_errors: scope.counter("purge_errors_total"),
            t_forced_traces: scope.counter("forced_traces_total"),
        }
    }

    /// Override the retry policy for transient MDS errors. Must be
    /// called before the first step (the resolver is not yet shared
    /// with pool workers).
    pub fn with_retry(mut self, retry: Retry) -> Collector {
        Arc::get_mut(&mut self.resolver)
            .expect("set retry before the collector starts stepping")
            .retry = retry;
        self
    }

    /// Stamp sampled events with per-stage trace timestamps using
    /// `tracer`'s shared clock and sampling policy. Traces ride as an
    /// extra message part behind the batch meta; untraced batches (and
    /// a disabled tracer) add zero bytes to the wire.
    pub fn with_tracer(mut self, tracer: Tracer) -> Collector {
        self.tracer = tracer;
        self
    }

    /// Resolve `fid2path` on a fixed pool of `threads` workers (1 =
    /// inline on the step thread, the default). Batch order is restored
    /// by changelog index after the parallel stage, so published
    /// batches are indistinguishable from serial resolution.
    pub fn with_resolver_threads(mut self, threads: usize) -> Collector {
        self.resolver_threads = threads.max(1);
        self
    }

    /// Rebuild a collector after a crash, resuming from the last
    /// changelog index a previous incarnation had processed. Because
    /// collectors clear the changelog only up to what they published
    /// (`step` processes, publishes, then clears), a restart from the
    /// persisted cursor neither loses nor duplicates records — the
    /// uncleared tail is still retained by the MDT.
    pub fn resume(
        mdt: MdtHandle,
        watch_root: impl Into<String>,
        cache_size: usize,
        batch_size: usize,
        publisher: Option<PubSocket>,
        last_index: u64,
    ) -> Collector {
        let mut c = Collector::new(mdt, watch_root, cache_size, batch_size, publisher);
        c.last_index = last_index;
        // The fresh changelog user must not re-pin records the previous
        // incarnation already consumed.
        c.mdt.clear_changelog(c.user, last_index);
        c
    }

    /// The changelog cursor: index of the last record processed. A
    /// supervisor persists this to support [`resume`](Collector::resume).
    pub fn last_index(&self) -> u64 {
        self.last_index
    }

    /// Deregister this collector's changelog user so its watermark no
    /// longer pins records. Call when decommissioning a collector (a
    /// crashed one is cleaned up by [`resume`]'s clear instead).
    pub fn shutdown(self) {
        self.mdt.deregister_user(self.user);
    }

    /// The MDT this collector drains.
    pub fn mdt_index(&self) -> u16 {
        self.mdt.index()
    }

    /// Counters so far.
    pub fn stats(&self) -> CollectorStats {
        let mut stats = self.stats;
        stats.events = self.resolver.events.load(Ordering::Relaxed);
        stats.fid2path_calls = self.resolver.fid2path_calls.load(Ordering::Relaxed);
        stats.parent_dir_removed = self.resolver.parent_dir_removed.load(Ordering::Relaxed);
        if let Some(cache) = &self.resolver.cache {
            let s = cache.stats();
            stats.cache_hits = s.hits;
            stats.cache_misses = s.misses;
            stats.cache_entries = cache.len();
            stats.cache_memory_bytes = cache.memory_bytes(CACHE_ENTRY_BYTES);
        }
        stats
    }

    /// Records not yet consumed from the Changelog.
    pub fn backlog(&self) -> u64 {
        self.mdt.backlog(self.user)
    }

    /// Algorithm 1's `processEvent`: one Changelog record → one or two
    /// standardized events.
    pub fn process_record(&mut self, rec: &lustre_sim::ChangelogRecord) -> Vec<StandardEvent> {
        self.resolver.process_record(rec)
    }

    /// One collection cycle: read a batch, process it, publish the
    /// standardized events, and purge the Changelog up to the last
    /// consumed record. Returns the events produced.
    ///
    /// If a publisher is attached but has **no live subscriber**, the
    /// cycle holds: publishing would drop the batch on the floor
    /// (PUB/SUB semantics) while the purge destroyed the only other
    /// copy — a silent-loss window during aggregator restarts. Holding
    /// keeps the records in the changelog until the aggregator is back.
    pub fn step(&mut self) -> Vec<StandardEvent> {
        if let Some(publisher) = &self.publisher {
            // Match against the actual topic, not mere connection
            // count: a TCP subscriber exists before its subscription
            // control frames land, and publishing into that window
            // would purge the only copy of the batch.
            if !publisher.has_subscriber_matching(&self.topic) {
                return Vec::new();
            }
        }
        let tracing = self.tracer.enabled() && self.publisher.is_some();
        let t_read = std::time::Instant::now();
        let records = match self
            .mdt
            .try_read_changelog(self.last_index, self.batch_size)
        {
            Ok(records) => records,
            Err(_) => {
                // Transient read failure: nothing was consumed, the
                // cursor is unchanged, and the lane loop simply comes
                // back — the changelog is the retry buffer.
                self.t_read_errors.inc();
                return Vec::new();
            }
        };
        if records.is_empty() {
            return Vec::new();
        }
        let first_index = records.first().expect("non-empty").index;
        let batch_last_index = records.last().expect("non-empty").index;
        let n_records = records.len();
        // Resolve the batch — on the worker pool when configured, with
        // order restored by chunk sequence (chunks are contiguous
        // changelog-index ranges), else inline. `event_indices` carries
        // the changelog index of the record behind each event (RENME
        // yields two events for one record), so the aggregator can drop
        // exactly the re-published events when a restarted collector's
        // batch straddles its dedup highwater.
        let read_ns = if tracing { self.tracer.now_ns() } else { 0 };
        let (events, event_indices) = self.resolve_batch(records);
        // Sample traces by batch position: each sampled event gets a
        // record stamped with the read and resolve stage completions
        // (batch-granular — the stages run per batch, not per event).
        let mut traces: Vec<TraceRecord> = Vec::new();
        if tracing {
            let resolve_ns = self.tracer.now_ns();
            // Tail bias: when this batch's resolve latency crossed the
            // tracer's threshold, force one trace (position 0) even if
            // the uniform sampler skips the whole batch, so slow-path
            // exemplars survive low per_10k rates.
            let force = self
                .tracer
                .tail_exceeded(resolve_ns.saturating_sub(read_ns));
            for pos in 0..events.len() {
                let sampled = self.tracer.sample();
                let forced = !sampled && force && pos == 0;
                if sampled || forced {
                    let mut rec = TraceRecord::new(pos as u32, self.mdt.index());
                    rec.stamp(TraceStage::Read, read_ns);
                    rec.stamp(TraceStage::Resolve, resolve_ns);
                    traces.push(rec);
                    if forced {
                        self.t_forced_traces.inc();
                    }
                }
            }
        }
        self.stats.records += n_records as u64;
        self.t_records.add(n_records as u64);
        self.t_events.add(events.len() as u64);
        self.t_read_ns.record(t_read.elapsed().as_nanos() as u64);
        self.last_index = batch_last_index;
        // "After processing a batch … a collector will purge the
        // Changelogs" (§IV Processing).
        let t_purge = std::time::Instant::now();
        if self
            .mdt
            .try_clear_changelog(self.user, self.last_index)
            .is_err()
        {
            // Safe to skip: clearing is idempotent and monotone, so the
            // next successful clear covers these records too.
            self.t_purge_errors.inc();
        }
        self.t_purge_ns.record(t_purge.elapsed().as_nanos() as u64);
        if let Some(publisher) = &self.publisher {
            // Encode into the collector's reusable buffer; the frozen
            // frame is refcount-shared from here to every subscriber.
            encode_event_batch_into(&events, &mut self.enc_buf);
            let payload = self.enc_buf.split_frozen();
            // Frame 2 carries the batch's changelog index range plus one
            // index per event, so the aggregator can drop re-published
            // duplicates after a collector restart — whole batches or
            // the overlapping prefix of a straddling one
            // (at-least-once → exactly-once).
            let mut meta = Vec::with_capacity(16 + 8 * event_indices.len());
            meta.extend_from_slice(&first_index.to_be_bytes());
            meta.extend_from_slice(&self.last_index.to_be_bytes());
            for idx in &event_indices {
                meta.extend_from_slice(&idx.to_be_bytes());
            }
            let mut parts = vec![
                bytes::Bytes::from(self.topic.clone()),
                payload,
                bytes::Bytes::from(meta),
            ];
            if !traces.is_empty() {
                // Stamp the publish stage and attach the traces as a
                // fourth frame: a TLV section so future meta can ride
                // alongside without a wire version bump.
                let publish_ns = self.tracer.now_ns();
                for rec in &mut traces {
                    rec.stamp(TraceStage::Publish, publish_ns);
                }
                self.fleet.traces.add(traces.len() as u64);
                parts.push(encode_tlv(TLV_TRACE, &TraceRecord::encode_all(&traces)));
            }
            let _ = publisher.send(Message::from_parts(parts));
            // Fleet view upkeep: mirror this batch into the private
            // registry and periodically publish the snapshot.
            self.fleet.records.add(n_records as u64);
            self.fleet.events.add(events.len() as u64);
            self.fleet.backlog.set(self.mdt.backlog(self.user) as i64);
            self.fleet.steps += 1;
            if self.fleet.steps.is_multiple_of(FLEET_SNAPSHOT_STEPS) {
                self.publish_fleet_snapshot();
            }
        }
        events
    }

    /// Publish this collector's private registry snapshot on its
    /// `telemetry.mdt<i>` topic (no-op without a publisher). Called
    /// automatically every [`FLEET_SNAPSHOT_STEPS`] productive steps;
    /// callers may force one (e.g. on shutdown) so the fleet view ends
    /// current.
    pub fn publish_fleet_snapshot(&self) {
        if let Some(publisher) = &self.publisher {
            let json = self.fleet.snapshot_json();
            let _ = publisher.send(Message::from_parts(vec![
                bytes::Bytes::from(self.fleet.topic.clone()),
                bytes::Bytes::from(json.into_bytes()),
            ]));
        }
    }

    /// Resolve a batch of records into ordered events. With more than
    /// one resolver thread, the batch is split into contiguous chunks
    /// fanned out to the pool; chunk results are reassembled in
    /// sequence so the event stream stays changelog-index-ordered —
    /// byte-identical framing to serial resolution.
    fn resolve_batch(&mut self, records: Vec<ChangelogRecord>) -> (Vec<StandardEvent>, Vec<u64>) {
        if self.resolver_threads > 1 && self.pool.is_none() {
            self.pool = Some(ResolverPool::spawn(
                self.resolver.clone(),
                self.resolver_threads,
                self.mdt.index(),
            ));
        }
        let mut events = Vec::with_capacity(records.len());
        let mut event_indices: Vec<u64> = Vec::with_capacity(records.len());
        match &self.pool {
            Some(pool) if records.len() > 1 => {
                let job_tx = pool.job_tx.as_ref().expect("pool alive");
                let chunk = records.len().div_ceil(self.resolver_threads);
                let mut rest = records;
                let mut n_chunks = 0;
                while !rest.is_empty() {
                    let tail = rest.split_off(chunk.min(rest.len()));
                    job_tx
                        .send(ResolveJob {
                            seq: n_chunks,
                            records: rest,
                        })
                        .expect("resolver pool alive");
                    rest = tail;
                    n_chunks += 1;
                }
                let mut chunks: Vec<Option<ResolvedChunk>> = (0..n_chunks).map(|_| None).collect();
                for _ in 0..n_chunks {
                    let done = pool.done_rx.recv().expect("resolver pool alive");
                    let seq = done.seq;
                    chunks[seq] = Some(done);
                }
                for chunk in chunks.into_iter().flatten() {
                    events.extend(chunk.events);
                    event_indices.extend(chunk.indices);
                }
            }
            _ => {
                for rec in &records {
                    let produced = self.resolver.process_record(rec);
                    event_indices.extend(std::iter::repeat_n(rec.index, produced.len()));
                    events.extend(produced);
                }
            }
        }
        (events, event_indices)
    }

    /// Drive `step` until the Changelog is empty (bounded by `cycles`).
    pub fn drain(&mut self, cycles: usize) -> Vec<StandardEvent> {
        let mut out = Vec::new();
        for _ in 0..cycles {
            let batch = self.step();
            if batch.is_empty() {
                break;
            }
            out.extend(batch);
        }
        out
    }
}

impl Resolver {
    /// Resolve a FID through the cache (Algorithm 1 lines 13–17):
    /// cache hit short-circuits; a miss invokes `fid2path` and stores
    /// the mapping.
    fn resolve_fid(&self, fid: Fid) -> Result<String, ()> {
        if let Some(cache) = &self.cache {
            if let Some(path) = cache.get(&fid) {
                return Ok(path);
            }
        }
        self.fid2path_calls.fetch_add(1, Ordering::Relaxed);
        self.t_fid2path.inc();
        let t0 = std::time::Instant::now();
        // Transient MDS errors (injected or real) are retried with
        // backoff; a permanent failure (deleted FID) falls through to
        // Algorithm 1's parent-based reconstruction. Exhausting the
        // retry budget degrades the same way — reconstruction, not
        // loss.
        let mut backoff = self.retry.backoff();
        let resolved = loop {
            match self.mdt.fid2path(fid) {
                Err(FsError::Transient(_)) => match backoff.next() {
                    Some(sleep) => {
                        self.t_fid2path_retries.inc();
                        std::thread::sleep(sleep);
                    }
                    None => break Err(()),
                },
                other => break other.map_err(|_| ()),
            }
        };
        self.t_resolve_ns.record(t0.elapsed().as_nanos() as u64);
        match resolved {
            Ok(path) => {
                if let Some(cache) = &self.cache {
                    cache.insert(fid, path.clone());
                }
                Ok(path)
            }
            Err(()) => Err(()),
        }
    }

    /// Drop a FID's mapping once its object is gone.
    fn invalidate(&self, fid: Fid) {
        if let Some(cache) = &self.cache {
            cache.remove(&fid);
        }
    }

    /// Attach size/owner metadata from an MDS-local stat of the FID —
    /// one hash probe on the MDS the collector already runs on, the way
    /// Robinhood enriches changelog records before indexing. Removal
    /// events and already-deleted FIDs stay unenriched (`None`).
    fn enrich(&self, ev: &mut StandardEvent, fid: Fid) {
        if let Some(attrs) = self.mdt.fs().attrs_of_fid(fid) {
            if !attrs.is_dir {
                ev.size = Some(attrs.size);
            }
            ev.owner = Some(attrs.uid);
        }
    }

    /// Algorithm 1's `processEvent`: one Changelog record → one or two
    /// standardized events. Thread-safe — concurrent workers share the
    /// sharded cache; fallback reconstruction makes every interleaving
    /// produce the same paths.
    fn process_record(&self, rec: &ChangelogRecord) -> Vec<StandardEvent> {
        let (kind, type_is_dir) = rec.kind.to_standard();
        let mdt = rec.mdt_index;
        let watch_root = self.watch_root.clone();
        let base = move |kind: EventKind, path: String| {
            let mut ev = StandardEvent::new(kind, watch_root.clone(), path)
                .with_source(MonitorSource::LustreChangelog)
                .with_timestamp(rec.time_ns)
                .with_mdt(mdt);
            ev.is_dir = type_is_dir;
            ev
        };

        if rec.kind.is_rename() {
            // RENME: resolve old and new FIDs (Algorithm 1 lines 27–38).
            let (new_fid, old_fid) = match rec.rename {
                Some(pair) => (pair.new_fid, pair.old_fid),
                None => (rec.target_fid, rec.target_fid),
            };
            // The old FID no longer resolves once the rename has been
            // applied; the cached mapping from its earlier events (or
            // the record's own parent + old name) recovers the path.
            let old_path = match self.resolve_fid(old_fid) {
                Ok(p) => p,
                Err(()) => match self.resolve_fid(rec.parent_fid) {
                    Ok(dir) => join(&dir, &rec.target_name),
                    Err(()) => format!("/{}", rec.target_name),
                },
            };
            self.invalidate(old_fid);
            let new_path = match self.resolve_fid(new_fid) {
                Ok(p) => p,
                Err(()) => rec
                    .rename_target_name
                    .as_ref()
                    .map(|n| join(&parent_of(&old_path), n))
                    .unwrap_or_else(|| old_path.clone()),
            };
            self.events.fetch_add(2, Ordering::Relaxed);
            let from = base(EventKind::MovedFrom, old_path.clone());
            let mut to = base(EventKind::MovedTo, new_path);
            to.old_path = Some(old_path);
            self.enrich(&mut to, new_fid);
            return vec![from, to];
        }

        if rec.kind.deletes_target() {
            // UNLNK/RMDIR: the target FID is already gone. The cache may
            // still hold its mapping from the creation; otherwise
            // resolve the parent and append the record's name
            // (Algorithm 1 lines 20–26). If the parent fails too, the
            // event becomes ParentDirectoryRemoved (line 41).
            let path = {
                let cached = self
                    .cache
                    .as_ref()
                    .and_then(|cache| cache.get(&rec.target_fid));
                match cached {
                    Some(p) => p,
                    None => {
                        // fid2path on the deleted target fails by
                        // construction; charge it like the paper's
                        // pipeline does, then fall back to the parent.
                        self.fid2path_calls.fetch_add(1, Ordering::Relaxed);
                        self.t_fid2path.inc();
                        match self.mdt.fid2path(rec.target_fid) {
                            Ok(p) => p,
                            Err(_) => match self.resolve_fid(rec.parent_fid) {
                                Ok(dir) => join(&dir, &rec.target_name),
                                Err(()) => {
                                    self.parent_dir_removed.fetch_add(1, Ordering::Relaxed);
                                    self.events.fetch_add(1, Ordering::Relaxed);
                                    self.invalidate(rec.target_fid);
                                    return vec![base(
                                        EventKind::ParentDirectoryRemoved,
                                        format!("/{}", rec.target_name),
                                    )];
                                }
                            },
                        }
                    }
                }
            };
            self.invalidate(rec.target_fid);
            self.events.fetch_add(1, Ordering::Relaxed);
            return vec![base(kind, path)];
        }

        // Every other record type resolves its target FID directly.
        let path = match self.resolve_fid(rec.target_fid) {
            Ok(p) => p,
            Err(()) => {
                let reconstructed = match self.resolve_fid(rec.parent_fid) {
                    Ok(dir) => join(&dir, &rec.target_name),
                    Err(()) => format!("/{}", rec.target_name),
                };
                // The record's own parent + name is authoritative as of
                // event time; cache it so later records on the same
                // (now-deleted) FID — e.g. an MTIME carrying no parent —
                // still resolve to the right path.
                if let Some(cache) = &self.cache {
                    cache.insert(rec.target_fid, reconstructed.clone());
                }
                reconstructed
            }
        };
        self.events.fetch_add(1, Ordering::Relaxed);
        let mut ev = base(kind, path);
        self.enrich(&mut ev, rec.target_fid);
        vec![ev]
    }
}

fn join(dir: &str, name: &str) -> String {
    if dir == "/" {
        format!("/{name}")
    } else {
        format!("{dir}/{name}")
    }
}

fn parent_of(path: &str) -> String {
    match path.rfind('/') {
        Some(0) | None => "/".to_string(),
        Some(i) => path[..i].to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmon_events::EventKind;
    use lustre_sim::{LustreConfig, LustreFs};

    fn collector(fs: &std::sync::Arc<LustreFs>, cache: usize) -> Collector {
        Collector::new(fs.mdt(0), "/mnt/lustre", cache, 1024, None)
    }

    #[test]
    fn create_resolves_path() {
        let fs = LustreFs::new(LustreConfig::small());
        let mut c = collector(&fs, 100);
        fs.client().mkdir_all("/a/b").unwrap();
        fs.client().create("/a/b/f.txt").unwrap();
        let events = c.drain(10);
        let create = events.iter().find(|e| e.path == "/a/b/f.txt").unwrap();
        assert_eq!(create.kind, EventKind::Create);
        assert_eq!(create.watch_root, "/mnt/lustre");
        assert_eq!(create.source, MonitorSource::LustreChangelog);
        assert_eq!(create.mdt_index, Some(0));
    }

    #[test]
    fn mkdir_is_dir_create() {
        let fs = LustreFs::new(LustreConfig::small());
        let mut c = collector(&fs, 100);
        fs.client().mkdir("/okdir").unwrap();
        let events = c.drain(10);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::Create);
        assert!(events[0].is_dir);
    }

    #[test]
    fn events_carry_size_and_owner_metadata() {
        let fs = LustreFs::new(LustreConfig::small());
        let mut c = collector(&fs, 100);
        let client = fs.client();
        client.create("/f").unwrap();
        client.write("/f", 0, 4096).unwrap();
        client.chown("/f", 1001).unwrap();
        let events = c.drain(10);
        // All events on a live file see its current size/owner (the
        // MDS-local stat happens at collection time, not event time).
        let sattr = events
            .iter()
            .find(|e| e.kind == EventKind::Attrib)
            .expect("chown emits SATTR");
        assert_eq!(sattr.size, Some(4096));
        assert_eq!(sattr.owner, Some(1001));
        // Deletes carry no metadata: the object is already gone.
        client.unlink("/f").unwrap();
        let events = c.drain(10);
        assert_eq!(events[0].kind, EventKind::Delete);
        assert_eq!(events[0].size, None);
        assert_eq!(events[0].owner, None);
    }

    #[test]
    fn unlink_resolves_via_cache_hit() {
        let fs = LustreFs::new(LustreConfig::small());
        let mut c = collector(&fs, 100);
        fs.client().create("/f").unwrap();
        c.drain(10); // create cached /f
        let calls_before = c.stats().fid2path_calls;
        fs.client().unlink("/f").unwrap();
        let events = c.drain(10);
        assert_eq!(events[0].kind, EventKind::Delete);
        assert_eq!(events[0].path, "/f");
        assert_eq!(
            c.stats().fid2path_calls,
            calls_before,
            "delete path came from the cache"
        );
    }

    #[test]
    fn unlink_without_cache_falls_back_to_parent() {
        let fs = LustreFs::new(LustreConfig::small());
        let mut c = collector(&fs, 0); // cache disabled
        fs.client().mkdir("/dir").unwrap();
        fs.client().create("/dir/f").unwrap();
        c.drain(10);
        fs.client().unlink("/dir/f").unwrap();
        let events = c.drain(10);
        assert_eq!(events[0].kind, EventKind::Delete);
        assert_eq!(events[0].path, "/dir/f", "parent dir + record name");
    }

    #[test]
    fn parent_directory_removed_terminal_case() {
        let fs = LustreFs::new(LustreConfig::small());
        let mut c = collector(&fs, 0);
        fs.client().mkdir("/dir").unwrap();
        fs.client().create("/dir/f").unwrap();
        c.drain(10);
        // Delete file then its parent; when the collector processes the
        // file's UNLNK, both the target and the parent FID are gone.
        fs.client().unlink("/dir/f").unwrap();
        fs.client().rmdir("/dir").unwrap();
        let events = c.drain(10);
        assert_eq!(events[0].kind, EventKind::ParentDirectoryRemoved);
        assert_eq!(c.stats().parent_dir_removed, 1);
        // The RMDIR itself resolves via the root parent.
        assert_eq!(events[1].kind, EventKind::Delete);
        assert!(events[1].is_dir);
        assert_eq!(events[1].path, "/dir");
    }

    #[test]
    fn rename_produces_moved_pair_with_old_path() {
        let fs = LustreFs::new(LustreConfig::small());
        let mut c = collector(&fs, 100);
        fs.client().create("/hello.txt").unwrap();
        c.drain(10);
        fs.client().rename("/hello.txt", "/hi.txt").unwrap();
        let events = c.drain(10);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::MovedFrom);
        assert_eq!(events[0].path, "/hello.txt");
        assert_eq!(events[1].kind, EventKind::MovedTo);
        assert_eq!(events[1].path, "/hi.txt");
        assert_eq!(events[1].old_path.as_deref(), Some("/hello.txt"));
    }

    #[test]
    fn rename_without_cache_uses_parent_and_names() {
        let fs = LustreFs::new(LustreConfig::small());
        let mut c = collector(&fs, 0);
        fs.client().create("/hello.txt").unwrap();
        c.drain(10);
        fs.client().rename("/hello.txt", "/hi.txt").unwrap();
        let events = c.drain(10);
        assert_eq!(events[0].path, "/hello.txt");
        assert_eq!(events[1].path, "/hi.txt");
    }

    #[test]
    fn cache_hit_rates_improve_with_cache() {
        let fs = LustreFs::new(LustreConfig::small());
        let mut with_cache = collector(&fs, 1000);
        let client = fs.client();
        let mut events = Vec::new();
        // Collector keeps up with the workload (the deployed shape):
        // each iteration's records are processed while the file's FID
        // mappings are fresh.
        for i in 0..100 {
            let f = format!("/f{i}");
            client.create(&f).unwrap();
            events.extend(with_cache.drain(10)); // CREAT resolved while live
            client.write(&f, 0, 10).unwrap();
            client.unlink(&f).unwrap();
            events.extend(with_cache.drain(10)); // MTIME + UNLNK hit the cache
        }
        assert_eq!(events.len(), 300);
        let s = with_cache.stats();
        // create misses, modify + delete hit: 1 call per 3 records.
        assert_eq!(s.fid2path_calls, 100);
        assert_eq!(s.cache_hits, 200);
    }

    #[test]
    fn no_cache_calls_fid2path_every_event() {
        let fs = LustreFs::new(LustreConfig::small());
        let mut c = collector(&fs, 0);
        let client = fs.client();
        for i in 0..50 {
            client.create(&format!("/f{i}")).unwrap();
        }
        c.drain(100);
        assert_eq!(c.stats().fid2path_calls, 50);
        assert_eq!(c.stats().cache_hits, 0);
    }

    #[test]
    fn step_purges_changelog_behind_itself() {
        let fs = LustreFs::new(LustreConfig::small());
        let mut c = collector(&fs, 100);
        let client = fs.client();
        for i in 0..10 {
            client.create(&format!("/f{i}")).unwrap();
        }
        assert_eq!(c.backlog(), 10);
        c.step();
        assert_eq!(c.backlog(), 0);
        assert_eq!(fs.mdt(0).changelog_stats().retained, 0);
    }

    #[test]
    fn batch_size_bounds_each_step() {
        let fs = LustreFs::new(LustreConfig::small());
        let mut c = Collector::new(fs.mdt(0), "/mnt/lustre", 100, 4, None);
        let client = fs.client();
        for i in 0..10 {
            client.create(&format!("/f{i}")).unwrap();
        }
        assert_eq!(c.step().len(), 4);
        assert_eq!(c.step().len(), 4);
        assert_eq!(c.step().len(), 2);
        assert!(c.step().is_empty());
    }

    #[test]
    fn parallel_resolution_preserves_changelog_order() {
        // Satellite ordering test: with a 4-thread resolver pool, a
        // large batch must come back in changelog-index order — the
        // chunk fan-out/reassembly is invisible in the event stream.
        let fs = LustreFs::new(LustreConfig::small());
        let client = fs.client();
        let mut serial = collector(&fs, 1000);
        let mut parallel =
            Collector::new(fs.mdt(0), "/mnt/lustre", 1000, 1024, None).with_resolver_threads(4);
        for i in 0..500 {
            client.create(&format!("/f{i:03}")).unwrap();
        }
        // Interleave a few renames so some records yield two events.
        client.rename("/f000", "/g000").unwrap();
        client.rename("/f001", "/g001").unwrap();
        let par_events = parallel.drain(10);
        let ser_events = serial.drain(10);
        assert_eq!(par_events.len(), 504);
        let par_paths: Vec<&str> = par_events.iter().map(|e| e.path.as_str()).collect();
        let ser_paths: Vec<&str> = ser_events.iter().map(|e| e.path.as_str()).collect();
        assert_eq!(
            par_paths, ser_paths,
            "parallel resolution must emit the same ordered stream as serial"
        );
        for (i, ev) in par_events[..500].iter().enumerate() {
            assert_eq!(ev.path, format!("/f{i:03}"), "creation order preserved");
        }
        assert_eq!(parallel.stats().records, 502);
    }

    #[test]
    fn parallel_resolution_counts_match_serial_for_read_only_batches() {
        // Stats contract under the pool: a batch with no intra-batch
        // cache dependencies produces identical fid2path accounting.
        let fs = LustreFs::new(LustreConfig::small());
        let client = fs.client();
        let mut c =
            Collector::new(fs.mdt(0), "/mnt/lustre", 1000, 1024, None).with_resolver_threads(4);
        for i in 0..100 {
            client.create(&format!("/f{i}")).unwrap();
        }
        c.drain(10); // creates cached
        let calls_before = c.stats().fid2path_calls;
        for i in 0..100 {
            client.write(&format!("/f{i}"), 0, 8).unwrap();
        }
        c.drain(10);
        let s = c.stats();
        assert_eq!(s.fid2path_calls, calls_before, "all MTIMEs hit the cache");
        assert_eq!(s.cache_hits, 100);
    }

    #[test]
    fn collector_holds_instead_of_publishing_into_the_void() {
        use fsmon_mq::Context;
        let fs = LustreFs::new(LustreConfig::small());
        let ctx = Context::new();
        let publisher = ctx.publisher();
        publisher.bind("inproc://hold-test").unwrap();
        let mut c = Collector::new(fs.mdt(0), "/mnt/lustre", 100, 1024, Some(publisher));
        fs.client().create("/f").unwrap();
        // No subscriber yet: the collector must hold, not consume.
        assert!(c.step().is_empty());
        assert_eq!(c.backlog(), 1, "record retained while aggregator is away");
        // Aggregator (subscriber) arrives: the batch flows.
        let sub = ctx.subscriber();
        sub.connect("inproc://hold-test").unwrap();
        sub.subscribe(b"mdt");
        let events = c.step();
        assert_eq!(events.len(), 1);
        assert_eq!(c.backlog(), 0);
        assert!(sub.recv_timeout(std::time::Duration::from_secs(1)).is_ok());
    }

    #[test]
    fn collector_crash_and_resume_loses_nothing() {
        let fs = LustreFs::new(LustreConfig::small());
        let client = fs.client();
        let mut first = collector(&fs, 100);
        for i in 0..10 {
            client.create(&format!("/f{i}")).unwrap();
        }
        let batch = first.step();
        assert_eq!(batch.len(), 10);
        let cursor = first.last_index();
        // "Crash": drop without shutdown — the dead user's watermark
        // still pins nothing it already cleared.
        drop(first);
        for i in 10..20 {
            client.create(&format!("/f{i}")).unwrap();
        }
        let mut second = Collector::resume(fs.mdt(0), "/mnt/lustre", 100, 1024, None, cursor);
        let events = second.drain(10);
        let paths: Vec<&str> = events.iter().map(|e| e.path.as_str()).collect();
        assert_eq!(
            events.len(),
            10,
            "exactly the post-crash records: {paths:?}"
        );
        assert_eq!(events[0].path, "/f10");
        assert_eq!(events[9].path, "/f19");
    }

    #[test]
    fn shutdown_deregisters_and_unpins() {
        let fs = LustreFs::new(LustreConfig::small());
        let client = fs.client();
        let c = collector(&fs, 100);
        // A second user holds the log too.
        let keeper = fs.mdt(0).register_user();
        client.create("/x").unwrap();
        c.shutdown();
        // Only `keeper` pins now; clearing as keeper frees the record.
        fs.mdt(0).clear_changelog(keeper, 1);
        assert_eq!(fs.mdt(0).changelog_stats().retained, 0);
    }

    #[test]
    fn mtime_records_resolve_without_parent() {
        let fs = LustreFs::new(LustreConfig::small());
        let mut c = collector(&fs, 100);
        let client = fs.client();
        client.create("/f").unwrap();
        client.write("/f", 0, 100).unwrap();
        let events = c.drain(10);
        let modify = events.iter().find(|e| e.kind == EventKind::Modify).unwrap();
        assert_eq!(modify.path, "/f");
    }

    #[test]
    fn all_fourteen_record_types_standardize() {
        let fs = LustreFs::new(LustreConfig::small());
        let mut c = collector(&fs, 1000);
        let client = fs.client();
        client.create("/f").unwrap();
        client.mkdir("/d").unwrap();
        client.link("/f", "/hard").unwrap();
        client.symlink("/f", "/soft").unwrap();
        client.mknod("/dev0").unwrap();
        client.write("/f", 0, 10).unwrap();
        client.truncate("/f", 5).unwrap();
        client.chmod("/f", 0o600).unwrap();
        client.setxattr("/f", "user.k", b"v").unwrap();
        client.ioctl("/f").unwrap();
        client.rename("/f", "/g").unwrap();
        client.unlink("/g").unwrap();
        client.rmdir("/d").unwrap();
        let events = c.drain(100);
        let kinds: std::collections::HashSet<EventKind> = events.iter().map(|e| e.kind).collect();
        for expected in [
            EventKind::Create,
            EventKind::HardLink,
            EventKind::SymLink,
            EventKind::DeviceNode,
            EventKind::Modify,
            EventKind::Truncate,
            EventKind::Attrib,
            EventKind::Xattr,
            EventKind::Ioctl,
            EventKind::MovedFrom,
            EventKind::MovedTo,
            EventKind::Delete,
        ] {
            assert!(
                kinds.contains(&expected),
                "missing {expected:?} in {kinds:?}"
            );
        }
        let _ = fsmon_events::changelog::ChangelogKind::ALL; // all types exercised
    }
}
