//! The consumer: client-side subscription with filtering and replay.
//!
//! "Whenever a new event arrives to the consumer it filters the events
//! and only passes on events related to those files and directories
//! requested by the application. This filtering of events is not done
//! at the aggregator in order to alleviate potential overheads if a
//! large number of consumers were to ask to monitor different files and
//! directories" (§IV Consumption).

use fsmon_core::EventFilter;
use fsmon_events::wire::{find_tlv, TLV_TRACE};
use fsmon_events::{decode_event_batch, EventId, StandardEvent};
use fsmon_faults::Retry;
use fsmon_mq::{Context, Message, SubSocket};
use fsmon_store::EventStore;
use fsmon_telemetry::{trace, TraceRecord, TraceStage, Tracer};
use parking_lot::Mutex;
use std::collections::{BTreeSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Duplicate/gap/reconnect counters — the consumer's view of how much
/// recovery machinery fired beneath it.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConsumerRecoveryStats {
    /// Events dropped because their id was already seen.
    pub duplicates_dropped: u64,
    /// Sequence-id gaps observed in the live stream.
    pub gaps_detected: u64,
    /// Events recovered from the reliable store to fill gaps.
    pub gap_events_healed: u64,
    /// Successful reconnects after a broken aggregator link.
    pub reconnects: u64,
}

/// A consumer attached to the aggregator.
pub struct Consumer {
    sub: SubSocket,
    filter: Mutex<EventFilter>,
    store: Option<Arc<dyn EventStore>>,
    pending: Mutex<VecDeque<StandardEvent>>,
    /// Ids known missing (seen a later id live, not yet healed).
    missing: Mutex<BTreeSet<EventId>>,
    retry: Retry,
    /// Stamps the deliver stage on arriving trace records and folds
    /// completed traces into the latency histograms. Disabled unless
    /// set by [`connect_traced`](Consumer::connect_traced).
    tracer: Tracer,
    /// Events accepted by the filter.
    accepted: AtomicU64,
    /// Events discarded by the filter.
    filtered_out: AtomicU64,
    /// Highest event id seen (resume point after a fault).
    last_seen: AtomicU64,
    duplicates_dropped: AtomicU64,
    gaps_detected: AtomicU64,
    gap_events_healed: AtomicU64,
    reconnects: AtomicU64,
    t_delivered: Arc<fsmon_telemetry::Counter>,
    t_filtered: Arc<fsmon_telemetry::Counter>,
    t_duplicates: Arc<fsmon_telemetry::Counter>,
    t_gaps: Arc<fsmon_telemetry::Counter>,
    t_healed: Arc<fsmon_telemetry::Counter>,
    t_reconnects: Arc<fsmon_telemetry::Counter>,
}

impl Consumer {
    /// Connect to the aggregator at `endpoint`. `store` enables the
    /// historic-replay API (`None` for stateless consumers). Counters
    /// carry the label set `{consumer="main"}`; use
    /// [`connect_named`](Consumer::connect_named) to tell multiple
    /// consumers apart in `fsmon stats` output.
    pub fn connect(
        ctx: &Context,
        endpoint: &str,
        filter: EventFilter,
        store: Option<Arc<dyn EventStore>>,
    ) -> Result<Consumer, fsmon_mq::MqError> {
        Self::connect_named(ctx, endpoint, filter, store, "main")
    }

    /// [`connect`](Consumer::connect) with an explicit consumer name:
    /// every counter this consumer reports carries the label
    /// `consumer=<name>`, so per-consumer delivery/filtering is visible
    /// in snapshots while `Snapshot::counter` still sums the total.
    pub fn connect_named(
        ctx: &Context,
        endpoint: &str,
        filter: EventFilter,
        store: Option<Arc<dyn EventStore>>,
        name: &str,
    ) -> Result<Consumer, fsmon_mq::MqError> {
        Self::connect_traced(ctx, endpoint, filter, store, name, Tracer::disabled())
    }

    /// [`connect_named`](Consumer::connect_named) with a [`Tracer`]:
    /// trace records arriving behind event frames get their deliver
    /// stage stamped with the tracer's clock, completing the end-to-end
    /// trace, and are folded into the per-stage/per-MDT latency
    /// histograms (and the worst-case exemplar).
    pub fn connect_traced(
        ctx: &Context,
        endpoint: &str,
        filter: EventFilter,
        store: Option<Arc<dyn EventStore>>,
        name: &str,
        tracer: Tracer,
    ) -> Result<Consumer, fsmon_mq::MqError> {
        let sub = ctx.subscriber();
        sub.connect(endpoint)?;
        sub.subscribe(b"events");
        // Same instruments the core interface layer's fan-out reports
        // into: "consumer delivered" means the same thing in both
        // pipelines.
        let scope = fsmon_telemetry::root()
            .scope("consumer")
            .with_label("consumer", name);
        Ok(Consumer {
            sub,
            filter: Mutex::new(filter),
            store,
            pending: Mutex::new(VecDeque::new()),
            missing: Mutex::new(BTreeSet::new()),
            retry: Retry::fast(),
            tracer,
            accepted: AtomicU64::new(0),
            filtered_out: AtomicU64::new(0),
            last_seen: AtomicU64::new(0),
            duplicates_dropped: AtomicU64::new(0),
            gaps_detected: AtomicU64::new(0),
            gap_events_healed: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            t_delivered: scope.counter("delivered_total"),
            t_filtered: scope.counter("filtered_total"),
            t_duplicates: scope.counter("duplicates_dropped_total"),
            t_gaps: scope.counter("gaps_detected_total"),
            t_healed: scope.counter("gap_events_healed_total"),
            t_reconnects: scope.counter("reconnects_total"),
        })
    }

    /// Change the subscription filter (the paper's recursive monitoring
    /// is "just modifying the filtering rule", §V-C1).
    pub fn set_filter(&self, filter: EventFilter) {
        *self.filter.lock() = filter;
    }

    /// `(accepted, filtered_out)` so far.
    pub fn filter_stats(&self) -> (u64, u64) {
        (
            self.accepted.load(Ordering::Relaxed),
            self.filtered_out.load(Ordering::Relaxed),
        )
    }

    /// Highest event id this consumer has observed.
    pub fn last_seen(&self) -> EventId {
        self.last_seen.load(Ordering::Relaxed)
    }

    /// Treat everything up to `cursor` as already seen — the resume
    /// point when a federated consumer is rebuilt from a persisted
    /// vector watermark ([`catch_up`](Consumer::catch_up) then replays
    /// exactly the store's suffix past the cursor). Never regresses:
    /// resuming below the current position is a no-op, so a stale
    /// cursor cannot re-deliver events this incarnation already saw.
    pub fn resume_from(&self, cursor: EventId) {
        self.last_seen.fetch_max(cursor, Ordering::Relaxed);
    }

    /// Duplicate/gap/reconnect counters so far.
    pub fn recovery_stats(&self) -> ConsumerRecoveryStats {
        ConsumerRecoveryStats {
            duplicates_dropped: self.duplicates_dropped.load(Ordering::Relaxed),
            gaps_detected: self.gaps_detected.load(Ordering::Relaxed),
            gap_events_healed: self.gap_events_healed.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
        }
    }

    fn ingest(&self, events: Vec<StandardEvent>) {
        for ev in events {
            self.ingest_live(ev);
        }
    }

    /// Decode one live frame into the pending queue, completing any
    /// trace records riding behind it.
    fn ingest_frame(&self, msg: &Message) {
        if let Some(payload) = msg.part_bytes(1) {
            if let Ok(events) = decode_event_batch(&payload) {
                self.fold_traces(msg.part(2));
                self.ingest(events);
            }
        }
    }

    /// Terminal trace stage: stamp `deliver` on each record arriving in
    /// the frame's trace part and fold the completed trace into the
    /// per-stage/per-MDT latency histograms and the exemplar. Requires
    /// a tracer (its clock must match the stamps upstream stages used).
    fn fold_traces(&self, frame: Option<&[u8]>) {
        if !self.tracer.enabled() {
            return;
        }
        let Some(records) = frame
            .and_then(|f| find_tlv(f, TLV_TRACE).ok().flatten())
            .and_then(TraceRecord::decode_all)
        else {
            return;
        };
        let deliver_ns = self.tracer.now_ns();
        for mut rec in records {
            rec.stamp(TraceStage::Deliver, deliver_ns);
            trace::fold_delivered(&rec);
        }
    }

    /// Take one event from the live stream: drop duplicates (an
    /// at-least-once upstream may re-deliver after a restart), note and
    /// heal sequence gaps (events published while this consumer was
    /// disconnected), then filter.
    fn ingest_live(&self, ev: StandardEvent) {
        if ev.id > 0 {
            let last = self.last_seen.load(Ordering::Relaxed);
            if ev.id <= last {
                self.duplicates_dropped.fetch_add(1, Ordering::Relaxed);
                self.t_duplicates.inc();
                return;
            }
            if last > 0 && ev.id > last + 1 {
                // Heal before pushing `ev` so recovered events keep
                // stream order in the pending queue.
                self.note_gap(last + 1, ev.id - 1);
            }
            self.last_seen.fetch_max(ev.id, Ordering::Relaxed);
        }
        self.deliver(ev);
    }

    /// Filter one event into the pending queue (or the filtered count).
    fn deliver(&self, ev: StandardEvent) {
        let matches = self.filter.lock().matches(&ev);
        if matches {
            self.accepted.fetch_add(1, Ordering::Relaxed);
            self.t_delivered.inc();
            self.pending.lock().push_back(ev);
        } else {
            self.filtered_out.fetch_add(1, Ordering::Relaxed);
            self.t_filtered.inc();
        }
    }

    /// Record ids `from..=to` as missing and try to heal them from the
    /// reliable store right away.
    fn note_gap(&self, from: EventId, to: EventId) {
        self.gaps_detected.fetch_add(1, Ordering::Relaxed);
        self.t_gaps.inc();
        self.missing.lock().extend(from..=to);
        self.heal_missing();
    }

    /// Fetch known-missing events from the reliable store, retrying
    /// briefly (the aggregator's store lane may run behind its publish
    /// lane). Healed events flow through the normal filter path and are
    /// counted as `gap_events_healed`. Ids the store still cannot
    /// produce stay recorded; [`catch_up`](Consumer::catch_up) retries
    /// them later. Returns the number of events healed by this call.
    pub fn heal_missing(&self) -> usize {
        let Some(store) = &self.store else {
            return 0;
        };
        let mut healed = 0usize;
        let mut backoff = self.retry.backoff();
        loop {
            let (lo, hi, want) = {
                let missing = self.missing.lock();
                match (missing.first(), missing.last()) {
                    (Some(&lo), Some(&hi)) => (lo, hi, missing.len()),
                    _ => break,
                }
            };
            let span = (hi - lo + 1) as usize;
            let fetched = store.get_since(lo - 1, span).unwrap_or_default();
            let mut recovered = Vec::new();
            {
                let mut missing = self.missing.lock();
                for ev in fetched {
                    if ev.id > hi {
                        break;
                    }
                    if missing.remove(&ev.id) {
                        recovered.push(ev);
                    }
                }
            }
            for ev in recovered {
                self.gap_events_healed.fetch_add(1, Ordering::Relaxed);
                self.t_healed.inc();
                self.deliver(ev);
                healed += 1;
            }
            if self.missing.lock().len() < want {
                // Progress — reset the clock before the next round.
                backoff = self.retry.backoff();
                continue;
            }
            match backoff.next() {
                Some(sleep) => std::thread::sleep(sleep),
                None => break,
            }
        }
        healed
    }

    /// Recover everything this consumer can still be missing: heal
    /// recorded gaps, then pull any events the store holds beyond the
    /// highest id seen live (a tail lost to a disconnect has no later
    /// event to reveal it as a gap). Returns the number of events
    /// recovered.
    pub fn catch_up(&self) -> usize {
        let mut recovered = self.heal_missing();
        let Some(store) = &self.store else {
            return recovered;
        };
        loop {
            let since = self.last_seen.load(Ordering::Relaxed);
            let tail = match store.get_since(since, 4096) {
                Ok(tail) if tail.is_empty() => break,
                Ok(tail) => tail,
                Err(_) => break,
            };
            for ev in tail {
                if ev.id > 0 && ev.id <= self.last_seen.load(Ordering::Relaxed) {
                    continue;
                }
                self.last_seen.fetch_max(ev.id, Ordering::Relaxed);
                self.gap_events_healed.fetch_add(1, Ordering::Relaxed);
                self.t_healed.inc();
                self.deliver(ev);
                recovered += 1;
            }
        }
        recovered
    }

    /// Re-dial the aggregator after a broken link, with backoff. Any
    /// events missed while down surface as a sequence gap (healed from
    /// the store) or via [`catch_up`](Consumer::catch_up).
    fn try_reconnect(&self) {
        let mut backoff = self.retry.backoff();
        loop {
            if let Ok(n) = self.sub.reconnect() {
                if !self.sub.disconnected() {
                    if n > 0 {
                        self.reconnects.fetch_add(n as u64, Ordering::Relaxed);
                        self.t_reconnects.add(n as u64);
                    }
                    return;
                }
            }
            match backoff.next() {
                Some(sleep) => std::thread::sleep(sleep),
                None => return,
            }
        }
    }

    /// Drain the socket into the pending queue. Returns as soon as at
    /// least one *filter-matching* event is pending (callers waiting in
    /// `recv` must not sleep out their full timeout once the event has
    /// arrived), when the socket goes quiet, or at the deadline.
    fn pump_socket(&self, budget: Duration) {
        if self.sub.disconnected() {
            self.try_reconnect();
        }
        let deadline = Instant::now() + budget;
        loop {
            let msg = match self.sub.try_recv() {
                Some(msg) => Some(msg),
                None => {
                    if !self.pending.lock().is_empty() || Instant::now() >= deadline {
                        return;
                    }
                    self.sub.recv_timeout(deadline - Instant::now()).ok()
                }
            };
            let Some(msg) = msg else { return };
            self.ingest_frame(&msg);
            if !self.pending.lock().is_empty() {
                // Sweep whatever else is already queued, then hand back.
                while let Some(extra) = self.sub.try_recv() {
                    self.ingest_frame(&extra);
                }
                return;
            }
            if Instant::now() >= deadline {
                return;
            }
        }
    }

    /// Receive one filtered event, waiting up to `timeout`.
    pub fn recv(&self, timeout: Duration) -> Option<StandardEvent> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(ev) = self.pending.lock().pop_front() {
                return Some(ev);
            }
            if Instant::now() >= deadline {
                return None;
            }
            self.pump_socket(deadline - Instant::now());
            if self.pending.lock().is_empty() && Instant::now() >= deadline {
                return None;
            }
        }
    }

    /// Receive up to `max` filtered events, waiting up to `timeout`
    /// for the first.
    pub fn recv_batch(&self, max: usize, timeout: Duration) -> Vec<StandardEvent> {
        let mut out = Vec::new();
        if let Some(first) = self.recv(timeout) {
            out.push(first);
        } else {
            return out;
        }
        self.pump_socket(Duration::from_millis(1));
        let mut pending = self.pending.lock();
        while out.len() < max {
            match pending.pop_front() {
                Some(ev) => out.push(ev),
                None => break,
            }
        }
        out
    }

    /// Drain everything currently buffered (no waiting beyond a single
    /// socket sweep).
    pub fn drain(&self) -> Vec<StandardEvent> {
        self.pump_socket(Duration::from_millis(1));
        let mut pending = self.pending.lock();
        pending.drain(..).collect()
    }

    /// Replay historic events with id greater than `since` from the
    /// reliable store — the fault-recovery path ("the consumer service
    /// is also responsible for retrieving the historic events … in the
    /// situation that a consumer has failed", §IV Consumption). Replayed
    /// events pass through the same filter.
    pub fn replay_since(
        &self,
        since: EventId,
        max: usize,
    ) -> Result<Vec<StandardEvent>, fsmon_store::StoreError> {
        let Some(store) = &self.store else {
            return Ok(Vec::new());
        };
        let filter = self.filter.lock().clone();
        let events = store.get_since(since, max)?;
        Ok(events.into_iter().filter(|e| filter.matches(e)).collect())
    }

    /// Flag replayed events as reported so the next purge cycle can
    /// remove them.
    pub fn ack(&self, up_to: EventId) -> Result<(), fsmon_store::StoreError> {
        if let Some(store) = &self.store {
            store.mark_reported(up_to)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmon_events::{encode_event_batch, EventKind};
    use fsmon_mq::Message;
    use fsmon_store::{EventStore, MemStore};

    fn publish(publisher: &fsmon_mq::PubSocket, events: &[StandardEvent]) {
        publisher
            .send(Message::from_parts(vec![
                bytes::Bytes::from_static(b"events"),
                encode_event_batch(events),
            ]))
            .unwrap();
    }

    fn ev(kind: EventKind, path: &str, id: u64) -> StandardEvent {
        let mut e = StandardEvent::new(kind, "/mnt/lustre", path);
        e.id = id;
        e
    }

    #[test]
    fn filtering_happens_client_side() {
        let ctx = Context::new();
        let publisher = ctx.publisher();
        publisher.bind("inproc://agg").unwrap();
        let consumer =
            Consumer::connect(&ctx, "inproc://agg", EventFilter::subtree("/keep"), None).unwrap();
        publish(
            &publisher,
            &[
                ev(EventKind::Create, "/keep/a", 1),
                ev(EventKind::Create, "/drop/b", 2),
                ev(EventKind::Create, "/keep/c", 3),
            ],
        );
        let got = consumer.recv_batch(10, Duration::from_secs(2));
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|e| e.path.starts_with("/keep")));
        let (accepted, dropped) = consumer.filter_stats();
        assert_eq!((accepted, dropped), (2, 1));
        assert_eq!(consumer.last_seen(), 3);
    }

    #[test]
    fn recv_times_out_when_silent() {
        let ctx = Context::new();
        let publisher = ctx.publisher();
        publisher.bind("inproc://agg").unwrap();
        let consumer = Consumer::connect(&ctx, "inproc://agg", EventFilter::all(), None).unwrap();
        let start = Instant::now();
        assert!(consumer.recv(Duration::from_millis(50)).is_none());
        assert!(start.elapsed() >= Duration::from_millis(50));
    }

    #[test]
    fn replay_respects_filter_and_ack() {
        let ctx = Context::new();
        let publisher = ctx.publisher();
        publisher.bind("inproc://agg").unwrap();
        let store: Arc<dyn EventStore> = Arc::new(MemStore::new());
        store.append(&ev(EventKind::Create, "/keep/a", 0)).unwrap();
        store.append(&ev(EventKind::Create, "/drop/b", 0)).unwrap();
        store.append(&ev(EventKind::Create, "/keep/c", 0)).unwrap();
        let consumer = Consumer::connect(
            &ctx,
            "inproc://agg",
            EventFilter::subtree("/keep"),
            Some(store.clone()),
        )
        .unwrap();
        let replay = consumer.replay_since(0, 100).unwrap();
        assert_eq!(replay.len(), 2);
        consumer.ack(3).unwrap();
        assert_eq!(store.stats().reported_seq, 3);
        store.purge_reported().unwrap();
        assert!(consumer.replay_since(0, 100).unwrap().is_empty());
    }

    #[test]
    fn duplicate_ids_are_dropped_once_seen() {
        let ctx = Context::new();
        let publisher = ctx.publisher();
        publisher.bind("inproc://agg").unwrap();
        let consumer = Consumer::connect(&ctx, "inproc://agg", EventFilter::all(), None).unwrap();
        publish(
            &publisher,
            &[
                ev(EventKind::Create, "/a", 1),
                ev(EventKind::Create, "/b", 2),
            ],
        );
        assert_eq!(consumer.recv_batch(10, Duration::from_secs(2)).len(), 2);
        // An at-least-once redelivery of the same ids.
        publish(
            &publisher,
            &[
                ev(EventKind::Create, "/a", 1),
                ev(EventKind::Create, "/b", 2),
            ],
        );
        publish(&publisher, &[ev(EventKind::Create, "/c", 3)]);
        let got = consumer.recv_batch(10, Duration::from_secs(2));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].id, 3);
        assert_eq!(consumer.recovery_stats().duplicates_dropped, 2);
    }

    #[test]
    fn sequence_gaps_heal_from_the_store() {
        let ctx = Context::new();
        let publisher = ctx.publisher();
        publisher.bind("inproc://agg").unwrap();
        let store: Arc<dyn EventStore> = Arc::new(MemStore::new());
        // The store holds everything the aggregator published (ids are
        // assigned by append order: 1..=4).
        for p in ["/a", "/b", "/c", "/d"] {
            store.append(&ev(EventKind::Create, p, 0)).unwrap();
        }
        let consumer = Consumer::connect(
            &ctx,
            "inproc://agg",
            EventFilter::all(),
            Some(store.clone()),
        )
        .unwrap();
        // The live stream skips ids 2 and 3 (lost to a broken link).
        publish(&publisher, &[ev(EventKind::Create, "/a", 1)]);
        publish(&publisher, &[ev(EventKind::Create, "/d", 4)]);
        let got = consumer.recv_batch(10, Duration::from_secs(2));
        let ids: Vec<u64> = got.iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![1, 2, 3, 4], "healed events keep stream order");
        let rec = consumer.recovery_stats();
        assert_eq!(rec.gaps_detected, 1);
        assert_eq!(rec.gap_events_healed, 2);
    }

    #[test]
    fn catch_up_recovers_a_lost_tail() {
        let ctx = Context::new();
        let publisher = ctx.publisher();
        publisher.bind("inproc://agg").unwrap();
        let store: Arc<dyn EventStore> = Arc::new(MemStore::new());
        for p in ["/a", "/b", "/c"] {
            store.append(&ev(EventKind::Create, p, 0)).unwrap();
        }
        let consumer = Consumer::connect(
            &ctx,
            "inproc://agg",
            EventFilter::all(),
            Some(store.clone()),
        )
        .unwrap();
        // Only the first event arrives live; the tail has no later
        // event to reveal it as a gap.
        publish(&publisher, &[ev(EventKind::Create, "/a", 1)]);
        assert_eq!(consumer.recv_batch(10, Duration::from_secs(2)).len(), 1);
        assert_eq!(consumer.catch_up(), 2);
        let ids: Vec<u64> = consumer.drain().iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![2, 3]);
        assert_eq!(consumer.last_seen(), 3);
    }

    #[test]
    fn set_filter_applies_to_subsequent_events() {
        let ctx = Context::new();
        let publisher = ctx.publisher();
        publisher.bind("inproc://agg").unwrap();
        let consumer = Consumer::connect(&ctx, "inproc://agg", EventFilter::all(), None).unwrap();
        publish(&publisher, &[ev(EventKind::Create, "/x", 1)]);
        assert!(consumer.recv(Duration::from_secs(1)).is_some());
        consumer.set_filter(EventFilter::subtree("/nope"));
        publish(&publisher, &[ev(EventKind::Create, "/x", 2)]);
        assert!(consumer.recv(Duration::from_millis(100)).is_none());
    }
}
