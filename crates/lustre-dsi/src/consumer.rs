//! The consumer: client-side subscription with filtering and replay.
//!
//! "Whenever a new event arrives to the consumer it filters the events
//! and only passes on events related to those files and directories
//! requested by the application. This filtering of events is not done
//! at the aggregator in order to alleviate potential overheads if a
//! large number of consumers were to ask to monitor different files and
//! directories" (§IV Consumption).

use fsmon_core::EventFilter;
use fsmon_events::{decode_event_batch, EventId, StandardEvent};
use fsmon_mq::{Context, SubSocket};
use fsmon_store::EventStore;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A consumer attached to the aggregator.
pub struct Consumer {
    sub: SubSocket,
    filter: Mutex<EventFilter>,
    store: Option<Arc<dyn EventStore>>,
    pending: Mutex<VecDeque<StandardEvent>>,
    /// Events accepted by the filter.
    accepted: AtomicU64,
    /// Events discarded by the filter.
    filtered_out: AtomicU64,
    /// Highest event id seen (resume point after a fault).
    last_seen: AtomicU64,
    t_delivered: Arc<fsmon_telemetry::Counter>,
    t_filtered: Arc<fsmon_telemetry::Counter>,
}

impl Consumer {
    /// Connect to the aggregator at `endpoint`. `store` enables the
    /// historic-replay API (`None` for stateless consumers).
    pub fn connect(
        ctx: &Context,
        endpoint: &str,
        filter: EventFilter,
        store: Option<Arc<dyn EventStore>>,
    ) -> Result<Consumer, fsmon_mq::MqError> {
        let sub = ctx.subscriber();
        sub.connect(endpoint)?;
        sub.subscribe(b"events");
        // Same instruments the core interface layer's fan-out reports
        // into: "consumer delivered" means the same thing in both
        // pipelines.
        let scope = fsmon_telemetry::root().scope("consumer");
        Ok(Consumer {
            sub,
            filter: Mutex::new(filter),
            store,
            pending: Mutex::new(VecDeque::new()),
            accepted: AtomicU64::new(0),
            filtered_out: AtomicU64::new(0),
            last_seen: AtomicU64::new(0),
            t_delivered: scope.counter("delivered_total"),
            t_filtered: scope.counter("filtered_total"),
        })
    }

    /// Change the subscription filter (the paper's recursive monitoring
    /// is "just modifying the filtering rule", §V-C1).
    pub fn set_filter(&self, filter: EventFilter) {
        *self.filter.lock() = filter;
    }

    /// `(accepted, filtered_out)` so far.
    pub fn filter_stats(&self) -> (u64, u64) {
        (
            self.accepted.load(Ordering::Relaxed),
            self.filtered_out.load(Ordering::Relaxed),
        )
    }

    /// Highest event id this consumer has observed.
    pub fn last_seen(&self) -> EventId {
        self.last_seen.load(Ordering::Relaxed)
    }

    fn ingest(&self, events: Vec<StandardEvent>) {
        let filter = self.filter.lock().clone();
        let mut pending = self.pending.lock();
        for ev in events {
            if ev.id > 0 {
                self.last_seen.fetch_max(ev.id, Ordering::Relaxed);
            }
            if filter.matches(&ev) {
                self.accepted.fetch_add(1, Ordering::Relaxed);
                self.t_delivered.inc();
                pending.push_back(ev);
            } else {
                self.filtered_out.fetch_add(1, Ordering::Relaxed);
                self.t_filtered.inc();
            }
        }
    }

    /// Drain the socket into the pending queue. Returns as soon as at
    /// least one *filter-matching* event is pending (callers waiting in
    /// `recv` must not sleep out their full timeout once the event has
    /// arrived), when the socket goes quiet, or at the deadline.
    fn pump_socket(&self, budget: Duration) {
        let deadline = Instant::now() + budget;
        loop {
            let msg = match self.sub.try_recv() {
                Some(msg) => Some(msg),
                None => {
                    if !self.pending.lock().is_empty() || Instant::now() >= deadline {
                        return;
                    }
                    self.sub.recv_timeout(deadline - Instant::now()).ok()
                }
            };
            let Some(msg) = msg else { return };
            if let Some(payload) = msg.part(1) {
                if let Ok(events) = decode_event_batch(&bytes::Bytes::copy_from_slice(payload)) {
                    self.ingest(events);
                }
            }
            if !self.pending.lock().is_empty() {
                // Sweep whatever else is already queued, then hand back.
                while let Some(extra) = self.sub.try_recv() {
                    if let Some(payload) = extra.part(1) {
                        if let Ok(events) =
                            decode_event_batch(&bytes::Bytes::copy_from_slice(payload))
                        {
                            self.ingest(events);
                        }
                    }
                }
                return;
            }
            if Instant::now() >= deadline {
                return;
            }
        }
    }

    /// Receive one filtered event, waiting up to `timeout`.
    pub fn recv(&self, timeout: Duration) -> Option<StandardEvent> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(ev) = self.pending.lock().pop_front() {
                return Some(ev);
            }
            if Instant::now() >= deadline {
                return None;
            }
            self.pump_socket(deadline - Instant::now());
            if self.pending.lock().is_empty() && Instant::now() >= deadline {
                return None;
            }
        }
    }

    /// Receive up to `max` filtered events, waiting up to `timeout`
    /// for the first.
    pub fn recv_batch(&self, max: usize, timeout: Duration) -> Vec<StandardEvent> {
        let mut out = Vec::new();
        if let Some(first) = self.recv(timeout) {
            out.push(first);
        } else {
            return out;
        }
        self.pump_socket(Duration::from_millis(1));
        let mut pending = self.pending.lock();
        while out.len() < max {
            match pending.pop_front() {
                Some(ev) => out.push(ev),
                None => break,
            }
        }
        out
    }

    /// Drain everything currently buffered (no waiting beyond a single
    /// socket sweep).
    pub fn drain(&self) -> Vec<StandardEvent> {
        self.pump_socket(Duration::from_millis(1));
        let mut pending = self.pending.lock();
        pending.drain(..).collect()
    }

    /// Replay historic events with id greater than `since` from the
    /// reliable store — the fault-recovery path ("the consumer service
    /// is also responsible for retrieving the historic events … in the
    /// situation that a consumer has failed", §IV Consumption). Replayed
    /// events pass through the same filter.
    pub fn replay_since(
        &self,
        since: EventId,
        max: usize,
    ) -> Result<Vec<StandardEvent>, fsmon_store::StoreError> {
        let Some(store) = &self.store else {
            return Ok(Vec::new());
        };
        let filter = self.filter.lock().clone();
        let events = store.get_since(since, max)?;
        Ok(events.into_iter().filter(|e| filter.matches(e)).collect())
    }

    /// Flag replayed events as reported so the next purge cycle can
    /// remove them.
    pub fn ack(&self, up_to: EventId) -> Result<(), fsmon_store::StoreError> {
        if let Some(store) = &self.store {
            store.mark_reported(up_to)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmon_events::{encode_event_batch, EventKind};
    use fsmon_mq::Message;
    use fsmon_store::{EventStore, MemStore};

    fn publish(publisher: &fsmon_mq::PubSocket, events: &[StandardEvent]) {
        publisher
            .send(Message::from_parts(vec![
                bytes::Bytes::from_static(b"events"),
                encode_event_batch(events),
            ]))
            .unwrap();
    }

    fn ev(kind: EventKind, path: &str, id: u64) -> StandardEvent {
        let mut e = StandardEvent::new(kind, "/mnt/lustre", path);
        e.id = id;
        e
    }

    #[test]
    fn filtering_happens_client_side() {
        let ctx = Context::new();
        let publisher = ctx.publisher();
        publisher.bind("inproc://agg").unwrap();
        let consumer =
            Consumer::connect(&ctx, "inproc://agg", EventFilter::subtree("/keep"), None).unwrap();
        publish(
            &publisher,
            &[
                ev(EventKind::Create, "/keep/a", 1),
                ev(EventKind::Create, "/drop/b", 2),
                ev(EventKind::Create, "/keep/c", 3),
            ],
        );
        let got = consumer.recv_batch(10, Duration::from_secs(2));
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|e| e.path.starts_with("/keep")));
        let (accepted, dropped) = consumer.filter_stats();
        assert_eq!((accepted, dropped), (2, 1));
        assert_eq!(consumer.last_seen(), 3);
    }

    #[test]
    fn recv_times_out_when_silent() {
        let ctx = Context::new();
        let publisher = ctx.publisher();
        publisher.bind("inproc://agg").unwrap();
        let consumer = Consumer::connect(&ctx, "inproc://agg", EventFilter::all(), None).unwrap();
        let start = Instant::now();
        assert!(consumer.recv(Duration::from_millis(50)).is_none());
        assert!(start.elapsed() >= Duration::from_millis(50));
    }

    #[test]
    fn replay_respects_filter_and_ack() {
        let ctx = Context::new();
        let publisher = ctx.publisher();
        publisher.bind("inproc://agg").unwrap();
        let store: Arc<dyn EventStore> = Arc::new(MemStore::new());
        store.append(&ev(EventKind::Create, "/keep/a", 0)).unwrap();
        store.append(&ev(EventKind::Create, "/drop/b", 0)).unwrap();
        store.append(&ev(EventKind::Create, "/keep/c", 0)).unwrap();
        let consumer = Consumer::connect(
            &ctx,
            "inproc://agg",
            EventFilter::subtree("/keep"),
            Some(store.clone()),
        )
        .unwrap();
        let replay = consumer.replay_since(0, 100).unwrap();
        assert_eq!(replay.len(), 2);
        consumer.ack(3).unwrap();
        assert_eq!(store.stats().reported_seq, 3);
        store.purge_reported().unwrap();
        assert!(consumer.replay_since(0, 100).unwrap().is_empty());
    }

    #[test]
    fn set_filter_applies_to_subsequent_events() {
        let ctx = Context::new();
        let publisher = ctx.publisher();
        publisher.bind("inproc://agg").unwrap();
        let consumer = Consumer::connect(&ctx, "inproc://agg", EventFilter::all(), None).unwrap();
        publish(&publisher, &[ev(EventKind::Create, "/x", 1)]);
        assert!(consumer.recv(Duration::from_secs(1)).is_some());
        consumer.set_filter(EventFilter::subtree("/nope"));
        publish(&publisher, &[ev(EventKind::Create, "/x", 2)]);
        assert!(consumer.recv(Duration::from_millis(100)).is_none());
    }
}
