//! Persisted changelog cursors.
//!
//! A collector's only recovery state is "the last changelog index I
//! processed" (records behind it are purged, records past it are still
//! retained by the MDT). [`CursorFile`] persists those per-MDT cursors
//! crash-safely, so a restarted monitor resumes exactly where the
//! previous incarnation stopped — the collector-side half of the
//! paper's fault-tolerance story (§III-A3 covers the consumer side).
//!
//! Format: one line per MDT, `mdt_index cursor`, written to a temp file
//! and renamed (atomic on POSIX).

use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A crash-safe per-MDT cursor file.
pub struct CursorFile {
    path: PathBuf,
    cursors: BTreeMap<u16, u64>,
}

impl CursorFile {
    /// Open (or create) the cursor file at `path`.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<CursorFile> {
        let path = path.into();
        let mut cursors = BTreeMap::new();
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                for line in text.lines() {
                    let mut parts = line.split_whitespace();
                    if let (Some(mdt), Some(cursor)) = (parts.next(), parts.next()) {
                        if let (Ok(mdt), Ok(cursor)) = (mdt.parse(), cursor.parse()) {
                            cursors.insert(mdt, cursor);
                        }
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        Ok(CursorFile { path, cursors })
    }

    /// The cursor for `mdt` (0 = start from the beginning).
    pub fn get(&self, mdt: u16) -> u64 {
        self.cursors.get(&mdt).copied().unwrap_or(0)
    }

    /// All known cursors.
    pub fn all(&self) -> &BTreeMap<u16, u64> {
        &self.cursors
    }

    /// Update one cursor in memory (call [`flush`](CursorFile::flush)
    /// to persist). Cursors never move backwards.
    pub fn advance(&mut self, mdt: u16, cursor: u64) {
        let entry = self.cursors.entry(mdt).or_insert(0);
        *entry = (*entry).max(cursor);
    }

    /// Persist atomically (write + fsync + rename).
    pub fn flush(&self) -> std::io::Result<()> {
        let tmp = self.path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            for (mdt, cursor) in &self.cursors {
                writeln!(f, "{mdt} {cursor}")?;
            }
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        Ok(())
    }

    /// The backing path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmppath(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("fsmon-cursor-{tag}-{}", std::process::id()))
    }

    #[test]
    fn fresh_file_starts_at_zero() {
        let path = tmppath("fresh");
        let _ = std::fs::remove_file(&path);
        let c = CursorFile::open(&path).unwrap();
        assert_eq!(c.get(0), 0);
        assert_eq!(c.get(3), 0);
        assert!(c.all().is_empty());
    }

    #[test]
    fn roundtrip_across_reopen() {
        let path = tmppath("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let mut c = CursorFile::open(&path).unwrap();
            c.advance(0, 1500);
            c.advance(3, 42);
            c.flush().unwrap();
        }
        let c = CursorFile::open(&path).unwrap();
        assert_eq!(c.get(0), 1500);
        assert_eq!(c.get(3), 42);
        assert_eq!(c.get(1), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cursors_never_regress() {
        let path = tmppath("monotone");
        let _ = std::fs::remove_file(&path);
        let mut c = CursorFile::open(&path).unwrap();
        c.advance(0, 100);
        c.advance(0, 50);
        assert_eq!(c.get(0), 100);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_lines_are_skipped() {
        let path = tmppath("corrupt");
        std::fs::write(&path, "0 100\ngarbage line\n1 not-a-number\n2 7\n").unwrap();
        let c = CursorFile::open(&path).unwrap();
        assert_eq!(c.get(0), 100);
        assert_eq!(c.get(1), 0);
        assert_eq!(c.get(2), 7);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flush_is_atomic_under_reopen_loop() {
        let path = tmppath("atomic");
        let _ = std::fs::remove_file(&path);
        for round in 1..=20u64 {
            let mut c = CursorFile::open(&path).unwrap();
            assert_eq!(c.get(0), (round - 1) * 10);
            c.advance(0, round * 10);
            c.flush().unwrap();
        }
        std::fs::remove_file(&path).ok();
    }
}
