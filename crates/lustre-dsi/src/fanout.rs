//! The sequencer's server-side fan-out engine (filter pushdown).
//!
//! Consumers register compiled predicates at subscribe time
//! ([`fsmon_rules::FilterSpec`]); the publisher tracks the distinct
//! canonical specs as *filter classes*. This engine folds all active
//! classes into one shared [`SubscriptionIndex`] and, for every
//! sequenced batch, matches each event **once** against the index,
//! then slices one pre-encoded frame per class out of the stamped
//! batch buffer — zero re-encode, and for a class that matched the
//! whole batch, a zero-copy reuse of the full frame. Fan-out cost is
//! O(events × classes); delivery to the class's N subscribers is a
//! single broadcast-ring write plus refcounted clones, so it does not
//! grow with N.
//!
//! Each class frame is a 3-part message:
//! `[b"evsub", meta, payload]` where `meta` is
//! `u64 class_seq | u64 batch_first_id | u64 batch_last_id`
//! (big-endian) and `payload` is a standard event-batch encoding of
//! the class's subset. `class_seq` is dense per class — a gap tells
//! the consumer frames were dropped for it (stalled queue, ring
//! overrun). `batch_first_id`/`batch_last_id` are the *full* batch's
//! id range — `first_id` jumping past the consumer's watermark tells
//! it events were sequenced that it never saw offered (aggregator
//! crash between store and publish). Either way the consumer heals
//! from the reliable store instead of being disconnected.

use bytes::{BufMut, Bytes, BytesMut};
use fsmon_events::wire::EVENT_ID_OFFSET;
use fsmon_events::StandardEvent;
use fsmon_mq::pubsub::FilterClass;
use fsmon_mq::{Message, PubSocket};
use fsmon_rules::{CompiledFilter, FilterSpec, SubscriptionIndex};
use std::sync::Arc;

/// Topic of per-class subset frames.
pub const CLASS_TOPIC: &[u8] = b"evsub";

/// Decoded class-frame metadata (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassMeta {
    /// Dense per-class frame sequence.
    pub class_seq: u64,
    /// First global id of the batch this frame was sliced from.
    pub first_id: u64,
    /// Last global id of the batch this frame was sliced from.
    pub last_id: u64,
}

impl ClassMeta {
    /// Encode as the frame's meta part.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(24);
        buf.put_u64(self.class_seq);
        buf.put_u64(self.first_id);
        buf.put_u64(self.last_id);
        buf.split_frozen()
    }

    /// Decode a meta part.
    pub fn decode(raw: &[u8]) -> Option<ClassMeta> {
        if raw.len() != 24 {
            return None;
        }
        let u = |i: usize| u64::from_be_bytes(raw[i..i + 8].try_into().unwrap());
        Some(ClassMeta {
            class_seq: u(0),
            first_id: u(8),
            last_id: u(16),
        })
    }
}

struct ClassLane {
    handle: Arc<FilterClass>,
    /// Byte ranges of this batch's matched events within the stamped
    /// frame, plus their count — reset per batch.
    ranges: Vec<(usize, usize)>,
}

/// Per-sequencer fan-out state: the compiled index, cached against the
/// publisher's filter generation, and per-class scratch.
///
/// Public so the `fanout` bench can drive the exact production match +
/// slice + publish loop; the pipeline only constructs it inside the
/// sequencer.
pub struct FanoutEngine {
    publisher: Arc<PubSocket>,
    generation: u64,
    index: SubscriptionIndex,
    lanes: Vec<ClassLane>,
    match_scratch: Vec<u32>,
    t_matched: Arc<fsmon_telemetry::Counter>,
    t_frames: Arc<fsmon_telemetry::Counter>,
    t_rebuilds: Arc<fsmon_telemetry::Counter>,
    t_classes: Arc<fsmon_telemetry::Gauge>,
}

impl FanoutEngine {
    /// Engine over `publisher`'s registered filter classes.
    pub fn new(publisher: Arc<PubSocket>) -> FanoutEngine {
        let scope = fsmon_telemetry::root().scope("aggregator");
        FanoutEngine {
            publisher,
            // Force the first refresh even on a freshly created
            // publisher (whose generation starts at 0).
            generation: u64::MAX,
            index: SubscriptionIndex::build(Vec::new()),
            lanes: Vec::new(),
            match_scratch: Vec::new(),
            t_matched: scope.counter("fanout_matched_total"),
            t_frames: scope.counter("fanout_frames_total"),
            t_rebuilds: scope.counter("fanout_index_rebuilds_total"),
            t_classes: scope.gauge("fanout_classes"),
        }
    }

    /// Rebuild the subscription index iff the registered-filter set
    /// changed since the last batch.
    fn refresh(&mut self) {
        let generation = self.publisher.filter_generation();
        if generation == self.generation {
            return;
        }
        self.generation = generation;
        let mut filters: Vec<CompiledFilter> = Vec::new();
        let mut lanes: Vec<ClassLane> = Vec::new();
        for key in self.publisher.active_filter_specs() {
            // An unparseable key never matches anything; it stays a
            // registered class so its consumers simply see no frames.
            let Ok(spec) = FilterSpec::parse(&key) else {
                continue;
            };
            let handle = self.publisher.filter_class(&key);
            // The spec's QoS budget lives on the class: enforced once
            // at the broadcast ring, shared by every subscriber of the
            // class (`rate=` is part of the canonical key, so limited
            // and unlimited variants never collide).
            handle.set_rate(spec.rate.unwrap_or(0));
            filters.push(spec.compile());
            lanes.push(ClassLane {
                handle,
                ranges: Vec::new(),
            });
        }
        self.index = SubscriptionIndex::build(filters);
        self.lanes = lanes;
        self.t_rebuilds.inc();
        self.t_classes.set(self.lanes.len() as i64);
    }

    /// Match one stamped batch against every class and publish the
    /// per-class subset frames. `frame` is the full batch frame (u32
    /// count + encoded events) and `id_offsets` the id-field offsets
    /// recorded at encode time, so event `i`'s record spans
    /// `id_offsets[i] - EVENT_ID_OFFSET ..` the next record's start.
    pub fn fan_out(&mut self, events: &[StandardEvent], id_offsets: &[usize], frame: &Bytes) {
        self.refresh();
        if self.lanes.is_empty() || events.is_empty() {
            return;
        }
        for lane in &mut self.lanes {
            lane.ranges.clear();
        }
        let bytes = frame.as_slice();
        for (i, ev) in events.iter().enumerate() {
            self.index.matches_into(ev, &mut self.match_scratch);
            if self.match_scratch.is_empty() {
                continue;
            }
            let start = id_offsets[i] - EVENT_ID_OFFSET;
            let end = match id_offsets.get(i + 1) {
                Some(next) => next - EVENT_ID_OFFSET,
                None => bytes.len(),
            };
            self.t_matched.add(self.match_scratch.len() as u64);
            for &class in &self.match_scratch {
                self.lanes[class as usize].ranges.push((start, end));
            }
        }
        let first_id = events[0].id;
        let last_id = events[events.len() - 1].id;
        for lane in &mut self.lanes {
            // Every class gets a frame for every batch — an empty one
            // still advances the consumer's watermark, which is what
            // makes publish gaps (crash between store and publish)
            // detectable as `first_id > watermark + 1`.
            //
            // A rate-limited class charges its matched count against
            // the class token bucket first; events over budget are
            // dropped from the subset *before* the frame is built. The
            // frame's meta still spans the full batch id range, so this
            // is shed-by-policy: watermarks advance, no gap heal fires,
            // and the class's `shed` counter owns the accounting.
            let admitted = lane.handle.admit(lane.ranges.len());
            lane.ranges.truncate(admitted);
            let payload = if lane.ranges.len() == events.len() {
                // The whole batch matched: reuse the full frame,
                // zero-copy.
                frame.clone()
            } else {
                let total: usize = lane.ranges.iter().map(|(s, e)| e - s).sum();
                let mut buf = BytesMut::with_capacity(4 + total);
                buf.put_u32(lane.ranges.len() as u32);
                for &(start, end) in &lane.ranges {
                    buf.extend_from_slice(&bytes[start..end]);
                }
                buf.split_frozen()
            };
            lane.handle.publish_with(|class_seq| {
                let meta = ClassMeta {
                    class_seq,
                    first_id,
                    last_id,
                }
                .encode();
                Message::from_parts(vec![Bytes::from_static(CLASS_TOPIC), meta, payload])
            });
            self.t_frames.inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmon_events::wire::encode_event_batch_offsets;
    use fsmon_events::{wire::decode_event_batch, EventKind};
    use fsmon_mq::{Context, RingPoll};

    fn stamped_batch(paths: &[&str]) -> (Vec<StandardEvent>, Vec<usize>, Bytes) {
        let mut events: Vec<StandardEvent> = paths
            .iter()
            .map(|p| StandardEvent::new(EventKind::Create, "/r", *p))
            .collect();
        let mut buf = BytesMut::new();
        let mut offsets = Vec::new();
        encode_event_batch_offsets(&events, &mut buf, &mut offsets);
        for (i, (ev, off)) in events.iter_mut().zip(&offsets).enumerate() {
            ev.id = i as u64 + 1;
            fsmon_events::wire::patch_event_id(&mut buf, *off, ev.id);
        }
        let frame = buf.split_frozen();
        (events, offsets, frame)
    }

    #[test]
    fn meta_roundtrip() {
        let meta = ClassMeta {
            class_seq: 7,
            first_id: 100,
            last_id: 163,
        };
        assert_eq!(ClassMeta::decode(meta.encode().as_slice()), Some(meta));
        assert_eq!(ClassMeta::decode(b"short"), None);
    }

    #[test]
    fn subset_frames_carry_exactly_the_matching_events() {
        let ctx = Context::new();
        let publisher = std::sync::Arc::new(ctx.publisher());
        publisher.bind("inproc://fanout-subset").unwrap();
        let spec = FilterSpec::subtree("/keep").canonical();
        let mut cursor = publisher.subscribe_class(&spec);
        let mut engine = FanoutEngine::new(publisher.clone());
        let (events, offsets, frame) = stamped_batch(&["/keep/a", "/drop/b", "/keep/c"]);
        engine.fan_out(&events, &offsets, &frame);
        let msg = match cursor.poll() {
            RingPoll::Frame(m) => m,
            other => panic!("{other:?}"),
        };
        assert_eq!(msg.topic(), CLASS_TOPIC);
        let meta = ClassMeta::decode(msg.part(1).unwrap()).unwrap();
        assert_eq!((meta.class_seq, meta.first_id, meta.last_id), (0, 1, 3));
        let subset = decode_event_batch(&msg.part_bytes(2).unwrap()).unwrap();
        assert_eq!(
            subset.iter().map(|e| e.path.as_str()).collect::<Vec<_>>(),
            ["/keep/a", "/keep/c"]
        );
        assert_eq!(subset.iter().map(|e| e.id).collect::<Vec<_>>(), [1, 3]);
    }

    #[test]
    fn full_match_reuses_the_batch_frame_and_empty_match_sends_meta_only() {
        let ctx = Context::new();
        let publisher = std::sync::Arc::new(ctx.publisher());
        publisher.bind("inproc://fanout-full").unwrap();
        let all = FilterSpec::all().canonical();
        let none = FilterSpec::subtree("/nope").canonical();
        let mut cursor_all = publisher.subscribe_class(&all);
        let mut cursor_none = publisher.subscribe_class(&none);
        let mut engine = FanoutEngine::new(publisher.clone());
        let (events, offsets, frame) = stamped_batch(&["/a", "/b"]);
        engine.fan_out(&events, &offsets, &frame);
        match cursor_all.poll() {
            RingPoll::Frame(m) => {
                let batch = decode_event_batch(&m.part_bytes(2).unwrap()).unwrap();
                assert_eq!(batch.len(), 2);
            }
            other => panic!("{other:?}"),
        }
        match cursor_none.poll() {
            RingPoll::Frame(m) => {
                let batch = decode_event_batch(&m.part_bytes(2).unwrap()).unwrap();
                assert!(
                    batch.is_empty(),
                    "empty subset still ships a watermark frame"
                );
                let meta = ClassMeta::decode(m.part(1).unwrap()).unwrap();
                assert_eq!(meta.last_id, 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rate_limited_class_sheds_over_budget_but_watermark_frames_flow() {
        let ctx = Context::new();
        let publisher = std::sync::Arc::new(ctx.publisher());
        publisher.bind("inproc://fanout-rate").unwrap();
        // Budget of 2 events/second; the bucket starts full, so of a
        // 5-event batch exactly 2 are delivered and 3 shed.
        let spec = FilterSpec::all().with_rate(2).canonical();
        let mut cursor = publisher.subscribe_class(&spec);
        let mut engine = FanoutEngine::new(publisher.clone());
        let (events, offsets, frame) = stamped_batch(&["/a", "/b", "/c", "/d", "/e"]);
        engine.fan_out(&events, &offsets, &frame);
        let msg = match cursor.poll() {
            RingPoll::Frame(m) => m,
            other => panic!("{other:?}"),
        };
        let meta = ClassMeta::decode(msg.part(1).unwrap()).unwrap();
        assert_eq!(
            (meta.first_id, meta.last_id),
            (1, 5),
            "meta spans the full batch so the watermark advances past shed events"
        );
        let subset = decode_event_batch(&msg.part_bytes(2).unwrap()).unwrap();
        assert_eq!(subset.iter().map(|e| e.id).collect::<Vec<_>>(), [1, 2]);
        let class = publisher.filter_class(&spec);
        assert_eq!(class.rate(), 2);
        let stats = class.stats();
        assert_eq!(stats.shed, 3, "over-budget events are counted as shed");
        // An immediately following batch finds an empty bucket: the
        // class still gets its watermark frame, with an empty subset.
        engine.fan_out(&events, &offsets, &frame);
        match cursor.poll() {
            RingPoll::Frame(m) => {
                let subset = decode_event_batch(&m.part_bytes(2).unwrap()).unwrap();
                assert!(subset.is_empty(), "budget exhausted: all shed");
                let meta = ClassMeta::decode(m.part(1).unwrap()).unwrap();
                assert_eq!(meta.last_id, 5);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(publisher.filter_class(&spec).stats().shed, 8);
    }

    #[test]
    fn index_rebuilds_only_on_generation_change() {
        let ctx = Context::new();
        let publisher = std::sync::Arc::new(ctx.publisher());
        publisher.bind("inproc://fanout-gen").unwrap();
        let mut engine = FanoutEngine::new(publisher.clone());
        let (events, offsets, frame) = stamped_batch(&["/x"]);
        engine.fan_out(&events, &offsets, &frame);
        assert_eq!(engine.lanes.len(), 0);
        let gen_after_empty = engine.generation;
        let _cursor = publisher.subscribe_class(&FilterSpec::all().canonical());
        engine.fan_out(&events, &offsets, &frame);
        assert_eq!(engine.lanes.len(), 1);
        assert_ne!(engine.generation, gen_after_empty);
        let gen_stable = engine.generation;
        engine.fan_out(&events, &offsets, &frame);
        assert_eq!(engine.generation, gen_stable);
    }
}
