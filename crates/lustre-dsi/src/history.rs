//! The historic-events API.
//!
//! "An API is provided to the consumers to retrieve historic events
//! from the database whenever a fault occurs" (§IV Aggregation). In a
//! deployed system the consumer and the MGS-side store are different
//! nodes, so the API is a request–reply exchange over the message
//! queue. Wire protocol (multipart):
//!
//! ```text
//! request:  ["replay", u64 since (BE), u32 max (BE)]
//!           ["ack",    u64 up_to (BE)]
//! reply:    ["events", event-batch payload]
//!           ["ok"]
//!           ["error", utf-8 message]
//! ```

use fsmon_events::{decode_event_batch, encode_event_batch, EventId, StandardEvent};
use fsmon_faults::{FaultPoint, Faults};
use fsmon_mq::{Context, Message, MqError, ReqSocket};
use fsmon_store::EventStore;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Counters for the history service.
#[derive(Debug, Clone, Copy, Default)]
pub struct HistoryStats {
    /// Replay requests served.
    pub replays: u64,
    /// Ack requests served.
    pub acks: u64,
    /// Malformed or failed requests.
    pub errors: u64,
}

struct Shared {
    replays: AtomicU64,
    acks: AtomicU64,
    errors: AtomicU64,
    stop: AtomicBool,
}

/// The MGS-side replay service.
pub struct HistoryService {
    shared: Arc<Shared>,
    thread: Option<std::thread::JoinHandle<()>>,
    endpoint: String,
}

impl HistoryService {
    /// Serve `store` at `endpoint` (`inproc://…` or `tcp://…:0`).
    pub fn start(
        ctx: &Context,
        endpoint: &str,
        store: Arc<dyn EventStore>,
    ) -> Result<HistoryService, MqError> {
        Self::start_with_faults(ctx, endpoint, store, Faults::none())
    }

    /// Like [`HistoryService::start`], consulting `faults` at the
    /// [`FaultPoint::HistoryRequest`] site: an injected fault fails the
    /// request with an error reply, which the client's retry loop must
    /// absorb.
    pub fn start_with_faults(
        ctx: &Context,
        endpoint: &str,
        store: Arc<dyn EventStore>,
        faults: Faults,
    ) -> Result<HistoryService, MqError> {
        let rep = ctx.replier();
        rep.bind(endpoint)?;
        let endpoint_actual = match rep.local_addr() {
            Some(addr) => format!("tcp://{addr}"),
            None => endpoint.to_string(),
        };
        let shared = Arc::new(Shared {
            replays: AtomicU64::new(0),
            acks: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        });
        let shared_t = shared.clone();
        let thread = std::thread::Builder::new()
            .name("history-service".into())
            .spawn(move || {
                while !shared_t.stop.load(Ordering::Relaxed) {
                    let Ok(incoming) = rep.recv_timeout(Duration::from_millis(50)) else {
                        continue;
                    };
                    let reply = Self::handle(&store, &incoming.request, &shared_t, &faults);
                    let _ = incoming.reply(reply);
                }
            })
            .expect("spawn history service");
        Ok(HistoryService {
            shared,
            thread: Some(thread),
            endpoint: endpoint_actual,
        })
    }

    fn handle(
        store: &Arc<dyn EventStore>,
        request: &Message,
        shared: &Shared,
        faults: &Faults,
    ) -> Message {
        let error = |msg: &str| {
            shared.errors.fetch_add(1, Ordering::Relaxed);
            Message::from_parts(vec![b"error".to_vec(), msg.as_bytes().to_vec()])
        };
        if faults.inject_or_delay(FaultPoint::HistoryRequest) {
            return error("injected: history service unavailable");
        }
        match request.part(0) {
            Some(b"replay") => {
                let (Some(since_raw), Some(max_raw)) = (request.part(1), request.part(2)) else {
                    return error("replay requires since and max");
                };
                let (Ok(since_bytes), Ok(max_bytes)) =
                    (<[u8; 8]>::try_from(since_raw), <[u8; 4]>::try_from(max_raw))
                else {
                    return error("malformed replay fields");
                };
                let since = u64::from_be_bytes(since_bytes);
                let max = u32::from_be_bytes(max_bytes) as usize;
                match store.get_since(since, max.min(1 << 20)) {
                    Ok(events) => {
                        shared.replays.fetch_add(1, Ordering::Relaxed);
                        Message::from_parts(vec![
                            bytes::Bytes::from_static(b"events"),
                            encode_event_batch(&events),
                        ])
                    }
                    Err(e) => error(&format!("store: {e}")),
                }
            }
            Some(b"ack") => {
                let Some(up_to_raw) = request.part(1) else {
                    return error("ack requires up_to");
                };
                let Ok(up_to_bytes) = <[u8; 8]>::try_from(up_to_raw) else {
                    return error("malformed ack field");
                };
                match store.mark_reported(u64::from_be_bytes(up_to_bytes)) {
                    Ok(()) => {
                        shared.acks.fetch_add(1, Ordering::Relaxed);
                        Message::single(b"ok".to_vec())
                    }
                    Err(e) => error(&format!("store: {e}")),
                }
            }
            _ => error("unknown request"),
        }
    }

    /// The endpoint clients connect their REQ sockets to.
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// Counters so far.
    pub fn stats(&self) -> HistoryStats {
        HistoryStats {
            replays: self.shared.replays.load(Ordering::Relaxed),
            acks: self.shared.acks.load(Ordering::Relaxed),
            errors: self.shared.errors.load(Ordering::Relaxed),
        }
    }

    /// Stop the service thread.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for HistoryService {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// A client of the history service.
pub struct HistoryClient {
    req: ReqSocket,
    timeout: Duration,
}

impl HistoryClient {
    /// Connect to a history service.
    pub fn connect(ctx: &Context, endpoint: &str) -> Result<HistoryClient, MqError> {
        let req = ctx.requester();
        req.connect(endpoint)?;
        Ok(HistoryClient {
            req,
            timeout: Duration::from_secs(5),
        })
    }

    /// Set the per-request timeout.
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// Fetch events with id greater than `since`.
    pub fn replay_since(&self, since: EventId, max: u32) -> Result<Vec<StandardEvent>, MqError> {
        let request = Message::from_parts(vec![
            b"replay".to_vec(),
            since.to_be_bytes().to_vec(),
            max.to_be_bytes().to_vec(),
        ]);
        let reply = self.req.request(request, self.timeout)?;
        match reply.part(0) {
            Some(b"events") => {
                let payload = bytes::Bytes::copy_from_slice(reply.part(1).unwrap_or(&[]));
                decode_event_batch(&payload).map_err(|_| MqError::Disconnected)
            }
            _ => Err(MqError::Disconnected),
        }
    }

    /// Like [`HistoryClient::replay_since`], retrying error replies
    /// and timeouts under `retry` — the client-side healing path for
    /// injected [`FaultPoint::HistoryRequest`] failures.
    pub fn replay_since_retry(
        &self,
        since: EventId,
        max: u32,
        retry: &fsmon_faults::Retry,
    ) -> Result<Vec<StandardEvent>, MqError> {
        retry.run(|_| self.replay_since(since, max))
    }

    /// Flag events up to `up_to` as reported.
    pub fn ack(&self, up_to: EventId) -> Result<(), MqError> {
        let request = Message::from_parts(vec![b"ack".to_vec(), up_to.to_be_bytes().to_vec()]);
        let reply = self.req.request(request, self.timeout)?;
        match reply.part(0) {
            Some(b"ok") => Ok(()),
            _ => Err(MqError::Disconnected),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmon_events::{EventKind, StandardEvent};
    use fsmon_store::MemStore;

    fn service_with_events(n: u64) -> (Context, HistoryService, Arc<dyn EventStore>) {
        let ctx = Context::new();
        let store: Arc<dyn EventStore> = Arc::new(MemStore::new());
        for i in 0..n {
            store
                .append(&StandardEvent::new(
                    EventKind::Create,
                    "/r",
                    format!("f{i}"),
                ))
                .unwrap();
        }
        let svc = HistoryService::start(&ctx, "inproc://history", store.clone()).unwrap();
        (ctx, svc, store)
    }

    #[test]
    fn replay_over_the_wire() {
        let (ctx, svc, _store) = service_with_events(10);
        let client = HistoryClient::connect(&ctx, "inproc://history").unwrap();
        let events = client.replay_since(4, 100).unwrap();
        assert_eq!(events.len(), 6);
        assert_eq!(events[0].id, 5);
        assert_eq!(svc.stats().replays, 1);
        svc.stop();
    }

    #[test]
    fn ack_advances_watermark_remotely() {
        let (ctx, svc, store) = service_with_events(5);
        let client = HistoryClient::connect(&ctx, "inproc://history").unwrap();
        client.ack(3).unwrap();
        assert_eq!(store.stats().reported_seq, 3);
        store.purge_reported().unwrap();
        let events = client.replay_since(0, 100).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(svc.stats().acks, 1);
        svc.stop();
    }

    #[test]
    fn malformed_requests_get_error_replies() {
        let (ctx, svc, _store) = service_with_events(1);
        let req = ctx.requester();
        req.connect("inproc://history").unwrap();
        let reply = req
            .request(Message::single(b"bogus".to_vec()), Duration::from_secs(1))
            .unwrap();
        assert_eq!(reply.part(0), Some(&b"error"[..]));
        let reply = req
            .request(
                Message::from_parts(vec![b"replay".to_vec(), vec![1, 2]]),
                Duration::from_secs(1),
            )
            .unwrap();
        assert_eq!(reply.part(0), Some(&b"error"[..]));
        assert_eq!(svc.stats().errors, 2);
        svc.stop();
    }

    #[test]
    fn tcp_history_service() {
        let ctx = Context::new();
        let store: Arc<dyn EventStore> = Arc::new(MemStore::new());
        store
            .append(&StandardEvent::new(EventKind::Create, "/r", "x"))
            .unwrap();
        let svc = HistoryService::start(&ctx, "tcp://127.0.0.1:0", store).unwrap();
        let client = HistoryClient::connect(&ctx, svc.endpoint()).unwrap();
        let events = client.replay_since(0, 10).unwrap();
        assert_eq!(events.len(), 1);
        svc.stop();
    }

    #[test]
    fn injected_faults_fail_requests_and_retry_heals() {
        use fsmon_faults::{FaultPlan, FaultRule, Retry};
        let ctx = Context::new();
        let store: Arc<dyn EventStore> = Arc::new(MemStore::new());
        for i in 0..5 {
            store
                .append(&StandardEvent::new(
                    EventKind::Create,
                    "/r",
                    format!("f{i}"),
                ))
                .unwrap();
        }
        // Every request fails until the 4-injection budget runs dry.
        let faults = FaultPlan::new(7)
            .with(
                FaultPoint::HistoryRequest,
                FaultRule::per_10k(10_000).limit(4),
            )
            .arm();
        let svc = HistoryService::start_with_faults(&ctx, "inproc://history-faulty", store, faults)
            .unwrap();
        let client = HistoryClient::connect(&ctx, "inproc://history-faulty").unwrap();
        assert!(
            client.replay_since(0, 100).is_err(),
            "first request hits the injected fault"
        );
        let events = client
            .replay_since_retry(0, 100, &Retry::fast())
            .expect("retry outlasts the injection budget");
        assert_eq!(events.len(), 5);
        assert!(svc.stats().errors >= 1);
        svc.stop();
    }

    #[test]
    fn max_caps_reply_size() {
        let (ctx, svc, _store) = service_with_events(50);
        let client = HistoryClient::connect(&ctx, "inproc://history").unwrap();
        let events = client.replay_since(0, 7).unwrap();
        assert_eq!(events.len(), 7);
        svc.stop();
    }
}
