#![warn(missing_docs)]

//! # fsmon-lustre
//!
//! FSMonitor's scalable event monitor for distributed file systems
//! (paper §IV), implemented against the simulated Lustre substrate:
//!
//! * [`Collector`] — one per MDS. Reads batches from that MDT's
//!   Changelog, resolves FIDs to absolute paths with an LRU cache in
//!   front of `fid2path` (Algorithm 1, including the UNLNK/RMDIR parent
//!   fallback, the `ParentDirectoryRemoved` terminal case, and RENME
//!   old/new resolution), publishes standardized events to the
//!   aggregator, and purges the Changelog behind itself.
//! * [`Aggregator`] — runs on the MGS. Subscribes to every collector,
//!   and with two worker roles publishes aggregated events to consumers
//!   while persisting them to the reliable event store.
//! * [`Consumer`] — subscribes to the aggregator, filters client-side
//!   (paper §IV Consumption), and exposes replay from the store for
//!   fault recovery.
//! * [`ScalableMonitor`] — wires collectors + aggregator + a consumer
//!   together over inproc or TCP endpoints; [`LustreDsi`] adapts the
//!   whole pipeline to `fsmon-core`'s [`StorageInterface`] so Lustre is
//!   just another DSI to FSMonitor.
//! * [`robinhood`] — the round-robin, client-side-processing baseline
//!   the paper compares against (§V-D5).
//!
//! ```
//! use lustre_sim::{LustreFs, LustreConfig};
//! use fsmon_lustre::{ScalableMonitor, ScalableConfig};
//!
//! let fs = LustreFs::new(LustreConfig::small_dne(2));
//! let monitor = ScalableMonitor::start(&fs, ScalableConfig::default()).unwrap();
//! let client = fs.client();
//! client.create("/data.bin").unwrap();
//! let events = monitor.consumer().recv_batch(10, std::time::Duration::from_secs(2));
//! assert_eq!(events.len(), 1);
//! assert_eq!(events[0].path, "/data.bin");
//! monitor.stop();
//! ```

pub mod aggregator;
pub mod collector;
pub mod consumer;
pub mod cursor;
pub mod fanout;
pub mod history;
pub mod monitor;
pub mod robinhood;
pub mod sharded;
pub mod subscriber;

pub use aggregator::{Aggregator, AggregatorStats};
pub use collector::{Collector, CollectorStats};
pub use consumer::Consumer;
pub use cursor::CursorFile;
pub use fanout::{ClassMeta, FanoutEngine, CLASS_TOPIC};
pub use history::{HistoryClient, HistoryService, HistoryStats};
pub use monitor::{LustreDsi, ScalableConfig, ScalableMonitor, Transport};
pub use robinhood::{RobinhoodConfig, RobinhoodMonitor, RobinhoodStats};
pub use sharded::{
    FederatedConsumer, FederatedFilteredConsumer, FederatedFilteredSubscriber, ShardPlan,
    ShardedAggregator,
};
pub use subscriber::{FilteredConsumer, FilteredStats, FilteredSubscriber};
