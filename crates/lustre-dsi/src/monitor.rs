//! The assembled scalable monitor and its DSI adapter.
//!
//! [`ScalableMonitor::start`] wires the full Fig. 4 pipeline over a
//! simulated Lustre deployment: one collector thread per MDS, an
//! aggregator on the (conceptual) MGS, and a consumer on the client.
//! [`LustreDsi`] adapts the pipeline to `fsmon-core`'s
//! [`StorageInterface`], making Lustre one more pluggable DSI.

use crate::collector::{Collector, CollectorStats};
use crate::consumer::Consumer;
use crate::sharded::{FederatedConsumer, ShardPlan, ShardedAggregator};
use fsmon_core::dsi::{DsiError, RawEvent, StorageInterface};
use fsmon_core::EventFilter;
use fsmon_events::MonitorSource;
use fsmon_faults::{FaultPoint, Faults, Retry};
use fsmon_mq::Context;
use fsmon_store::{EventStore, MemStore};
use lustre_sim::LustreFs;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Which transport connects the pipeline stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Transport {
    /// In-process channels (single-host runs, tests, benchmarks).
    #[default]
    Inproc,
    /// TCP loopback — the deployment shape of the real system
    /// (collector on each MDS, aggregator on the MGS).
    Tcp,
}

/// Configuration for the scalable monitor.
#[derive(Clone)]
pub struct ScalableConfig {
    /// LRU capacity for each collector's `fid2path` cache (0 disables;
    /// the paper settles on 5000, §V-D4).
    pub cache_size: usize,
    /// Changelog records per collector batch.
    pub batch_size: usize,
    /// Stage transport.
    pub transport: Transport,
    /// Watch root reported on standardized events.
    pub watch_root: String,
    /// Collector idle sleep when the changelog is empty.
    pub idle_sleep: Duration,
    /// Reliable event store (defaults to in-memory, or a [`FileStore`]
    /// under [`store_dir`] when that is set).
    ///
    /// [`FileStore`]: fsmon_store::FileStore
    /// [`store_dir`]: ScalableConfig::store_dir
    pub store: Option<Arc<dyn EventStore>>,
    /// When `store` is `None` and this is set, the monitor opens a
    /// durable [`fsmon_store::FileStore`] in this directory (segment
    /// size [`store_segment_bytes`], flush policy [`durability`], the
    /// config's fault plane armed on its injection points).
    ///
    /// [`store_segment_bytes`]: ScalableConfig::store_segment_bytes
    /// [`durability`]: ScalableConfig::durability
    pub store_dir: Option<std::path::PathBuf>,
    /// Segment roll threshold for a [`store_dir`]-opened store, bytes.
    ///
    /// [`store_dir`]: ScalableConfig::store_dir
    pub store_segment_bytes: u64,
    /// Flush policy for a [`store_dir`]-opened store.
    ///
    /// [`store_dir`]: ScalableConfig::store_dir
    pub durability: fsmon_store::Durability,
    /// How often the janitor purges reported events from the store
    /// ("they are flagged as having been reported and can be removed
    /// from the data store when next data purge cycle is initiated",
    /// §IV Consumption). `None` disables automatic purging.
    pub purge_interval: Option<Duration>,
    /// Path of a crash-safe per-MDT cursor file. When set, collectors
    /// resume from the persisted cursors at start and persist progress
    /// as they go — a monitor restart neither loses nor duplicates
    /// records.
    pub cursor_file: Option<std::path::PathBuf>,
    /// Fault plane consulted by collector lanes (crash injection) and
    /// armed on the aggregator's consumer-facing link. Unarmed
    /// ([`Faults::none`]) by default; the supervisor restarts whatever
    /// the plane kills.
    pub faults: Faults,
    /// Retry policy handed to collectors (transient MDS errors) and the
    /// aggregator's store lane.
    pub retry: Retry,
    /// Worker threads each collector uses to resolve `fid2path`
    /// concurrently against its sharded cache (1 = inline, the serial
    /// baseline). Resolution dominates collector cost (§V-D), so this
    /// is the pipeline's primary scaling knob.
    pub resolver_threads: usize,
    /// Aggregator publish-side worker lanes (decode/dedup/encode fan
    /// out by collector topic; the single sequencer keeps ids dense).
    pub publish_lanes: usize,
    /// Aggregator shards (K). 1 (the default) is the classic single
    /// MGS aggregator. With K > 1 the MDTs partition `mdt % K` across
    /// K full aggregator pipelines, each stamping its own dense id
    /// stream into its own store shard; consumers federate the shard
    /// streams behind a vector watermark (see [`crate::sharded`]).
    /// K > 1 requires per-shard stores: set [`store_dir`] (each shard
    /// opens `store_dir/shard-<k>`) or leave both store fields unset
    /// (one `MemStore` per shard) — a single shared
    /// [`store`](ScalableConfig::store) is rejected.
    ///
    /// [`store_dir`]: ScalableConfig::store_dir
    pub aggregator_shards: usize,
    /// Most events each shard's store lane folds into one group
    /// commit. The default keeps commits large and rare; benches
    /// shrink it to make a workload commit-bound.
    pub store_group_max: usize,
    /// Trace sampling rate: this many events out of every 10 000 carry
    /// an end-to-end trace record through the pipeline (0 disables
    /// tracing entirely — untraced runs pay zero wire bytes). Stamps
    /// come from the simulated Lustre clock, so traces are
    /// deterministic under a seeded chaos run.
    pub trace_sample_per_10k: u32,
    /// Tail-biased trace sampling: when a collector batch's resolve
    /// latency reaches this many nanoseconds, a trace is forced for
    /// that batch even if the uniform sampler skips it, keeping p99
    /// exemplars sharp at low `trace_sample_per_10k` rates. 0 disables
    /// the bias.
    pub trace_tail_threshold_ns: u64,
    /// Clock the tracer stamps stages with. `None` (the default) uses
    /// the simulated Lustre clock, which only advances with workload
    /// operations — right for deterministic chaos traces, wrong for a
    /// saturated drain of a pre-built backlog where no operations run.
    /// Benches that need real queue-delay latencies supply a wall
    /// clock here.
    pub trace_clock: Option<fsmon_telemetry::ClockFn>,
    /// Self-observability: when set, the monitor runs a
    /// [`fsmon_telemetry::HealthMonitor`] evaluating the configured
    /// SLO over windowed snapshot series (local and fleet-merged
    /// scopes), serving the HTTP observer endpoint, and dumping
    /// incident bundles on SLO breach or supervisor-observed lane
    /// restarts.
    pub health: Option<fsmon_telemetry::HealthOptions>,
}

impl Default for ScalableConfig {
    fn default() -> Self {
        ScalableConfig {
            cache_size: 5000,
            batch_size: 1024,
            transport: Transport::Inproc,
            watch_root: "/mnt/lustre".to_string(),
            idle_sleep: Duration::from_micros(200),
            store: None,
            store_dir: None,
            store_segment_bytes: fsmon_store::file::DEFAULT_SEGMENT_BYTES,
            durability: fsmon_store::Durability::None,
            purge_interval: Some(Duration::from_secs(30)),
            cursor_file: None,
            faults: Faults::none(),
            retry: Retry::fast(),
            resolver_threads: 4,
            publish_lanes: 2,
            aggregator_shards: 1,
            store_group_max: crate::aggregator::DEFAULT_STORE_GROUP_MAX,
            trace_sample_per_10k: 0,
            trace_tail_threshold_ns: 0,
            trace_clock: None,
            health: None,
        }
    }
}

impl ScalableConfig {
    /// Default configuration with the cache disabled (the paper's
    /// "without cache" rows).
    pub fn without_cache() -> ScalableConfig {
        ScalableConfig {
            cache_size: 0,
            ..ScalableConfig::default()
        }
    }
}

static MONITOR_SEQ: AtomicU64 = AtomicU64::new(0);

/// The running pipeline.
pub struct ScalableMonitor {
    collectors: Vec<Arc<Mutex<Collector>>>,
    collector_alive: Vec<Arc<AtomicBool>>,
    threads: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    aggregator: Arc<ShardedAggregator>,
    consumer: Arc<FederatedConsumer>,
    ctx: Context,
    stop: Arc<AtomicBool>,
    watch_root: String,
    /// Wall time each collector spent inside `step()` (ns), indexed by
    /// MDT. Busy time, not wall time, is what determines a collector's
    /// service capacity on a shared-core host.
    collector_busy_ns: Vec<Arc<AtomicU64>>,
    /// One historic-events service per aggregator shard (shard 0
    /// doubles as the classic single endpoint).
    history: Vec<crate::history::HistoryService>,
    collector_restarts: Arc<AtomicU64>,
    tracer: fsmon_telemetry::Tracer,
    health: Option<Arc<fsmon_telemetry::HealthMonitor>>,
}

/// Everything one collector lane thread needs; bundled so the
/// supervisor can respawn a lane with the same wiring.
struct CollectorLane {
    collector: Arc<Mutex<Collector>>,
    alive: Arc<AtomicBool>,
    busy: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    idle: Duration,
    cursors: Option<Arc<Mutex<crate::cursor::CursorFile>>>,
    faults: Faults,
    mdt: u16,
}

/// Run one collector lane until stop — or until an injected crash
/// kills it between publishing a batch and persisting its cursor (the
/// worst-case window: the restarted incarnation re-reads and
/// re-publishes, and the aggregator's changelog-index dedup absorbs
/// the duplicates).
fn spawn_collector_lane(threads: &Mutex<Vec<std::thread::JoinHandle<()>>>, lane: CollectorLane) {
    lane.alive.store(true, Ordering::Relaxed);
    let step_ns = fsmon_telemetry::root()
        .scope("collector")
        .with_label("mdt", lane.mdt.to_string())
        .histogram("step_ns");
    let handle = std::thread::Builder::new()
        .name(format!("collector-mdt{}", lane.mdt))
        .spawn(move || {
            while !lane.stop.load(Ordering::Relaxed) {
                // Breach-injection point: a stall keeps the lane alive
                // but stops it draining, growing ingest lag until the
                // health engine's SLO fires.
                lane.faults.inject_or_delay(FaultPoint::CollectorStall);
                let t0 = std::time::Instant::now();
                let (produced, cursor) = {
                    let mut c = lane.collector.lock();
                    (c.step().len(), c.last_index())
                };
                if lane.faults.inject(FaultPoint::CollectorCrash).is_some() {
                    // Died before the cursor flush below.
                    lane.alive.store(false, Ordering::Relaxed);
                    return;
                }
                if produced == 0 {
                    std::thread::sleep(lane.idle);
                } else {
                    let elapsed = t0.elapsed().as_nanos() as u64;
                    lane.busy.fetch_add(elapsed, Ordering::Relaxed);
                    step_ns.record(elapsed);
                    if let Some(cursors) = &lane.cursors {
                        let mut cf = cursors.lock();
                        cf.advance(lane.mdt, cursor);
                        let _ = cf.flush();
                    }
                }
            }
            lane.alive.store(false, Ordering::Relaxed);
        })
        .expect("spawn collector thread");
    threads.lock().push(handle);
}

impl ScalableMonitor {
    /// Start collectors, aggregator, and a consumer over `fs`.
    pub fn start(
        fs: &Arc<LustreFs>,
        config: ScalableConfig,
    ) -> Result<ScalableMonitor, fsmon_mq::MqError> {
        let ctx = Context::new();
        let run_id = MONITOR_SEQ.fetch_add(1, Ordering::Relaxed);
        let shards = config.aggregator_shards.max(1);
        let open_file_store =
            |dir: &std::path::Path| -> Result<Arc<dyn EventStore>, fsmon_mq::MqError> {
                let options = fsmon_store::FileStoreOptions {
                    segment_bytes: config.store_segment_bytes,
                    durability: config.durability,
                    faults: config.faults.clone(),
                    ..fsmon_store::FileStoreOptions::default()
                };
                let fs_store = fsmon_store::FileStore::open_with_options(dir, options)
                    .map_err(|e| fsmon_mq::MqError::BindFailed(format!("store: {e}")))?;
                Ok(Arc::new(fs_store))
            };
        // One store per shard: each shard's sequencer resumes its dense
        // id stream from its *own* store, so the stores cannot be
        // shared or pooled.
        let stores: Vec<Arc<dyn EventStore>> = match (&config.store, &config.store_dir, shards) {
            (Some(store), _, 1) => vec![store.clone()],
            (Some(_), _, _) => {
                return Err(fsmon_mq::MqError::BindFailed(
                    "aggregator_shards > 1 needs one store per shard: set store_dir \
                     (each shard opens store_dir/shard-<k>) instead of a single shared store"
                        .to_string(),
                ))
            }
            (None, Some(dir), 1) => vec![open_file_store(dir)?],
            (None, Some(dir), k) => {
                let mut stores = Vec::with_capacity(k);
                for shard in 0..k {
                    stores.push(open_file_store(&dir.join(format!("shard-{shard}")))?);
                }
                stores
            }
            (None, None, k) => (0..k)
                .map(|_| Arc::new(MemStore::new()) as Arc<dyn EventStore>)
                .collect(),
        };
        // Arm the simulated MDS: fid2path and changelog calls consult
        // the plane (a no-op unless the plan armed those points).
        fs.arm_faults(config.faults.clone());

        // The pipeline tracer stamps stages with the *simulated* clock:
        // under a seeded chaos run the whole workload (and therefore
        // every clock advance) is deterministic, so traces are too.
        let tracer = if config.trace_sample_per_10k > 0 || config.trace_tail_threshold_ns > 0 {
            let clock = config.trace_clock.clone().unwrap_or_else(|| {
                let clock_fs = fs.clone();
                Arc::new(move || clock_fs.clock().now_ns())
            });
            fsmon_telemetry::Tracer::new(config.trace_sample_per_10k, clock)
                .with_tail_threshold(config.trace_tail_threshold_ns)
        } else {
            fsmon_telemetry::Tracer::disabled()
        };

        // Persisted cursors: resume collectors where the previous
        // incarnation stopped.
        let cursors = match &config.cursor_file {
            Some(path) => Some(Arc::new(Mutex::new(
                crate::cursor::CursorFile::open(path)
                    .map_err(|e| fsmon_mq::MqError::BindFailed(format!("cursor file: {e}")))?,
            ))),
            None => None,
        };

        // Bind one publisher per collector, recording resolved endpoints.
        let mut collector_endpoints = Vec::new();
        let mut collectors = Vec::new();
        for i in 0..fs.mdt_count() {
            let publisher = ctx.publisher();
            let endpoint = match config.transport {
                Transport::Inproc => {
                    let ep = format!("inproc://fsmon-{run_id}-mdt{i}");
                    publisher.bind(&ep)?;
                    ep
                }
                Transport::Tcp => {
                    publisher.bind("tcp://127.0.0.1:0")?;
                    format!("tcp://{}", publisher.local_addr().expect("tcp bound"))
                }
            };
            collector_endpoints.push(endpoint);
            let collector = match &cursors {
                Some(cursors) => Collector::resume(
                    fs.mdt(i),
                    config.watch_root.clone(),
                    config.cache_size,
                    config.batch_size,
                    Some(publisher),
                    cursors.lock().get(i),
                ),
                None => Collector::new(
                    fs.mdt(i),
                    config.watch_root.clone(),
                    config.cache_size,
                    config.batch_size,
                    Some(publisher),
                ),
            };
            collectors.push(Arc::new(Mutex::new(
                collector
                    .with_retry(config.retry)
                    .with_resolver_threads(config.resolver_threads)
                    .with_tracer(tracer.clone()),
            )));
        }

        // One consumer-facing endpoint per shard. The K=1 name stays
        // the pre-sharding one so single-aggregator runs are
        // byte-identical.
        let consumer_endpoints: Vec<String> = (0..shards)
            .map(|k| match config.transport {
                Transport::Inproc if shards == 1 => format!("inproc://fsmon-{run_id}-agg"),
                Transport::Inproc => format!("inproc://fsmon-{run_id}-agg-s{k}"),
                Transport::Tcp => "tcp://127.0.0.1:0".to_string(),
            })
            .collect();
        let aggregator = Arc::new(ShardedAggregator::start(
            &ctx,
            ShardPlan {
                collector_endpoints: collector_endpoints.clone(),
                consumer_endpoints,
                stores: stores.clone(),
                faults: config.faults.clone(),
                retry: config.retry,
                publish_lanes: config.publish_lanes,
                tracer: tracer.clone(),
                store_group_max: config.store_group_max,
            },
        )?);
        // The MGS also serves the historic-events API over REQ/REP —
        // one service per shard store, consulting the same fault plane
        // (injected request failures exercise the client-side retry
        // path).
        let mut history = Vec::with_capacity(shards);
        for (k, store) in stores.iter().enumerate() {
            let history_endpoint = match config.transport {
                Transport::Inproc if shards == 1 => format!("inproc://fsmon-{run_id}-history"),
                Transport::Inproc => format!("inproc://fsmon-{run_id}-history-s{k}"),
                Transport::Tcp => "tcp://127.0.0.1:0".to_string(),
            };
            history.push(crate::history::HistoryService::start_with_faults(
                &ctx,
                &history_endpoint,
                store.clone(),
                config.faults.clone(),
            )?);
        }
        // Give TCP subscriptions a beat to register publisher-side.
        if config.transport == Transport::Tcp {
            std::thread::sleep(Duration::from_millis(100));
        }
        // The main consumer: one lane per shard, federated behind the
        // classic API with a vector watermark and a bounded-reordering
        // merge.
        let mut consumer_lanes = Vec::with_capacity(shards);
        for (endpoint, store) in aggregator.consumer_endpoints().iter().zip(&stores) {
            consumer_lanes.push(Arc::new(Consumer::connect_traced(
                &ctx,
                endpoint,
                EventFilter::all(),
                Some(store.clone()),
                "main",
                tracer.clone(),
            )?));
        }
        let consumer = Arc::new(FederatedConsumer::from_parts(consumer_lanes));
        if config.transport == Transport::Tcp {
            std::thread::sleep(Duration::from_millis(100));
        }

        // One collection thread per MDS (Fig. 4: "deploying collectors
        // on individual MDSs enables every MDS to be monitored in
        // parallel").
        let stop = Arc::new(AtomicBool::new(false));
        let threads: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        // The janitor: periodic purge cycles over the reliable store,
        // plus a per-tick flush check so a time-based durability policy
        // bounds the tail-loss window even when the store goes idle
        // (commit-time checks alone only fire while events arrive). It
        // runs whenever either duty exists — purging enabled, or a
        // store whose durability policy needs the flush ticker — so
        // `Durability::IntervalMs` keeps its bound with purging off.
        if config.purge_interval.is_some() || stores.iter().any(|s| s.needs_flush_ticker()) {
            let purge_interval = config.purge_interval;
            let stores = stores.clone();
            let stop = stop.clone();
            let janitor = fsmon_telemetry::root().scope("janitor");
            let purge_ns = janitor.histogram("purge_ns");
            let idle_flushes = janitor.counter("idle_flushes_total");
            threads.lock().push(
                std::thread::Builder::new()
                    .name("store-janitor".into())
                    .spawn(move || {
                        let mut slept = Duration::ZERO;
                        while !stop.load(Ordering::Relaxed) {
                            std::thread::sleep(Duration::from_millis(20));
                            slept += Duration::from_millis(20);
                            for store in &stores {
                                if let Ok(true) = store.flush_if_due() {
                                    idle_flushes.inc();
                                }
                            }
                            if let Some(interval) = purge_interval {
                                if slept >= interval {
                                    slept = Duration::ZERO;
                                    let t0 = std::time::Instant::now();
                                    for store in &stores {
                                        let _ = store.purge_reported();
                                    }
                                    purge_ns.record(t0.elapsed().as_nanos() as u64);
                                }
                            }
                        }
                    })
                    .expect("spawn janitor thread"),
            );
        }
        let mut collector_busy_ns = Vec::new();
        let mut collector_alive = Vec::new();
        for (i, collector) in collectors.iter().enumerate() {
            let busy = Arc::new(AtomicU64::new(0));
            let alive = Arc::new(AtomicBool::new(false));
            collector_busy_ns.push(busy.clone());
            collector_alive.push(alive.clone());
            spawn_collector_lane(
                &threads,
                CollectorLane {
                    collector: collector.clone(),
                    alive,
                    busy,
                    stop: stop.clone(),
                    idle: config.idle_sleep,
                    cursors: cursors.clone(),
                    faults: config.faults.clone(),
                    mdt: i as u16,
                },
            );
        }
        let collector_restarts = Arc::new(AtomicU64::new(0));

        // Self-observability: the health engine ticks over the global
        // registry (local scope) and the aggregator's fleet-merged view
        // (fleet scope). Started before the supervisor so lane-restart
        // crashes can be reported to it.
        let health = match &config.health {
            Some(opts) => {
                let mut opts = opts.clone();
                if opts.config_desc.is_empty() {
                    opts.config_desc = format!(
                        "mdts={} cache={} batch={} resolver_threads={} publish_lanes={} trace_per_10k={}",
                        fs.mdt_count(),
                        config.cache_size,
                        config.batch_size,
                        config.resolver_threads,
                        config.publish_lanes,
                        config.trace_sample_per_10k,
                    );
                }
                let local: fsmon_telemetry::health::SnapshotFn =
                    Arc::new(|| fsmon_telemetry::global().snapshot());
                let fleet_agg = aggregator.clone();
                let fleet: fsmon_telemetry::health::SnapshotFn =
                    Arc::new(move || fleet_agg.fleet_snapshot());
                let monitor = fsmon_telemetry::HealthMonitor::spawn(local, Some(fleet), opts)
                    .map_err(|e| fsmon_mq::MqError::BindFailed(format!("health http: {e}")))?;
                Some(Arc::new(monitor))
            }
            None => None,
        };

        // The supervisor: polls lane liveness and restarts whatever
        // died. A restarted collector resumes from the durable cursor
        // (or the surviving in-memory one) on a fresh endpoint, with a
        // fresh changelog user — the dead incarnation's user is
        // deregistered only after the new one is registered, so its
        // watermark never stops pinning the unconsumed tail.
        {
            let stop = stop.clone();
            let threads_sup = threads.clone();
            let aggregator = aggregator.clone();
            let collectors = collectors.clone();
            let alive = collector_alive.clone();
            let busy = collector_busy_ns.clone();
            let cursors = cursors.clone();
            let fs = fs.clone();
            let ctx = ctx.clone();
            let restarts = collector_restarts.clone();
            let config = config.clone();
            let tracer = tracer.clone();
            let health_sup = health.clone();
            let handle = std::thread::Builder::new()
                .name("fsmon-supervisor".into())
                .spawn(move || {
                    let scope = fsmon_telemetry::root().scope("supervisor");
                    let mut generation = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        std::thread::sleep(Duration::from_millis(5));
                        aggregator.respawn_dead_lanes();
                        for i in 0..collectors.len() {
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                            if alive[i].load(Ordering::Relaxed) {
                                continue;
                            }
                            generation += 1;
                            let mdt = i as u16;
                            let cursor = match &cursors {
                                Some(cf) => cf.lock().get(mdt),
                                None => collectors[i].lock().last_index(),
                            };
                            let publisher = ctx.publisher();
                            let endpoint = match config.transport {
                                Transport::Inproc => {
                                    let ep =
                                        format!("inproc://fsmon-{run_id}-mdt{i}-r{generation}");
                                    if publisher.bind(&ep).is_err() {
                                        continue;
                                    }
                                    ep
                                }
                                Transport::Tcp => {
                                    if publisher.bind("tcp://127.0.0.1:0").is_err() {
                                        continue;
                                    }
                                    format!("tcp://{}", publisher.local_addr().expect("tcp bound"))
                                }
                            };
                            if aggregator.attach_collector(mdt, &endpoint).is_err() {
                                continue;
                            }
                            let fresh = Collector::resume(
                                fs.mdt(mdt),
                                config.watch_root.clone(),
                                config.cache_size,
                                config.batch_size,
                                Some(publisher),
                                cursor,
                            )
                            .with_retry(config.retry)
                            .with_resolver_threads(config.resolver_threads)
                            .with_tracer(tracer.clone());
                            let dead = std::mem::replace(&mut *collectors[i].lock(), fresh);
                            dead.shutdown();
                            restarts.fetch_add(1, Ordering::Relaxed);
                            scope
                                .with_label("lane", format!("mdt{i}"))
                                .counter("restarts_total")
                                .inc();
                            if let Some(h) = &health_sup {
                                h.note_crash(&format!("collector-mdt{i}-restart"));
                            }
                            spawn_collector_lane(
                                &threads_sup,
                                CollectorLane {
                                    collector: collectors[i].clone(),
                                    alive: alive[i].clone(),
                                    busy: busy[i].clone(),
                                    stop: stop.clone(),
                                    idle: config.idle_sleep,
                                    cursors: cursors.clone(),
                                    faults: config.faults.clone(),
                                    mdt,
                                },
                            );
                        }
                    }
                })
                .expect("spawn supervisor thread");
            threads.lock().push(handle);
        }

        Ok(ScalableMonitor {
            collectors,
            collector_alive,
            threads,
            aggregator,
            consumer,
            ctx,
            stop,
            watch_root: config.watch_root,
            collector_busy_ns,
            history,
            collector_restarts,
            tracer,
            health,
        })
    }

    /// The client-side consumer: one lane per aggregator shard behind
    /// the classic API (an exact passthrough when
    /// [`aggregator_shards`](ScalableConfig::aggregator_shards) is 1).
    pub fn consumer(&self) -> &Arc<FederatedConsumer> {
        &self.consumer
    }

    /// Connect one consumer lane per shard with `filter`, using
    /// `connect` to pick the telemetry name and tracer.
    fn federated_consumer(
        &self,
        filter: &EventFilter,
        connect: impl Fn(&str, Arc<dyn EventStore>, EventFilter) -> Result<Consumer, fsmon_mq::MqError>,
    ) -> Result<FederatedConsumer, fsmon_mq::MqError> {
        let mut lanes = Vec::with_capacity(self.aggregator.shards());
        for (endpoint, store) in self
            .aggregator
            .consumer_endpoints()
            .iter()
            .zip(self.aggregator.stores())
        {
            lanes.push(Arc::new(connect(endpoint, store, filter.clone())?));
        }
        Ok(FederatedConsumer::from_parts(lanes))
    }

    /// Attach an additional consumer with its own filter.
    pub fn new_consumer(
        &self,
        filter: EventFilter,
    ) -> Result<FederatedConsumer, fsmon_mq::MqError> {
        self.federated_consumer(&filter, |endpoint, store, filter| {
            Consumer::connect(&self.ctx, endpoint, filter, Some(store))
        })
    }

    /// Attach an additional consumer whose telemetry carries the label
    /// `consumer=<name>` (per-consumer delivery counters in `fsmon
    /// stats`).
    pub fn new_consumer_named(
        &self,
        filter: EventFilter,
        name: &str,
    ) -> Result<FederatedConsumer, fsmon_mq::MqError> {
        self.federated_consumer(&filter, |endpoint, store, filter| {
            Consumer::connect_traced(
                &self.ctx,
                endpoint,
                filter,
                Some(store),
                name,
                self.tracer.clone(),
            )
        })
    }

    /// Attach a filtered consumer over the configured transport:
    /// the filter spec is pushed down to every shard at connect time,
    /// so only the matching subset (plus per-batch watermark frames)
    /// crosses the wire. Each shard lane heals gaps from its own
    /// store.
    pub fn new_filtered_consumer(
        &self,
        spec: &fsmon_rules::FilterSpec,
        name: &str,
    ) -> Result<crate::sharded::FederatedFilteredConsumer, fsmon_mq::MqError> {
        crate::sharded::FederatedFilteredConsumer::connect(
            &self.ctx,
            &self.aggregator.consumer_endpoints(),
            &self.aggregator.stores(),
            spec,
            name,
        )
    }

    /// Attach in-process filtered subscribers directly to every
    /// shard's publisher (the cheapest consumer: one broadcast-ring
    /// cursor per shard, no sockets). See
    /// [`Aggregator::subscribe_filtered`](crate::Aggregator::subscribe_filtered).
    pub fn subscribe_filtered(
        &self,
        spec: &fsmon_rules::FilterSpec,
        name: &str,
    ) -> crate::sharded::FederatedFilteredSubscriber {
        self.aggregator.subscribe_filtered(spec, name)
    }

    /// Per-filter-class fan-out counters.
    pub fn class_stats(&self) -> Vec<fsmon_mq::ClassStats> {
        self.aggregator.class_stats()
    }

    /// The pipeline's shared tracer (disabled unless
    /// [`ScalableConfig::trace_sample_per_10k`] is set).
    pub fn tracer(&self) -> &fsmon_telemetry::Tracer {
        &self.tracer
    }

    /// The fleet view: collector registry snapshots merged across MDTs
    /// (counters/histograms add, gauges last-write). Collectors publish
    /// a snapshot every few dozen batches; call
    /// [`publish_fleet_snapshots`](ScalableMonitor::publish_fleet_snapshots)
    /// first for an up-to-the-moment view.
    pub fn fleet_snapshot(&self) -> fsmon_telemetry::Snapshot {
        self.aggregator.fleet_snapshot()
    }

    /// Sources (collector telemetry topics) seen in the fleet view.
    pub fn fleet_sources(&self) -> Vec<String> {
        self.aggregator.fleet_sources()
    }

    /// Force every collector to publish its fleet registry snapshot
    /// now (they otherwise publish every few dozen productive steps).
    pub fn publish_fleet_snapshots(&self) {
        for c in &self.collectors {
            c.lock().publish_fleet_snapshot();
        }
    }

    /// Aggregator counters (per-shard counters summed).
    pub fn aggregator_stats(&self) -> crate::aggregator::AggregatorStats {
        self.aggregator.stats()
    }

    /// Per-shard aggregator counters, shard 0 first.
    pub fn shard_aggregator_stats(&self) -> Vec<crate::aggregator::AggregatorStats> {
        self.aggregator.shard_stats()
    }

    /// Number of aggregator shards (K).
    pub fn aggregator_shards(&self) -> usize {
        self.aggregator.shards()
    }

    /// Per-collector counters.
    pub fn collector_stats(&self) -> Vec<CollectorStats> {
        self.collectors.iter().map(|c| c.lock().stats()).collect()
    }

    /// Sum of collector counters across MDSs.
    pub fn total_collector_stats(&self) -> CollectorStats {
        let mut total = CollectorStats::default();
        for s in self.collector_stats() {
            total.records += s.records;
            total.events += s.events;
            total.fid2path_calls += s.fid2path_calls;
            total.cache_hits += s.cache_hits;
            total.cache_misses += s.cache_misses;
            total.parent_dir_removed += s.parent_dir_removed;
            total.cache_entries += s.cache_entries;
            total.cache_memory_bytes += s.cache_memory_bytes;
        }
        total
    }

    /// The reliable event store (shard 0 with a sharded tier — each
    /// shard's stream lives in its own store; see
    /// [`shard_stores`](ScalableMonitor::shard_stores)).
    pub fn store(&self) -> Arc<dyn EventStore> {
        self.aggregator.shard(0).store().clone()
    }

    /// Per-shard reliable stores, shard 0 first.
    pub fn shard_stores(&self) -> Vec<Arc<dyn EventStore>> {
        self.aggregator.stores()
    }

    /// The historic-events API endpoint (shard 0's service; connect a
    /// [`crate::HistoryClient`] to it — this is how a consumer on
    /// another node replays after a fault).
    pub fn history_endpoint(&self) -> &str {
        self.history[0].endpoint()
    }

    /// Historic-events endpoints for every shard, shard 0 first.
    pub fn history_endpoints(&self) -> Vec<&str> {
        self.history.iter().map(|h| h.endpoint()).collect()
    }

    /// A connected history client (shard 0's service).
    pub fn history_client(&self) -> Result<crate::HistoryClient, fsmon_mq::MqError> {
        crate::HistoryClient::connect(&self.ctx, self.history[0].endpoint())
    }

    /// History service counters, summed across shards.
    pub fn history_stats(&self) -> crate::HistoryStats {
        let mut total = crate::HistoryStats::default();
        for h in &self.history {
            let one = h.stats();
            total.replays += one.replays;
            total.acks += one.acks;
            total.errors += one.errors;
        }
        total
    }

    /// Per-collector busy time (ns spent inside `step`), indexed by MDT.
    pub fn collector_busy_ns(&self) -> Vec<u64> {
        self.collector_busy_ns
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Total backlog (unconsumed changelog records) across MDTs.
    pub fn total_backlog(&self) -> u64 {
        self.collectors.iter().map(|c| c.lock().backlog()).sum()
    }

    /// Block until the aggregator has received `n` events (or timeout).
    pub fn wait_events(&self, n: u64, timeout: Duration) -> bool {
        self.aggregator.wait_received(n, timeout)
    }

    /// Watch root reported on events.
    pub fn watch_root(&self) -> &str {
        &self.watch_root
    }

    /// Collector lane restarts performed by the supervisor so far
    /// (aggregator lane restarts are in
    /// [`aggregator_stats`](ScalableMonitor::aggregator_stats)).
    pub fn supervisor_restarts(&self) -> u64 {
        self.collector_restarts.load(Ordering::Relaxed)
    }

    /// Liveness of each collector lane, indexed by MDT.
    pub fn collector_lanes_alive(&self) -> Vec<bool> {
        self.collector_alive
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect()
    }

    /// Block until every collector lane reports alive (or timeout) —
    /// useful after a burst of injected crashes to let the supervisor
    /// finish restarting.
    pub fn wait_lanes_alive(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while std::time::Instant::now() < deadline {
            if self.aggregator.all_lanes_alive()
                && self
                    .collector_alive
                    .iter()
                    .all(|a| a.load(Ordering::Relaxed))
            {
                return true;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        false
    }

    /// The running health engine, when
    /// [`ScalableConfig::health`] was set: SLO verdicts
    /// ([`report`](fsmon_telemetry::HealthMonitor::report)), the bound
    /// HTTP observer address, and the windowed series.
    pub fn health(&self) -> Option<&Arc<fsmon_telemetry::HealthMonitor>> {
        self.health.as_ref()
    }

    /// Address the HTTP observer bound, when health is on and an
    /// address was configured (useful with `:0`).
    pub fn health_addr(&self) -> Option<std::net::SocketAddr> {
        self.health.as_ref().and_then(|h| h.http_addr())
    }

    /// Stop collector threads, the supervisor, the aggregator, and the
    /// health engine.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // The supervisor may still be pushing restarted lanes while we
        // drain; loop until the vec stays empty (the supervisor itself
        // is joined in one of these passes, after which no new handles
        // can appear).
        loop {
            let handles: Vec<_> = self.threads.lock().drain(..).collect();
            if handles.is_empty() {
                break;
            }
            for t in handles {
                let _ = t.join();
            }
        }
        self.aggregator.stop();
        // The supervisor's clone is gone (joined above), so this is
        // the last handle: dropping it runs the final evaluation tick
        // and joins the health threads.
        drop(self.health.take());
    }
}

/// Adapter exposing the scalable pipeline as a `fsmon-core` DSI.
pub struct LustreDsi {
    consumer: Arc<FederatedConsumer>,
    watch_root: String,
}

impl LustreDsi {
    /// Wrap a running monitor's consumer.
    pub fn new(monitor: &ScalableMonitor) -> LustreDsi {
        LustreDsi {
            consumer: monitor.consumer().clone(),
            watch_root: monitor.watch_root().to_string(),
        }
    }
}

impl StorageInterface for LustreDsi {
    fn name(&self) -> &'static str {
        "lustre-changelog"
    }

    fn source(&self) -> MonitorSource {
        MonitorSource::LustreChangelog
    }

    fn watch_root(&self) -> &str {
        &self.watch_root
    }

    fn start(&mut self) -> Result<(), DsiError> {
        Ok(())
    }

    fn poll(&mut self, max: usize) -> Vec<RawEvent> {
        self.consumer
            .drain()
            .into_iter()
            .take(max)
            .map(RawEvent::Standard)
            .collect()
    }

    fn stop(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmon_events::EventKind;
    use lustre_sim::LustreConfig;

    #[test]
    fn end_to_end_single_mds() {
        let fs = LustreFs::new(LustreConfig::small());
        let monitor = ScalableMonitor::start(&fs, ScalableConfig::default()).unwrap();
        let client = fs.client();
        client.create("/a.txt").unwrap();
        client.write("/a.txt", 0, 64).unwrap();
        client.unlink("/a.txt").unwrap();
        assert!(monitor.wait_events(3, Duration::from_secs(5)));
        let events = monitor.consumer().recv_batch(10, Duration::from_secs(2));
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, EventKind::Create);
        assert_eq!(events[1].kind, EventKind::Modify);
        assert_eq!(events[2].kind, EventKind::Delete);
        assert!(events.iter().all(|e| e.path == "/a.txt"));
        monitor.stop();
    }

    #[test]
    fn end_to_end_four_mds_dne() {
        let fs = LustreFs::new(LustreConfig::small_dne(4));
        let monitor = ScalableMonitor::start(&fs, ScalableConfig::default()).unwrap();
        let client = fs.client();
        let mut expected = 0u64;
        for i in 0..32 {
            client.mkdir(&format!("/dir{i}")).unwrap();
            client.create(&format!("/dir{i}/f")).unwrap();
            expected += 2;
        }
        assert!(monitor.wait_events(expected, Duration::from_secs(5)));
        // Every MDS contributed.
        let per: Vec<u64> = monitor.collector_stats().iter().map(|s| s.events).collect();
        assert_eq!(per.iter().sum::<u64>(), expected);
        assert!(per.iter().filter(|n| **n > 0).count() >= 3, "{per:?}");
        monitor.stop();
    }

    #[test]
    fn sharded_tier_partitions_mdts_and_federates_the_streams() {
        let fs = LustreFs::new(LustreConfig::small_dne(4));
        let monitor = ScalableMonitor::start(
            &fs,
            ScalableConfig {
                aggregator_shards: 2,
                ..ScalableConfig::default()
            },
        )
        .unwrap();
        assert_eq!(monitor.aggregator_shards(), 2);
        let client = fs.client();
        let n = 400u64;
        for i in 0..n / 2 {
            client.mkdir(&format!("/dir{i}")).unwrap();
            client.create(&format!("/dir{i}/f")).unwrap();
        }
        assert!(monitor.wait_events(n, Duration::from_secs(10)));
        // Drain everything, then catch up any store tail.
        let mut events = Vec::new();
        loop {
            let batch = monitor
                .consumer()
                .recv_batch(4096, Duration::from_millis(300));
            if batch.is_empty() {
                break;
            }
            events.extend(batch);
        }
        monitor.consumer().catch_up();
        events.extend(monitor.consumer().drain());
        assert_eq!(events.len() as u64, n, "no loss, no duplicates");
        // Per-shard exactly-once: each shard's delivered ids are dense
        // from 1 — the union of two independent linear streams.
        for shard in 0..2usize {
            let mut ids: Vec<u64> = events
                .iter()
                .filter(|e| fsmon_core::shard_of(e.mdt_index, 2) == shard)
                .map(|e| e.id)
                .collect();
            ids.sort_unstable();
            assert!(!ids.is_empty(), "shard {shard} owned no MDT");
            assert_eq!(
                ids,
                (1..=ids.len() as u64).collect::<Vec<_>>(),
                "shard {shard} ids dense"
            );
        }
        // Both shards actually sequenced (per-shard stats split).
        let per: Vec<u64> = monitor
            .shard_aggregator_stats()
            .iter()
            .map(|s| s.received)
            .collect();
        assert_eq!(per.len(), 2);
        assert!(per.iter().all(|&r| r > 0), "{per:?}");
        assert_eq!(per.iter().sum::<u64>(), n);
        // The vector watermark tracks each shard's cursor.
        let w = monitor.consumer().vector_watermark();
        assert_eq!(w.shards(), 2);
        assert_eq!(w.cursors().iter().sum::<u64>(), n);
        monitor.stop();
    }

    #[test]
    fn no_event_loss_under_burst() {
        let fs = LustreFs::new(LustreConfig::small_dne(2));
        let monitor = ScalableMonitor::start(&fs, ScalableConfig::default()).unwrap();
        let client = fs.client();
        let n = 5000u64;
        for i in 0..n {
            client.create(&format!("/f{i}")).unwrap();
        }
        assert!(
            monitor.wait_events(n, Duration::from_secs(30)),
            "only {} of {n} arrived",
            monitor.aggregator_stats().received
        );
        let stats = monitor.aggregator_stats();
        assert_eq!(stats.received, n, "no overall loss of events (§V-D2)");
        monitor.stop();
    }

    #[test]
    fn monitor_restart_resumes_from_persisted_cursors() {
        let cursor_path =
            std::env::temp_dir().join(format!("fsmon-monitor-cursors-{}", std::process::id()));
        let _ = std::fs::remove_file(&cursor_path);
        let fs = LustreFs::new(LustreConfig::small_dne(2));
        let config = || ScalableConfig {
            cursor_file: Some(cursor_path.clone()),
            ..ScalableConfig::default()
        };
        let client = fs.client();
        // Incarnation 1 processes a first wave.
        {
            let monitor = ScalableMonitor::start(&fs, config()).unwrap();
            for i in 0..20 {
                client.mkdir(&format!("/wave1-{i}")).unwrap();
            }
            assert!(monitor.wait_events(20, Duration::from_secs(5)));
            monitor.stop(); // "crash" after cursors were flushed
        }
        // A second wave lands while no monitor is running.
        for i in 0..10 {
            client.mkdir(&format!("/wave2-{i}")).unwrap();
        }
        // Incarnation 2 resumes: exactly the second wave, no replays.
        let monitor = ScalableMonitor::start(&fs, config()).unwrap();
        assert!(monitor.wait_events(10, Duration::from_secs(5)));
        let events = monitor.consumer().recv_batch(100, Duration::from_secs(2));
        assert_eq!(
            events.len(),
            10,
            "{:?}",
            events.iter().map(|e| &e.path).collect::<Vec<_>>()
        );
        assert!(events.iter().all(|e| e.path.starts_with("/wave2-")));
        monitor.stop();
        std::fs::remove_file(&cursor_path).ok();
    }

    #[test]
    fn supervisor_restarts_crashed_collectors_without_loss_or_dup() {
        use fsmon_faults::{FaultPlan, FaultRule};
        let fs = LustreFs::new(LustreConfig::small());
        // Crash the collector a few times while events stream.
        let faults = FaultPlan::new(11)
            .with(
                FaultPoint::CollectorCrash,
                FaultRule::per_10k(300).after(10).limit(4),
            )
            .arm();
        let monitor = ScalableMonitor::start(
            &fs,
            ScalableConfig {
                faults,
                batch_size: 16,
                ..ScalableConfig::default()
            },
        )
        .unwrap();
        let client = fs.client();
        let n = 1500u64;
        for i in 0..n {
            client.create(&format!("/c{i}")).unwrap();
            if i % 100 == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        assert!(
            monitor.wait_events(n, Duration::from_secs(30)),
            "only {} of {n} arrived (restarts: {})",
            monitor.aggregator_stats().received,
            monitor.supervisor_restarts()
        );
        assert!(
            monitor.supervisor_restarts() >= 1,
            "the fault plan should have killed the collector at least once"
        );
        // Exactly-once delivery: n unique dense ids, no duplicates.
        let mut events = Vec::new();
        loop {
            let batch = monitor
                .consumer()
                .recv_batch(4096, Duration::from_millis(300));
            if batch.is_empty() {
                break;
            }
            events.extend(batch);
        }
        let mut ids: Vec<u64> = events.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len() as u64, n, "no loss, no duplicates");
        assert_eq!(*ids.last().unwrap(), n, "ids stay dense across restarts");
        assert_eq!(monitor.consumer().recovery_stats().duplicates_dropped, 0);
        monitor.stop();
    }

    #[test]
    fn tracing_flows_end_to_end_and_fleet_view_merges() {
        let fs = LustreFs::new(LustreConfig::small_dne(2));
        let monitor = ScalableMonitor::start(
            &fs,
            ScalableConfig {
                trace_sample_per_10k: 10_000, // trace everything
                ..ScalableConfig::default()
            },
        )
        .unwrap();
        let client = fs.client();
        let n = 200u64;
        for i in 0..n {
            client.mkdir(&format!("/dir{i}")).unwrap();
        }
        assert!(monitor.wait_events(n, Duration::from_secs(10)));
        // Drain the consumer: delivery is the terminal trace stage.
        let mut got = 0usize;
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while got < n as usize && std::time::Instant::now() < deadline {
            got += monitor
                .consumer()
                .recv_batch(4096, Duration::from_millis(200))
                .len();
        }
        assert_eq!(got, n as usize);
        // Completed traces landed in the per-stage histograms and the
        // worst-case exemplar identifies its producing MDT.
        let snap = fsmon_telemetry::global().snapshot();
        assert!(snap.counter("fsmon_trace_records_total") > 0);
        let exemplar = fsmon_telemetry::trace::exemplar().expect("exemplar recorded");
        assert!(exemplar.event_id >= 1);
        assert!(exemplar.mdt < 2);
        // The fleet view: force snapshots out and merge across MDTs.
        // Poll for both conditions — the counter can reach n before the
        // second MDT's forced snapshot has traveled the queue.
        monitor.publish_fleet_snapshots();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut fleet = monitor.fleet_snapshot();
        while (fleet.counter("fsmon_collector_events_total") < n
            || monitor.fleet_sources().len() < 2)
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(20));
            monitor.publish_fleet_snapshots();
            fleet = monitor.fleet_snapshot();
        }
        assert_eq!(
            fleet.counter("fsmon_collector_events_total"),
            n,
            "fleet merge sums per-MDT counters exactly"
        );
        assert!(
            monitor.fleet_sources().len() >= 2,
            "both MDTs contributed snapshots: {:?}",
            monitor.fleet_sources()
        );
        monitor.stop();
    }

    #[test]
    fn janitor_purges_acked_events_on_schedule() {
        let fs = LustreFs::new(LustreConfig::small());
        let monitor = ScalableMonitor::start(
            &fs,
            ScalableConfig {
                purge_interval: Some(Duration::from_millis(50)),
                ..ScalableConfig::default()
            },
        )
        .unwrap();
        let client = fs.client();
        for i in 0..5 {
            client.create(&format!("/j{i}")).unwrap();
        }
        assert!(monitor.wait_events(5, Duration::from_secs(5)));
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while monitor.store().stats().appended < 5 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        monitor.consumer().ack(3).unwrap();
        // The janitor purges within a couple of cycles.
        let deadline = std::time::Instant::now() + Duration::from_secs(3);
        while monitor.store().stats().retained > 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(monitor.store().stats().retained, 2);
        monitor.stop();
    }

    #[test]
    fn janitor_flushes_idle_interval_store_even_without_purging() {
        // A time-based durability policy needs the housekeeping thread
        // regardless of purge configuration: with purging disabled the
        // janitor must still spawn and bound the idle tail.
        let dir = std::env::temp_dir().join(format!(
            "fsmon-idleflush-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(
            fsmon_store::FileStore::open_with_options(
                dir.join("store"),
                fsmon_store::FileStoreOptions {
                    durability: fsmon_store::Durability::IntervalMs(10),
                    ..fsmon_store::FileStoreOptions::default()
                },
            )
            .unwrap(),
        );
        // Only a janitor thread increments this counter, and only a
        // time-based store makes flush_if_due return true — this test's
        // store is the only such store in the binary.
        let idle_flushes = fsmon_telemetry::root()
            .scope("janitor")
            .counter("idle_flushes_total");
        let before = idle_flushes.get();
        let fs = LustreFs::new(LustreConfig::small());
        let monitor = ScalableMonitor::start(
            &fs,
            ScalableConfig {
                store: Some(store.clone()),
                purge_interval: None,
                ..ScalableConfig::default()
            },
        )
        .unwrap();
        // Land an unsynced tail, then go idle: two back-to-back appends
        // guarantee pending bytes (at most the first can trip the
        // commit-time interval check), so only the janitor's ticker can
        // flush what remains.
        let ev = fsmon_events::StandardEvent::new(EventKind::Create, "/r", "/idle.txt");
        store.append(&ev).unwrap();
        store.append(&ev).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while idle_flushes.get() == before && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(
            idle_flushes.get() > before,
            "janitor never flushed the idle tail"
        );
        assert!(
            !store.flush_if_due().unwrap(),
            "nothing left overdue after the janitor's flush"
        );
        monitor.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn history_api_serves_replay_over_the_queue() {
        let fs = LustreFs::new(LustreConfig::small());
        let monitor = ScalableMonitor::start(&fs, ScalableConfig::default()).unwrap();
        let client = fs.client();
        for i in 0..8 {
            client.create(&format!("/h{i}")).unwrap();
        }
        assert!(monitor.wait_events(8, Duration::from_secs(5)));
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while monitor.store().stats().appended < 8 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let history = monitor.history_client().unwrap();
        let events = history.replay_since(3, 100).unwrap();
        assert_eq!(events.len(), 5);
        assert!(events.iter().all(|e| e.id > 3));
        history.ack(8).unwrap();
        assert_eq!(monitor.store().stats().reported_seq, 8);
        assert_eq!(monitor.history_stats().replays, 1);
        monitor.stop();
    }

    #[test]
    fn events_are_persisted_for_replay() {
        let fs = LustreFs::new(LustreConfig::small());
        let monitor = ScalableMonitor::start(&fs, ScalableConfig::default()).unwrap();
        fs.client().create("/x").unwrap();
        monitor.wait_events(1, Duration::from_secs(5));
        // Wait for the store lane.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while monitor.store().stats().appended < 1 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let replay = monitor.consumer().replay_since(0, 10).unwrap();
        assert_eq!(replay.len(), 1);
        assert_eq!(replay[0].path, "/x");
        monitor.stop();
    }

    #[test]
    fn filtered_consumer_sees_subset() {
        let fs = LustreFs::new(LustreConfig::small());
        let monitor = ScalableMonitor::start(&fs, ScalableConfig::default()).unwrap();
        let filtered = monitor.new_consumer(EventFilter::subtree("/keep")).unwrap();
        let client = fs.client();
        client.mkdir("/keep").unwrap();
        client.mkdir("/drop").unwrap();
        client.create("/keep/a").unwrap();
        client.create("/drop/b").unwrap();
        monitor.wait_events(4, Duration::from_secs(5));
        let events = filtered.recv_batch(10, Duration::from_secs(2));
        assert!(!events.is_empty());
        assert!(events.iter().all(|e| e.path.starts_with("/keep")));
        monitor.stop();
    }

    #[test]
    fn pushdown_subscriber_sees_subset_without_client_filtering() {
        let fs = LustreFs::new(LustreConfig::small());
        let monitor = ScalableMonitor::start(&fs, ScalableConfig::default()).unwrap();
        let spec = fsmon_rules::FilterSpec::subtree("/keep");
        let mut ring_sub = monitor.subscribe_filtered(&spec, "ring");
        let mut sock_sub = monitor.new_filtered_consumer(&spec, "sock").unwrap();
        let client = fs.client();
        client.mkdir("/keep").unwrap();
        client.mkdir("/drop").unwrap();
        client.create("/keep/a").unwrap();
        client.create("/drop/b").unwrap();
        monitor.wait_events(4, Duration::from_secs(5));
        let ring_events = ring_sub.recv_for(Duration::from_secs(2));
        assert!(!ring_events.is_empty());
        assert!(ring_events.iter().all(|e| e.path.starts_with("/keep")));
        let sock_events = sock_sub.recv_for(Duration::from_millis(300));
        assert!(!sock_events.is_empty());
        assert!(sock_events.iter().all(|e| e.path.starts_with("/keep")));
        let stats = monitor.class_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].key, spec.canonical());
        assert!(stats[0].frames > 0);
        monitor.stop();
    }

    #[test]
    fn pushdown_over_tcp_delivers_the_subset() {
        let fs = LustreFs::new(LustreConfig::small());
        let monitor = ScalableMonitor::start(
            &fs,
            ScalableConfig {
                transport: Transport::Tcp,
                ..ScalableConfig::default()
            },
        )
        .unwrap();
        let spec = fsmon_rules::FilterSpec::subtree("/keep");
        let mut filtered = monitor.new_filtered_consumer(&spec, "tcp-sub").unwrap();
        let client = fs.client();
        client.mkdir("/keep").unwrap();
        client.create("/keep/a").unwrap();
        client.create("/drop-me").unwrap();
        monitor.wait_events(3, Duration::from_secs(5));
        // TCP filter registration is asynchronous — batches sequenced
        // before it landed are recovered from the store, dedup'd
        // against whatever arrived live.
        let mut events = filtered.recv_for(Duration::from_millis(300));
        events.extend(filtered.catch_up());
        let paths: Vec<&str> = events.iter().map(|e| e.path.as_str()).collect();
        assert_eq!(paths, ["/keep", "/keep/a"]);
        monitor.stop();
    }

    #[test]
    fn tcp_transport_end_to_end() {
        let fs = LustreFs::new(LustreConfig::small());
        let monitor = ScalableMonitor::start(
            &fs,
            ScalableConfig {
                transport: Transport::Tcp,
                ..ScalableConfig::default()
            },
        )
        .unwrap();
        fs.client().create("/over-tcp").unwrap();
        assert!(monitor.wait_events(1, Duration::from_secs(5)));
        let events = monitor.consumer().recv_batch(10, Duration::from_secs(2));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].path, "/over-tcp");
        monitor.stop();
    }

    #[test]
    fn lustre_dsi_plugs_into_fsmonitor() {
        use fsmon_core::{FsMonitor, MonitorConfig};
        let fs = LustreFs::new(LustreConfig::small());
        let monitor = ScalableMonitor::start(&fs, ScalableConfig::default()).unwrap();
        let dsi = LustreDsi::new(&monitor);
        let mut fsmon = FsMonitor::new(Box::new(dsi), MonitorConfig::without_store());
        let sub = fsmon.subscribe(EventFilter::all());
        fs.client().create("/via-core.txt").unwrap();
        monitor.wait_events(1, Duration::from_secs(5));
        // Let the consumer buffer fill, then pump the core monitor.
        std::thread::sleep(Duration::from_millis(50));
        fsmon.pump(100);
        let events = sub.drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].path, "/via-core.txt");
        assert_eq!(events[0].source, MonitorSource::LustreChangelog);
        monitor.stop();
    }
}
