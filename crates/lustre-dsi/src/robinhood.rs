//! The Robinhood-style baseline (§V-D5).
//!
//! "We implement Robinhood by having a subscriber in the client that
//! polls the four publishers on MDS one at a time in a round-robin
//! fashion. There is no role for MGS in this implementation." The two
//! structural differences from FSMonitor, both modelled here:
//!
//! 1. **Serial, iterative collection** — one poller visits MDSs in
//!    rotation, paying a changelog-read RPC per visit, instead of
//!    per-MDS collectors reading their local changelog in parallel.
//! 2. **Client-side processing** — `fid2path` runs from the client
//!    (an RPC to the MDS) rather than on the MDS itself, so every
//!    resolution carries a remote penalty.

use fsmon_core::LruCache;
use fsmon_events::StandardEvent;
use fsmon_store::{EventStore, MemStore};
use lustre_sim::changelog::ChangelogUser;
use lustre_sim::clock::CostModel;
use lustre_sim::namespace::MdtHandle;
use lustre_sim::{Fid, LustreFs};
use std::sync::Arc;

/// Baseline configuration.
#[derive(Debug, Clone)]
pub struct RobinhoodConfig {
    /// Records per changelog poll.
    pub batch_size: usize,
    /// Client-side cache capacity (Robinhood keeps its own database of
    /// paths; modelled as the same LRU for a fair comparison).
    pub cache_size: usize,
    /// Cost of one changelog-read RPC from the client to an MDS.
    pub poll_rpc_cost: CostModel,
    /// Extra cost per `fid2path`, on top of the tool itself, for the
    /// client→MDS round trip.
    pub remote_fid2path_penalty: CostModel,
}

impl Default for RobinhoodConfig {
    fn default() -> Self {
        RobinhoodConfig {
            batch_size: 1024,
            cache_size: 5000,
            // Loopback-scale RPC costs; scaled like the testbed op costs.
            poll_rpc_cost: CostModel::SpinNs(20_000),
            remote_fid2path_penalty: CostModel::SpinNs(2_000),
        }
    }
}

/// Throughput counters for the baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct RobinhoodStats {
    /// Changelog records consumed.
    pub records: u64,
    /// Standardized events produced.
    pub events: u64,
    /// Changelog poll RPCs issued.
    pub polls: u64,
    /// `fid2path` RPCs issued.
    pub fid2path_calls: u64,
}

/// The single-poller baseline monitor.
pub struct RobinhoodMonitor {
    mdts: Vec<MdtHandle>,
    users: Vec<ChangelogUser>,
    cursors: Vec<u64>,
    next_mdt: usize,
    cache: Option<LruCache<Fid, String>>,
    config: RobinhoodConfig,
    db: Arc<dyn EventStore>,
    stats: RobinhoodStats,
    watch_root: String,
}

impl RobinhoodMonitor {
    /// Attach the baseline to every MDS of `fs`.
    pub fn new(
        fs: &Arc<LustreFs>,
        watch_root: impl Into<String>,
        config: RobinhoodConfig,
    ) -> RobinhoodMonitor {
        let mdts: Vec<MdtHandle> = (0..fs.mdt_count()).map(|i| fs.mdt(i)).collect();
        let users = mdts.iter().map(|m| m.register_user()).collect();
        let cursors = vec![0; mdts.len()];
        RobinhoodMonitor {
            cache: if config.cache_size > 0 {
                Some(LruCache::new(config.cache_size))
            } else {
                None
            },
            users,
            cursors,
            next_mdt: 0,
            config,
            db: Arc::new(MemStore::new()),
            stats: RobinhoodStats::default(),
            mdts,
            watch_root: watch_root.into(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> RobinhoodStats {
        self.stats
    }

    /// The client-side database events are stored into.
    pub fn db(&self) -> &Arc<dyn EventStore> {
        &self.db
    }

    fn resolve_fid(&mut self, mdt: usize, fid: Fid) -> Result<String, ()> {
        if let Some(cache) = &mut self.cache {
            if let Some(path) = cache.get(&fid) {
                return Ok(path);
            }
        }
        self.stats.fid2path_calls += 1;
        // Client-side processing: the tool cost plus the RPC penalty.
        self.config.remote_fid2path_penalty.charge();
        match self.mdts[mdt].fid2path(fid) {
            Ok(path) => {
                if let Some(cache) = &mut self.cache {
                    cache.insert(fid, path.clone());
                }
                Ok(path)
            }
            Err(_) => Err(()),
        }
    }

    /// Poll the next MDS in rotation, process its batch client-side,
    /// and store the events. Returns the standardized events.
    pub fn step(&mut self) -> Vec<StandardEvent> {
        let mdt = self.next_mdt;
        self.next_mdt = (self.next_mdt + 1) % self.mdts.len();
        // The iterative read RPC.
        self.config.poll_rpc_cost.charge();
        self.stats.polls += 1;
        let records = self.mdts[mdt].read_changelog(self.cursors[mdt], self.config.batch_size);
        if records.is_empty() {
            return Vec::new();
        }
        let mut events = Vec::with_capacity(records.len());
        for rec in &records {
            events.extend(self.process_record(mdt, rec));
        }
        self.stats.records += records.len() as u64;
        self.cursors[mdt] = records.last().expect("non-empty").index;
        self.mdts[mdt].clear_changelog(self.users[mdt], self.cursors[mdt]);
        for ev in &events {
            let _ = self.db.append(ev);
        }
        events
    }

    fn process_record(
        &mut self,
        mdt: usize,
        rec: &lustre_sim::ChangelogRecord,
    ) -> Vec<StandardEvent> {
        use fsmon_events::{EventKind, MonitorSource};
        let (kind, is_dir) = rec.kind.to_standard();
        let watch_root = self.watch_root.clone();
        let mk = move |kind: EventKind, path: String| {
            let mut ev = StandardEvent::new(kind, watch_root.clone(), path)
                .with_source(MonitorSource::LustreChangelog)
                .with_timestamp(rec.time_ns)
                .with_mdt(rec.mdt_index);
            ev.is_dir = is_dir;
            ev
        };
        if rec.kind.is_rename() {
            let (new_fid, old_fid) = match rec.rename {
                Some(p) => (p.new_fid, p.old_fid),
                None => (rec.target_fid, rec.target_fid),
            };
            let old_path = self
                .resolve_fid(mdt, old_fid)
                .or_else(|_| {
                    self.resolve_fid(mdt, rec.parent_fid)
                        .map(|d| join(&d, &rec.target_name))
                })
                .unwrap_or_else(|_| format!("/{}", rec.target_name));
            let new_path = self
                .resolve_fid(mdt, new_fid)
                .unwrap_or_else(|_| old_path.clone());
            self.stats.events += 2;
            let from = mk(EventKind::MovedFrom, old_path.clone());
            let mut to = mk(EventKind::MovedTo, new_path);
            to.old_path = Some(old_path);
            return vec![from, to];
        }
        let path = if rec.kind.deletes_target() {
            let cached = self.cache.as_mut().and_then(|c| c.get(&rec.target_fid));
            match cached {
                Some(p) => p,
                None => self
                    .resolve_fid(mdt, rec.parent_fid)
                    .map(|d| join(&d, &rec.target_name))
                    .unwrap_or_else(|_| format!("/{}", rec.target_name)),
            }
        } else {
            self.resolve_fid(mdt, rec.target_fid)
                .or_else(|_| {
                    self.resolve_fid(mdt, rec.parent_fid)
                        .map(|d| join(&d, &rec.target_name))
                })
                .unwrap_or_else(|_| format!("/{}", rec.target_name))
        };
        if let (true, Some(cache)) = (rec.kind.deletes_target(), self.cache.as_mut()) {
            cache.remove(&rec.target_fid);
        }
        self.stats.events += 1;
        vec![mk(kind, path)]
    }

    /// Poll every MDS once; returns total events collected this round.
    pub fn round(&mut self) -> usize {
        (0..self.mdts.len()).map(|_| self.step().len()).sum()
    }

    /// Drive rounds until every changelog is empty (bounded).
    pub fn drain(&mut self, max_rounds: usize) -> Vec<StandardEvent> {
        let mut out = Vec::new();
        for _ in 0..max_rounds {
            let before = out.len();
            for _ in 0..self.mdts.len() {
                out.extend(self.step());
            }
            if out.len() == before {
                break;
            }
        }
        out
    }
}

fn join(dir: &str, name: &str) -> String {
    if dir == "/" {
        format!("/{name}")
    } else {
        format!("{dir}/{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmon_events::EventKind;
    use lustre_sim::LustreConfig;

    fn free_config() -> RobinhoodConfig {
        RobinhoodConfig {
            poll_rpc_cost: CostModel::Free,
            remote_fid2path_penalty: CostModel::Free,
            ..RobinhoodConfig::default()
        }
    }

    #[test]
    fn collects_all_events_round_robin() {
        let fs = LustreFs::new(LustreConfig::small_dne(4));
        let mut rh = RobinhoodMonitor::new(&fs, "/mnt/lustre", free_config());
        let client = fs.client();
        for i in 0..16 {
            client.mkdir(&format!("/d{i}")).unwrap();
        }
        let events = rh.drain(100);
        assert_eq!(events.len(), 16);
        assert!(events
            .iter()
            .all(|e| e.kind == EventKind::Create && e.is_dir));
        assert_eq!(rh.stats().records, 16);
        assert_eq!(rh.db().stats().appended, 16);
    }

    #[test]
    fn polls_visit_mdts_in_rotation() {
        let fs = LustreFs::new(LustreConfig::small_dne(3));
        let mut rh = RobinhoodMonitor::new(&fs, "/mnt/lustre", free_config());
        rh.round();
        assert_eq!(rh.stats().polls, 3, "one poll per MDS per round");
    }

    #[test]
    fn delete_handling_matches_collector_semantics() {
        let fs = LustreFs::new(LustreConfig::small());
        let mut rh = RobinhoodMonitor::new(&fs, "/mnt/lustre", free_config());
        let client = fs.client();
        client.create("/f").unwrap();
        rh.drain(10);
        client.unlink("/f").unwrap();
        let events = rh.drain(10);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::Delete);
        assert_eq!(events[0].path, "/f");
    }

    #[test]
    fn rename_produces_pair() {
        let fs = LustreFs::new(LustreConfig::small());
        let mut rh = RobinhoodMonitor::new(&fs, "/mnt/lustre", free_config());
        let client = fs.client();
        client.create("/a").unwrap();
        rh.drain(10);
        client.rename("/a", "/b").unwrap();
        let events = rh.drain(10);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::MovedFrom);
        assert_eq!(events[1].kind, EventKind::MovedTo);
        assert_eq!(events[1].old_path.as_deref(), Some("/a"));
    }

    #[test]
    fn rpc_costs_slow_the_baseline() {
        use std::time::Instant;
        let fs = LustreFs::new(LustreConfig::small_dne(2));
        let client = fs.client();
        for i in 0..50 {
            client.create(&format!("/f{i}")).unwrap();
        }
        let mut costly = RobinhoodMonitor::new(
            &fs,
            "/mnt/lustre",
            RobinhoodConfig {
                batch_size: 8,
                poll_rpc_cost: CostModel::SpinNs(500_000),
                ..free_config()
            },
        );
        let start = Instant::now();
        costly.drain(100);
        // At least (50/8 per mdt ≈ 7 polls) plus empty polls, each 0.5ms.
        assert!(start.elapsed() >= std::time::Duration::from_millis(3));
        assert!(costly.stats().polls >= 7);
    }
}
