//! The sharded aggregator tier and its federation layer.
//!
//! One aggregator is the paper's MGS singleton — and past a few
//! hundred thousand events per second its single sequencer and single
//! store lane become the serial point the rest of the pipeline queues
//! behind. [`ShardedAggregator`] removes it: MDTs are partitioned
//! `mdt % K` across K full aggregator pipelines (each with its own
//! demux, publish lanes, sequencer, and group-commit store), so K
//! sequencers stamp and K store lanes commit concurrently. Each shard
//! stamps its *own* dense id stream over its own store — exactly-once
//! is a per-shard contract, and a shard crash or restart is invisible
//! to the other shards.
//!
//! What clients lose is the single global cursor; the federation layer
//! gives back the next best thing:
//!
//! * [`FederatedConsumer`] — one [`Consumer`] lane per shard behind
//!   the classic consumer API, merging shard streams with a bounded-
//!   reordering [`ShardMerger`] and tracking a [`VectorWatermark`]
//!   (per-shard cursor) instead of one id. `catch_up` heals every lane
//!   against its own shard store; resuming from a persisted vector
//!   replays exactly the union of each shard's linear suffix.
//! * [`FederatedFilteredSubscriber`] / [`FederatedFilteredConsumer`] —
//!   server-side filter pushdown per shard: each shard's
//!   [`FanoutEngine`](crate::fanout::FanoutEngine) runs over its own
//!   dense id stream, so the watermark invariant (`first_id >
//!   watermark + 1` ⇒ heal) stays per-shard-exact.
//!
//! With K=1 every wrapper degenerates to an exact passthrough — same
//! ordering, same telemetry labels, same wire frames — so the sharded
//! tier is strictly additive.

use crate::aggregator::Aggregator;
use crate::consumer::{Consumer, ConsumerRecoveryStats};
use crate::subscriber::{FilteredConsumer, FilteredStats, FilteredSubscriber};
use fsmon_core::{shard_of, EventFilter, ShardMerger, VectorWatermark};
use fsmon_events::{EventId, StandardEvent};
use fsmon_faults::{Faults, Retry};
use fsmon_mq::{ClassStats, Context};
use fsmon_store::EventStore;
use fsmon_telemetry::{Snapshot, Tracer};
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything [`ShardedAggregator::start`] needs beyond the context.
pub struct ShardPlan {
    /// Collector endpoint per MDT index; MDT `i` is owned by shard
    /// `i % K`.
    pub collector_endpoints: Vec<String>,
    /// Consumer-facing endpoint per shard (one PUB bind each).
    pub consumer_endpoints: Vec<String>,
    /// Reliable store per shard — each shard's dense id stream lives
    /// in its own store. `stores.len()` *is* K.
    pub stores: Vec<Arc<dyn EventStore>>,
    /// Fault plane armed on each shard's consumer link and store lane.
    pub faults: Faults,
    /// Store-lane retry policy.
    pub retry: Retry,
    /// Publish-side worker lanes per shard.
    pub publish_lanes: usize,
    /// Pipeline tracer (shared clock across shards).
    pub tracer: Tracer,
    /// Group-commit cap for each shard's store lane.
    pub store_group_max: usize,
}

/// K partitioned aggregator pipelines plus the tier-level API the
/// monitor drives them through. See module docs.
pub struct ShardedAggregator {
    shards: Vec<Arc<Aggregator>>,
}

impl ShardedAggregator {
    /// Start one aggregator pipeline per store in `plan`, shard `k`
    /// subscribing to the collector endpoints of the MDTs it owns
    /// (`mdt % K == k`). With K=1 the single shard runs unlabeled —
    /// telemetry and thread names are byte-identical to the unsharded
    /// tier.
    pub fn start(ctx: &Context, plan: ShardPlan) -> Result<ShardedAggregator, fsmon_mq::MqError> {
        let k = plan.stores.len().max(1);
        if plan.consumer_endpoints.len() != k {
            return Err(fsmon_mq::MqError::BindFailed(format!(
                "shard plan mismatch: {} stores but {} consumer endpoints",
                k,
                plan.consumer_endpoints.len()
            )));
        }
        let mut shards = Vec::with_capacity(k);
        for (shard, (store, endpoint)) in
            plan.stores.iter().zip(&plan.consumer_endpoints).enumerate()
        {
            let owned: Vec<String> = plan
                .collector_endpoints
                .iter()
                .enumerate()
                .filter(|(mdt, _)| shard_of(Some(*mdt as u16), k) == shard)
                .map(|(_, ep)| ep.clone())
                .collect();
            shards.push(Arc::new(Aggregator::start_shard(
                ctx,
                &owned,
                endpoint,
                store.clone(),
                plan.faults.clone(),
                plan.retry,
                plan.publish_lanes,
                plan.tracer.clone(),
                (k > 1).then_some(shard),
                plan.store_group_max,
            )?));
        }
        Ok(ShardedAggregator { shards })
    }

    /// Number of shards (K).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// One shard's pipeline.
    pub fn shard(&self, k: usize) -> &Arc<Aggregator> {
        &self.shards[k]
    }

    /// Subscribe the shard owning `mdt` to a fresh collector endpoint
    /// (supervisor restart path — the restarted collector must land on
    /// the shard that holds its topic's dedup highwater).
    pub fn attach_collector(&self, mdt: u16, endpoint: &str) -> Result<(), fsmon_mq::MqError> {
        self.shards[shard_of(Some(mdt), self.shards.len())].attach_collector(endpoint)
    }

    /// Respawn dead stages across every shard; total stages restarted.
    pub fn respawn_dead_lanes(&self) -> usize {
        self.shards.iter().map(|s| s.respawn_dead_lanes()).sum()
    }

    /// Whether every shard's publish side and store lane are alive.
    pub fn all_lanes_alive(&self) -> bool {
        self.shards.iter().all(|s| {
            let (publish, store) = s.lanes_alive();
            publish && store
        })
    }

    /// Tier totals (per-shard counters summed).
    pub fn stats(&self) -> crate::aggregator::AggregatorStats {
        let mut total = crate::aggregator::AggregatorStats::default();
        for s in &self.shards {
            let one = s.stats();
            total.received += one.received;
            total.published += one.published;
            total.stored += one.stored;
            total.decode_errors += one.decode_errors;
            total.dedup_dropped += one.dedup_dropped;
            total.lane_restarts += one.lane_restarts;
        }
        total
    }

    /// Per-shard counters, shard 0 first.
    pub fn shard_stats(&self) -> Vec<crate::aggregator::AggregatorStats> {
        self.shards.iter().map(|s| s.stats()).collect()
    }

    /// Per-shard stores, shard 0 first.
    pub fn stores(&self) -> Vec<Arc<dyn EventStore>> {
        self.shards.iter().map(|s| s.store().clone()).collect()
    }

    /// Consumer endpoints, shard 0 first.
    pub fn consumer_endpoints(&self) -> Vec<String> {
        self.shards
            .iter()
            .map(|s| s.consumer_endpoint().to_string())
            .collect()
    }

    /// Register `spec`'s class with every shard's publisher and return
    /// a federated in-process subscriber over the per-shard cursors.
    pub fn subscribe_filtered(
        &self,
        spec: &fsmon_rules::FilterSpec,
        name: &str,
    ) -> FederatedFilteredSubscriber {
        FederatedFilteredSubscriber {
            lanes: self
                .shards
                .iter()
                .map(|s| s.subscribe_filtered(spec, name))
                .collect(),
            merger: ShardMerger::new(),
        }
    }

    /// Per-filter-class fan-out counters, merged across shards by
    /// class key: counts sum, `rate` (a per-class budget every shard
    /// enforces independently) keeps the common value.
    pub fn class_stats(&self) -> Vec<ClassStats> {
        if self.shards.len() == 1 {
            return self.shards[0].class_stats();
        }
        let mut merged: BTreeMap<String, ClassStats> = BTreeMap::new();
        for shard in &self.shards {
            for one in shard.class_stats() {
                match merged.get_mut(&one.key) {
                    Some(m) => {
                        m.consumers += one.consumers;
                        m.frames += one.frames;
                        m.queue_depth = m.queue_depth.max(one.queue_depth);
                        m.stalls += one.stalls;
                        m.degraded += one.degraded;
                        m.rate = m.rate.max(one.rate);
                        m.shed += one.shed;
                    }
                    None => {
                        merged.insert(one.key.clone(), one);
                    }
                }
            }
        }
        merged.into_values().collect()
    }

    /// Fleet view merged across every shard's collectors.
    pub fn fleet_snapshot(&self) -> Snapshot {
        let mut merged = Snapshot::default();
        for shard in &self.shards {
            let snap = shard.fleet_snapshot();
            merged.merge_fleet(&snap);
        }
        merged
    }

    /// Sources contributing to the fleet view, across shards.
    pub fn fleet_sources(&self) -> Vec<String> {
        let mut sources: Vec<String> = self.shards.iter().flat_map(|s| s.fleet_sources()).collect();
        sources.sort();
        sources.dedup();
        sources
    }

    /// Block until the tier has received `n` events in total.
    pub fn wait_received(&self, n: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if self.stats().received >= n {
                return true;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        false
    }

    /// Stop every shard's stages and join them.
    pub fn stop(&self) {
        for shard in &self.shards {
            shard.stop();
        }
    }
}

/// One consumer lane per shard behind the classic [`Consumer`] API.
/// See module docs for the ordering contract: per shard strict dense
/// id order, across shards timestamp order within a merge window.
pub struct FederatedConsumer {
    lanes: Vec<Arc<Consumer>>,
    merger: Mutex<ShardMerger>,
    pending: Mutex<VecDeque<StandardEvent>>,
}

impl FederatedConsumer {
    /// Federate existing shard lanes (lane `k` must be connected to
    /// shard `k`'s endpoint and store). This is also the resume path:
    /// build the lanes, [`resume_from_vector`]
    /// ([`FederatedConsumer::resume_from_vector`]) with a persisted
    /// watermark, then [`catch_up`](FederatedConsumer::catch_up).
    pub fn from_parts(lanes: Vec<Arc<Consumer>>) -> FederatedConsumer {
        FederatedConsumer {
            lanes,
            merger: Mutex::new(ShardMerger::new()),
            pending: Mutex::new(VecDeque::new()),
        }
    }

    /// Number of shard lanes.
    pub fn shards(&self) -> usize {
        self.lanes.len()
    }

    /// One shard's lane.
    pub fn lane(&self, shard: usize) -> &Arc<Consumer> {
        &self.lanes[shard]
    }

    /// The vector watermark: each shard lane's highest-seen id.
    pub fn vector_watermark(&self) -> VectorWatermark {
        VectorWatermark::from_cursors(self.lanes.iter().map(|l| l.last_seen()).collect())
    }

    /// Treat `watermark` as already seen: lane `k` resumes past
    /// `watermark[k]`. Cursors never regress, and a vector narrower
    /// than the federation leaves the extra shards at their current
    /// position (they replay from wherever they are — the safe
    /// direction).
    pub fn resume_from_vector(&self, watermark: &VectorWatermark) {
        for (shard, lane) in self.lanes.iter().enumerate() {
            if shard < watermark.shards() {
                lane.resume_from(watermark.get(shard));
            }
        }
    }

    /// Sweep every lane's socket and fold whatever arrived into the
    /// merged pending queue (one bounded-reordering window).
    fn pump(&self) {
        let mut windows: Vec<Vec<StandardEvent>> = self.lanes.iter().map(|l| l.drain()).collect();
        let merged = self.merger.lock().merge(&mut windows);
        if !merged.is_empty() {
            self.pending.lock().extend(merged);
        }
    }

    /// Receive one filtered event, waiting up to `timeout`.
    pub fn recv(&self, timeout: Duration) -> Option<StandardEvent> {
        if self.lanes.len() == 1 {
            return self.lanes[0].recv(timeout);
        }
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(ev) = self.pending.lock().pop_front() {
                return Some(ev);
            }
            if Instant::now() >= deadline {
                return None;
            }
            self.pump();
            if self.pending.lock().is_empty() {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }

    /// Receive up to `max` events, waiting up to `timeout` for the
    /// first.
    pub fn recv_batch(&self, max: usize, timeout: Duration) -> Vec<StandardEvent> {
        if self.lanes.len() == 1 {
            return self.lanes[0].recv_batch(max, timeout);
        }
        let mut out = Vec::new();
        match self.recv(timeout) {
            Some(first) => out.push(first),
            None => return out,
        }
        self.pump();
        let mut pending = self.pending.lock();
        while out.len() < max {
            match pending.pop_front() {
                Some(ev) => out.push(ev),
                None => break,
            }
        }
        out
    }

    /// Drain everything currently buffered across every lane.
    pub fn drain(&self) -> Vec<StandardEvent> {
        if self.lanes.len() == 1 {
            return self.lanes[0].drain();
        }
        self.pump();
        self.pending.lock().drain(..).collect()
    }

    /// Heal every lane against its own shard store: recorded gaps
    /// first, then each store's tail past the lane's cursor. Returns
    /// total events recovered; they surface through the normal
    /// [`recv`](FederatedConsumer::recv)/[`drain`](FederatedConsumer::drain)
    /// path, merged like live events.
    pub fn catch_up(&self) -> usize {
        self.lanes.iter().map(|l| l.catch_up()).sum()
    }

    /// Replay historic events with per-shard id greater than `since`
    /// from every shard store, merged. With one shard this is the
    /// classic single-cursor replay; with K shards prefer
    /// [`replay_since_vector`](FederatedConsumer::replay_since_vector),
    /// which honors one cursor per shard.
    pub fn replay_since(
        &self,
        since: EventId,
        max: usize,
    ) -> Result<Vec<StandardEvent>, fsmon_store::StoreError> {
        let uniform = VectorWatermark::from_cursors(self.lanes.iter().map(|_| since).collect());
        self.replay_since_vector(&uniform, max)
    }

    /// Replay each shard's suffix past its watermark cursor, merged
    /// into one timestamp-ordered window (`max` bounds each shard's
    /// fetch). The union-of-linear-replays contract: the result is
    /// exactly ⋃ₖ replay(shard k, since `watermark[k]`), reordered
    /// only across shards.
    pub fn replay_since_vector(
        &self,
        watermark: &VectorWatermark,
        max: usize,
    ) -> Result<Vec<StandardEvent>, fsmon_store::StoreError> {
        let mut windows = Vec::with_capacity(self.lanes.len());
        for (shard, lane) in self.lanes.iter().enumerate() {
            windows.push(lane.replay_since(watermark.get(shard), max)?);
        }
        Ok(self.merger.lock().merge(&mut windows))
    }

    /// Flag events up to `up_to` as reported on every shard store
    /// (uniform ack; see
    /// [`ack_vector`](FederatedConsumer::ack_vector)).
    pub fn ack(&self, up_to: EventId) -> Result<(), fsmon_store::StoreError> {
        for lane in &self.lanes {
            lane.ack(up_to)?;
        }
        Ok(())
    }

    /// Flag each shard's events up to its watermark cursor as
    /// reported, so the janitor's next purge cycle can drop them.
    pub fn ack_vector(&self, watermark: &VectorWatermark) -> Result<(), fsmon_store::StoreError> {
        for (shard, lane) in self.lanes.iter().enumerate() {
            lane.ack(watermark.get(shard))?;
        }
        Ok(())
    }

    /// Replace the subscription filter on every lane.
    pub fn set_filter(&self, filter: EventFilter) {
        for lane in &self.lanes {
            lane.set_filter(filter.clone());
        }
    }

    /// `(accepted, filtered_out)` summed across lanes.
    pub fn filter_stats(&self) -> (u64, u64) {
        let mut accepted = 0;
        let mut filtered = 0;
        for lane in &self.lanes {
            let (a, f) = lane.filter_stats();
            accepted += a;
            filtered += f;
        }
        (accepted, filtered)
    }

    /// Duplicate/gap/reconnect counters summed across lanes.
    pub fn recovery_stats(&self) -> ConsumerRecoveryStats {
        let mut total = ConsumerRecoveryStats::default();
        for lane in &self.lanes {
            let one = lane.recovery_stats();
            total.duplicates_dropped += one.duplicates_dropped;
            total.gaps_detected += one.gaps_detected;
            total.gap_events_healed += one.gap_events_healed;
            total.reconnects += one.reconnects;
        }
        total
    }

    /// Highest id seen on any shard — a scalar summary for display;
    /// the real resume point is
    /// [`vector_watermark`](FederatedConsumer::vector_watermark).
    pub fn last_seen(&self) -> EventId {
        self.lanes.iter().map(|l| l.last_seen()).max().unwrap_or(0)
    }
}

/// Per-shard in-process pushdown subscribers behind one merged stream.
pub struct FederatedFilteredSubscriber {
    lanes: Vec<FilteredSubscriber>,
    merger: ShardMerger,
}

impl FederatedFilteredSubscriber {
    /// The canonical filter-class key (identical on every shard).
    pub fn class_key(&self) -> &str {
        self.lanes[0].class_key()
    }

    /// Drain every shard's ring, merged (never blocks).
    pub fn poll(&mut self) -> Vec<StandardEvent> {
        let mut windows: Vec<Vec<StandardEvent>> =
            self.lanes.iter_mut().map(|l| l.poll()).collect();
        self.merger.merge(&mut windows)
    }

    /// Poll until `window` elapses or at least one event arrives.
    pub fn recv_for(&mut self, window: Duration) -> Vec<StandardEvent> {
        let deadline = Instant::now() + window;
        loop {
            let out = self.poll();
            if !out.is_empty() || Instant::now() >= deadline {
                return out;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Heal every shard lane against its own store, merged.
    pub fn catch_up(&mut self) -> Vec<StandardEvent> {
        let mut windows: Vec<Vec<StandardEvent>> =
            self.lanes.iter_mut().map(|l| l.catch_up()).collect();
        self.merger.merge(&mut windows)
    }

    /// Subscriber counters summed across shards.
    pub fn stats(&self) -> FilteredStats {
        sum_filtered(self.lanes.iter().map(|l| l.stats()))
    }
}

/// Per-shard socket-based pushdown subscribers behind one merged
/// stream (what `fsmon watch --filter` and the chaos harness use when
/// the tier is sharded).
pub struct FederatedFilteredConsumer {
    lanes: Vec<FilteredConsumer>,
    merger: ShardMerger,
}

impl FederatedFilteredConsumer {
    /// Connect one pushdown consumer per shard endpoint; lane `k`
    /// heals from `stores[k]`.
    pub fn connect(
        ctx: &Context,
        endpoints: &[String],
        stores: &[Arc<dyn EventStore>],
        spec: &fsmon_rules::FilterSpec,
        name: &str,
    ) -> Result<FederatedFilteredConsumer, fsmon_mq::MqError> {
        let mut lanes = Vec::with_capacity(endpoints.len());
        for (endpoint, store) in endpoints.iter().zip(stores) {
            lanes.push(FilteredConsumer::connect(
                ctx,
                endpoint,
                spec,
                store.clone(),
                name,
            )?);
        }
        Ok(FederatedFilteredConsumer {
            lanes,
            merger: ShardMerger::new(),
        })
    }

    /// The canonical filter-class key (identical on every shard).
    pub fn class_key(&self) -> &str {
        self.lanes[0].class_key()
    }

    /// Drain whatever is queued on every shard lane, merged.
    pub fn poll(&mut self) -> Vec<StandardEvent> {
        let mut windows: Vec<Vec<StandardEvent>> =
            self.lanes.iter_mut().map(|l| l.poll()).collect();
        self.merger.merge(&mut windows)
    }

    /// Receive from every shard lane until `window` elapses, merged.
    pub fn recv_for(&mut self, window: Duration) -> Vec<StandardEvent> {
        if self.lanes.len() == 1 {
            return self.lanes[0].recv_for(window);
        }
        let deadline = Instant::now() + window;
        loop {
            let merged = self.poll();
            if !merged.is_empty() {
                return merged;
            }
            if Instant::now() >= deadline {
                return Vec::new();
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Heal every shard lane against its own store, merged.
    pub fn catch_up(&mut self) -> Vec<StandardEvent> {
        let mut windows: Vec<Vec<StandardEvent>> =
            self.lanes.iter_mut().map(|l| l.catch_up()).collect();
        self.merger.merge(&mut windows)
    }

    /// Subscriber counters summed across shards.
    pub fn stats(&self) -> FilteredStats {
        sum_filtered(self.lanes.iter().map(|l| l.stats()))
    }
}

fn sum_filtered(stats: impl Iterator<Item = FilteredStats>) -> FilteredStats {
    let mut total = FilteredStats::default();
    for one in stats {
        total.delivered += one.delivered;
        total.frames += one.frames;
        total.frames_lost += one.frames_lost;
        total.gaps_detected += one.gaps_detected;
        total.healed += one.healed;
    }
    total
}
